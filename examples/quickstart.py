"""Quickstart: train AdaMEL-hyb on a multi-source music catalogue.

This example walks through the full AdaMEL workflow on the synthetic Music-3K
analogue:

1. generate a multi-source corpus (7 websites, 3 of them well-labeled);
2. build an MEL scenario (labeled source domain, unlabeled target domain,
   small labeled support set, held-out test pairs);
3. train AdaMEL-hyb and compare it against AdaMEL-base (no adaptation);
4. inspect the learned attribute importance — the transferable knowledge.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import AdaMELBase, AdaMELConfig, AdaMELHybrid
from repro.data.generators import MUSIC_SEEN_SOURCES, MusicCorpusGenerator, MusicGeneratorConfig
from repro.eval import format_table


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Generate a multi-source corpus (stand-in for the paper's Music-3K).
    # ------------------------------------------------------------------ #
    generator = MusicCorpusGenerator("artist", MusicGeneratorConfig(num_entities=60), seed=7)
    corpus = generator.generate()
    print(f"Generated {len(corpus.records)} records from {len(corpus.sources)} websites, "
          f"{len(corpus.pairs)} labeled pairs "
          f"({corpus.positive_rate():.0%} positive).")

    # ------------------------------------------------------------------ #
    # 2. Build the MEL scenario: train on 3 websites, adapt and test on all 7.
    # ------------------------------------------------------------------ #
    scenario = corpus.build_scenario(seen_sources=MUSIC_SEEN_SOURCES, mode="overlapping",
                                     support_size=50, test_size=200, seed=1)
    print("Scenario:", scenario.summary())

    # ------------------------------------------------------------------ #
    # 3. Train AdaMEL-base (no adaptation) and AdaMEL-hyb (adaptation + support).
    # ------------------------------------------------------------------ #
    config = AdaMELConfig(embedding_dim=32, hidden_dim=24, attention_dim=48,
                          classifier_hidden_dim=48, epochs=20, seed=0)
    results = {}
    for name, model_cls in (("adamel-base", AdaMELBase), ("adamel-hyb", AdaMELHybrid)):
        model = model_cls(config)
        model.fit(scenario)
        report = model.evaluate(scenario.test.pairs)
        results[name] = (model, report)
        print(f"{name}: PRAUC={report.pr_auc:.4f}  best-F1={report.best_f1:.4f} "
              f"({model.num_parameters()} parameters)")

    # ------------------------------------------------------------------ #
    # 4. Inspect the learned attribute importance (the transferable knowledge).
    # ------------------------------------------------------------------ #
    hybrid_model, _ = results["adamel-hyb"]
    importance = hybrid_model.feature_importance(scenario.test.pairs)
    rows = [[fi.name, fi.score] for fi in importance.top(6)]
    print()
    print(format_table(["feature", "importance"], rows, title="Top learned features"))


if __name__ == "__main__":
    main()
