"""How many labels from the new sources are worth collecting?

The paper's Figure 10 asks a practical question: when new data sources arrive,
how many pairs should a human annotate (the support set S_U) before the gains
saturate?  This example sweeps the support-set size on the Monitor corpus for
AdaMEL-few and AdaMEL-hyb, prints the resulting PRAUC curve, and reports the
smallest size within one point of the best observed score — a concrete
annotation-budget recommendation.

Run with:  python examples/support_set_tuning.py
"""

from __future__ import annotations

from repro.experiments import ExperimentScale, run_figure10


def main() -> None:
    scale = ExperimentScale(monitor_entities=70, support_size=40, test_size=150,
                            adamel_epochs=15, embedding_dim=32, hidden_dim=24,
                            attention_dim=48, classifier_hidden_dim=48)
    support_sizes = (1, 10, 30, 60, 100, 150)
    result = run_figure10("monitor", "monitor", support_sizes=support_sizes,
                          scale=scale, seed=4)
    print(result.format())

    print()
    for variant, series in result.series.items():
        best = max(series)
        for size, value in zip(support_sizes, series):
            if value >= best - 0.01:
                print(f"{variant}: ~{size} labeled pairs already reach within 1 point "
                      f"of the best PRAUC ({best:.4f}).")
                break
        print(f"{variant}: going from {support_sizes[0]} to {support_sizes[-1]} labels "
              f"changes PRAUC by {result.improvement(variant):+.4f}.")


if __name__ == "__main__":
    main()
