"""Multi-source music linkage: a full pipeline with blocking and all methods.

This example mirrors the workload that motivates the paper's introduction:
music records arrive from several websites with different formatting (artist
abbreviations, missing genders, locale-specific strings).  It shows the
pipeline a practitioner would run:

1. pool records from every website;
2. generate candidate pairs with token blocking (instead of comparing all
   record pairs);
3. train AdaMEL variants and the strongest baselines on the labeled websites;
4. score the candidates, compare PRAUC on the held-out test pairs, and print
   the linked record pairs AdaMEL is most confident about.

Run with:  python examples/music_multisource.py
"""

from __future__ import annotations

import numpy as np

from repro import AdaMELConfig, AdaMELHybrid, AdaMELZero
from repro.baselines import BaselineConfig, CorDelAttention, TLER
from repro.data import CandidateGenerator, TokenBlocker
from repro.data.generators import MUSIC_SEEN_SOURCES, MusicCorpusGenerator, MusicGeneratorConfig
from repro.eval import compare_models, format_results_table


def main() -> None:
    corpus = MusicCorpusGenerator("track", MusicGeneratorConfig(num_entities=60), seed=21).generate()

    # --- Blocking: build candidate pairs without comparing every record pair.
    blocker = CandidateGenerator([TokenBlocker("title"), TokenBlocker("main_performer")])
    candidates = blocker.generate(corpus.records)
    recall = blocker.recall(corpus.records)
    print(f"Blocking produced {len(candidates)} candidate pairs "
          f"(recall of true matches: {recall:.0%}).")

    # --- Scenario: 3 labeled websites, adapt to all 7.
    scenario = corpus.build_scenario(seen_sources=MUSIC_SEEN_SOURCES, mode="overlapping",
                                     support_size=50, test_size=200, seed=3)

    adamel_config = AdaMELConfig(embedding_dim=32, hidden_dim=24, attention_dim=48,
                                 classifier_hidden_dim=48, epochs=20, seed=0)
    baseline_config = BaselineConfig(embedding_dim=32, hidden_dim=16, classifier_hidden_dim=32,
                                     epochs=10, tokens_per_attribute=5, seed=0)
    results = compare_models({
        "tler": lambda: TLER(),
        "cordel-attention": lambda: CorDelAttention(baseline_config),
        "adamel-zero": lambda: AdaMELZero(adamel_config),
        "adamel-hyb": lambda: AdaMELHybrid(adamel_config),
    }, scenario)
    table = {name: {"pr_auc": result.pr_auc, "best_f1": result.report.best_f1,
                    "fit_seconds": result.fit_seconds}
             for name, result in results.items()}
    print()
    print(format_results_table(table, metric_order=["pr_auc", "best_f1", "fit_seconds"],
                               title="Multi-source track linkage (test PRAUC)"))

    # --- Score the blocked candidates with the best model and show top links.
    model = AdaMELHybrid(adamel_config)
    model.fit(scenario)
    scores = model.predict_proba(candidates)
    order = np.argsort(-scores)[:5]
    print("\nMost confident cross-website links:")
    for rank, index in enumerate(order, start=1):
        pair = candidates[index]
        print(f"{rank}. p={scores[index]:.3f}  "
              f"[{pair.left.source}] {pair.left.value('title')!r} / {pair.left.value('main_performer')!r}"
              f"  <->  [{pair.right.source}] {pair.right.value('title')!r} / "
              f"{pair.right.value('main_performer')!r}")


if __name__ == "__main__":
    main()
