"""End-to-end linkage: from a raw multi-source catalogue to entity clusters.

The quickstart trains a pair matcher; a deployment must link a *corpus*.
This example runs the full production pipeline over the synthetic Music-3K
analogue:

1. generate the corpus and train a quick AdaMEL-hyb matcher on its labeled
   scenario (in a real deployment you would load a saved model bundle);
2. stream the records into the pipeline: MinHash-LSH + inverted-token +
   initials-key blocking, batched scoring, source-consistent union-find
   clustering;
3. inspect blocking quality (recall, pair reduction), cluster quality
   (pairwise F1 against ground truth) and the transitivity-violation report.

Run with:  python examples/end_to_end_linkage.py
The same flow is available as a CLI:  python -m repro.pipeline
"""

from __future__ import annotations

from repro.core import AdaMELConfig, AdaMELHybrid
from repro.data.generators import MUSIC_SEEN_SOURCES, MusicCorpusGenerator, MusicGeneratorConfig
from repro.infer import BatchedPredictor
from repro.pipeline import LinkagePipeline, PipelineConfig


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Corpus + a quick matcher (deployments would load a saved bundle).
    # ------------------------------------------------------------------ #
    generator = MusicCorpusGenerator("artist", MusicGeneratorConfig(num_entities=40), seed=3)
    corpus = generator.generate()
    print(f"Corpus: {len(corpus.records)} records from {len(corpus.sources)} websites.")

    scenario = corpus.build_scenario(seen_sources=MUSIC_SEEN_SOURCES, mode="overlapping",
                                     support_size=30, test_size=100, seed=1)
    model = AdaMELHybrid(AdaMELConfig(embedding_dim=24, hidden_dim=16, attention_dim=24,
                                      classifier_hidden_dim=24, epochs=15, seed=0))
    model.fit(scenario)
    predictor = BatchedPredictor.from_trainer(model)

    # ------------------------------------------------------------------ #
    # 2. Link the whole corpus: ingest -> block -> pair -> score -> cluster.
    # ------------------------------------------------------------------ #
    pipeline = LinkagePipeline(predictor, config=PipelineConfig(score_threshold=0.5))
    result = pipeline.run(corpus.records)

    # ------------------------------------------------------------------ #
    # 3. Inspect per-stage work and quality.
    # ------------------------------------------------------------------ #
    pair_stats = result.candidates.stats
    print(f"\nBlocking kept {int(pair_stats['num_candidates'])} of "
          f"{int(pair_stats['possible_pairs'])} possible cross-source pairs "
          f"({pair_stats['pair_reduction_factor']:.1f}x reduction) at "
          f"{pair_stats['recall']:.1%} recall of true matches.")

    cluster_stats = result.clusters.stats
    print(f"Resolved {int(cluster_stats['num_clusters'])} entities "
          f"(largest cluster: {int(cluster_stats['max_cluster_size'])} records; "
          f"{int(cluster_stats['transitivity_violations'])} transitivity violations).")
    print(f"Pairwise precision/recall/F1 vs ground truth: "
          f"{cluster_stats['pairwise_precision']:.3f} / "
          f"{cluster_stats['pairwise_recall']:.3f} / "
          f"{cluster_stats['pairwise_f1']:.3f}")

    print("\nPer-stage wall clock:")
    for name, seconds in result.stage_seconds.items():
        print(f"  {name:8s} {seconds * 1000.0:8.1f} ms")

    largest = max(result.clusters.clusters, key=len)
    print(f"\nOne resolved entity ({len(largest)} records):")
    by_id = {record.record_id: record for record in result.records}
    for record_id in largest:
        record = by_id[record_id]
        print(f"  [{record.source:>10s}] name={record.value('name')!r}")


if __name__ == "__main__":
    main()
