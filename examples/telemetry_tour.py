"""A tour of `repro.obs`: metrics, span traces, export, and the dashboard.

Telemetry in this repo is off by default and zero-cost while off; this
example turns it on for a scope and shows what the instrumented subsystems
record:

1. train a quick AdaMEL-hyb matcher and link a corpus end-to-end inside
   ``obs.telemetry()`` — the trainer emits per-step/per-epoch histograms,
   the pipeline emits stage spans plus candidate/recall counters, and the
   blocking indexes report bucket-skew gauges;
2. serve a few online upserts/queries so the store, coalescer and batched
   predictor counters move too;
3. read the live registry (snapshot + Prometheus exposition) and walk the
   span tree of the pipeline run;
4. write the JSONL export and render the same data back through the
   ``python -m repro.obs`` dashboard.

Run with:  python examples/telemetry_tour.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import repro.obs as obs
from repro.core import AdaMELConfig, AdaMELHybrid
from repro.data.generators import MusicCorpusGenerator, MusicGeneratorConfig
from repro.infer import BatchedPredictor
from repro.obs.dashboard import render_dashboard
from repro.pipeline import LinkagePipeline
from repro.serve import LinkageService, ServiceConfig


def main() -> None:
    # ------------------------------------------------------------------ #
    # 0. A tiny corpus and labeled scenario (see the quickstart example).
    # ------------------------------------------------------------------ #
    corpus = MusicCorpusGenerator(
        "artist", MusicGeneratorConfig(num_entities=30), seed=11).generate()
    scenario = corpus.build_scenario(
        seen_sources=["website_1", "website_2", "website_3"],
        mode="overlapping", support_size=20, test_size=80, seed=5)
    config = AdaMELConfig(embedding_dim=16, hidden_dim=8, attention_dim=12,
                          classifier_hidden_dim=12, epochs=3, batch_size=8,
                          seed=0, profile_steps=True)

    # ------------------------------------------------------------------ #
    # 1. + 2. Everything inside this block is recorded; nothing outside is.
    # ------------------------------------------------------------------ #
    with obs.telemetry() as session:
        trainer = AdaMELHybrid(config)
        history = trainer.fit(scenario)
        predictor = BatchedPredictor.from_trainer(trainer)

        result = LinkagePipeline(predictor).run(corpus.records)

        service_config = ServiceConfig(max_batch_size=16, max_wait_ms=2.0)
        with LinkageService(predictor, service_config=service_config) as service:
            for record in corpus.records[:10]:
                service.upsert(record)
            service.query(corpus.records[0])

    # ------------------------------------------------------------------ #
    # 3. Read the session: registry snapshot, exposition, span trees.
    # ------------------------------------------------------------------ #
    snapshot = session.registry.snapshot()
    print(f"recorded {len(snapshot)} metric series across "
          f"{len(session.registry.names())} families, e.g.:")
    for entry in snapshot:
        if entry["name"] in ("pipeline_candidates_total", "cache_hits_total",
                             "store_upserts_total", "training_steps_total"):
            print(f"  {entry['name']:<28} = {entry['value']:.0f}")

    # The trainer's histogram saw the SAME floats as TrainingHistory:
    step_hist = next(entry for entry in snapshot
                     if entry["name"] == "training_step_seconds")
    assert step_hist["sum"] == sum(history.step_seconds)  # bit-identical

    print("\nPrometheus exposition (first lines):")
    for line in session.registry.exposition().splitlines()[:6]:
        print(f"  {line}")

    run_span = next(span for span in session.collector.roots()
                    if span.name == "pipeline.run")
    print(f"\npipeline.run took {run_span.seconds * 1e3:.1f} ms; stage spans:")
    for child in run_span.children:
        print(f"  {child.name:<8} {child.seconds * 1e3:8.2f} ms  {child.attributes}")

    # ------------------------------------------------------------------ #
    # 4. Export to JSONL and render the dashboard from the file.
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        export_path = obs.write_export(Path(tmp) / "tour.jsonl",
                                       registry=session.registry,
                                       collector=session.collector)
        export = obs.load_export(export_path)
        print(f"\nexport: {len(export['metrics'])} metric lines, "
              f"{len(export['traces'])} trace trees "
              f"(render with: python -m repro.obs --from-export {export_path.name})")
        print()
        print(render_dashboard(metrics=export["metrics"],
                               traces=export["traces"][-1:],
                               title="telemetry tour", max_traces=1))

    # Outside the scope telemetry is off again — instruments are no-ops.
    assert not obs.enabled()


if __name__ == "__main__":
    main()
