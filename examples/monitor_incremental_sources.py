"""Product matching as data sources arrive incrementally (Monitor workload).

Real knowledge-integration pipelines receive new data sources over time.  This
example reproduces that setting on the synthetic Monitor corpus: a model is
trained once on five labeled shopping sites and then has to link listings from
an ever-growing set of unseen sites.  It compares how a static supervised
baseline and AdaMEL-hyb (which keeps adapting its attribute importance to the
new sources) behave, and inspects how the learned importance shifts.

Run with:  python examples/monitor_incremental_sources.py
"""

from __future__ import annotations

from repro import AdaMELConfig, AdaMELHybrid
from repro.baselines import BaselineConfig, CorDelAttention
from repro.data.generators import (
    MONITOR_SEEN_SOURCES,
    MonitorCorpusGenerator,
    MonitorGeneratorConfig,
)
from repro.eval import format_series, format_table
from repro.experiments.figure9 import _scenario_with_sources


def main() -> None:
    corpus = MonitorCorpusGenerator(MonitorGeneratorConfig(num_entities=80),
                                    num_sources=15, seed=5).generate()
    unseen = [source for source in corpus.sources if source not in MONITOR_SEEN_SOURCES]
    print(f"Corpus: {len(corpus.records)} listings from {len(corpus.sources)} sites, "
          f"{len(corpus.pairs)} labeled pairs ({corpus.positive_rate():.1%} positive).")

    adamel_config = AdaMELConfig(embedding_dim=32, hidden_dim=24, attention_dim=48,
                                 classifier_hidden_dim=48, epochs=15, seed=0)
    baseline_config = BaselineConfig(embedding_dim=32, hidden_dim=16, classifier_hidden_dim=32,
                                     epochs=8, tokens_per_attribute=5, seed=0)

    steps = [3, 6, 10]  # number of unseen sites available at each step
    series = {"adamel-hyb": [], "cordel-attention": []}
    final_model = None
    for step in steps:
        scenario = _scenario_with_sources(corpus, unseen[:step], support_size=40,
                                          test_size=150, seed=2)
        adamel = AdaMELHybrid(adamel_config)
        adamel.fit(scenario)
        series["adamel-hyb"].append(adamel.evaluate(scenario.test.pairs).pr_auc)
        baseline = CorDelAttention(baseline_config)
        baseline.fit(scenario)
        series["cordel-attention"].append(baseline.evaluate(scenario.test.pairs).pr_auc)
        final_model, final_scenario = adamel, scenario

    print()
    print(format_series("#unseen sites", steps, series,
                        title="PRAUC as new shopping sites arrive"))

    importance = final_model.feature_importance(final_scenario.test.pairs)
    rows = [[fi.name, fi.score] for fi in importance.top(5)]
    print()
    print(format_table(["feature", "importance"], rows,
                       title="Attribute importance after adapting to all sites"))
    print(f"\nImportance inequality (Gini): {importance.gini_coefficient():.3f} "
          "(Monitor is dominated by the page title, as in the paper's Table 4).")


if __name__ == "__main__":
    main()
