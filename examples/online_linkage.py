"""Online entity linkage: serve upserts and queries one record at a time.

The end-to-end pipeline example links a frozen corpus; a live deployment
receives records and lookup requests continuously.  This example runs the
online serving layer over the synthetic Music-3K analogue:

1. train a quick AdaMEL-hyb matcher (deployments would load a saved bundle)
   and start a :class:`~repro.serve.LinkageService` — an incremental
   :class:`~repro.serve.EntityStore` behind a latency-bounded
   :class:`~repro.serve.RequestCoalescer`;
2. stream the shuffled corpus through ``upsert`` record by record, watching
   entities form incrementally;
3. fire concurrent queries from worker threads (the coalescer fuses them
   into micro-batches), snapshot the store, restore it bit-exactly, and
   verify the streamed clusters equal one batch ``LinkagePipeline.run``.

Run with:  python examples/online_linkage.py
The same flow is available as a CLI:  python -m repro.serve --demo
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import AdaMELConfig, AdaMELHybrid
from repro.data.generators import MUSIC_SEEN_SOURCES, MusicCorpusGenerator, MusicGeneratorConfig
from repro.data.records import Record
from repro.infer import BatchedPredictor
from repro.pipeline import LinkagePipeline
from repro.serve import (EntityStore, LinkageService, ServiceConfig, StoreConfig,
                         replay_queries, replay_upserts)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Corpus + quick matcher + service.
    # ------------------------------------------------------------------ #
    generator = MusicCorpusGenerator("artist", MusicGeneratorConfig(num_entities=40), seed=3)
    corpus = generator.generate()
    records = list(corpus.records)
    np.random.default_rng(7).shuffle(records)  # online arrival order
    print(f"Corpus: {len(records)} records from {len(corpus.sources)} websites, "
          f"arriving in shuffled order.")

    scenario = corpus.build_scenario(seen_sources=MUSIC_SEEN_SOURCES, mode="overlapping",
                                     support_size=30, test_size=100, seed=1)
    model = AdaMELHybrid(AdaMELConfig(embedding_dim=24, hidden_dim=16, attention_dim=24,
                                      classifier_hidden_dim=24, epochs=15, seed=0))
    model.fit(scenario)
    predictor = BatchedPredictor.from_trainer(model)

    store_config = StoreConfig(score_threshold=0.5)
    service_config = ServiceConfig(max_batch_size=32, max_wait_ms=2.0, top_k=3)
    with LinkageService(predictor, store_config=store_config,
                        service_config=service_config) as service:
        # -------------------------------------------------------------- #
        # 2. Stream the corpus through upsert, one record at a time.
        # -------------------------------------------------------------- #
        ingest = replay_upserts(service, records)
        stats = service.store.stats()
        print(f"\nIngested {ingest.operations} records in {ingest.seconds:.2f}s "
              f"({ingest.throughput:.0f} upserts/s): {int(stats['entities'])} live "
              f"entities, {int(stats['pairs_scored'])} candidate pairs scored "
              f"incrementally.")
        p = {name: value * 1000.0 for name, value in ingest.percentiles().items()}
        print(f"Upsert latency: p50 {p['p50']:.2f} ms / p95 {p['p95']:.2f} ms / "
              f"p99 {p['p99']:.2f} ms")

        # -------------------------------------------------------------- #
        # 3a. Concurrent queries, fused by the coalescer.
        # -------------------------------------------------------------- #
        queries = replay_queries(service, records, num_workers=4)
        p = {name: value * 1000.0 for name, value in queries.percentiles().items()}
        print(f"\nServed {queries.operations} queries from 4 workers in "
              f"{queries.seconds:.2f}s ({queries.throughput:.0f} queries/s).")
        print(f"Query latency:  p50 {p['p50']:.2f} ms / p95 {p['p95']:.2f} ms / "
              f"p99 {p['p99']:.2f} ms")
        fused = service.coalescer.stats()
        print(f"Coalescer fused {int(fused['requests'])} requests into "
              f"{int(fused['batches'])} batches (mean {fused['mean_batch_pairs']:.1f} "
              f"pairs; {int(fused['size_flushes'])} size / "
              f"{int(fused['deadline_flushes'])} deadline flushes).")

        # A lookup for a brand-new probe record: who is "E. B."?
        probe_source = records[0]
        probe = Record(record_id="probe#0", source="a-new-website",
                       attributes=dict(probe_source.attributes))
        matches = service.query(probe).matches
        print(f"\nProbe {probe.value('name')!r} resolves to:")
        for match in matches:
            print(f"  {match.entity_id:32s} score={match.score:.3f} "
                  f"(via {match.record_id}, {match.size} records)")

        # -------------------------------------------------------------- #
        # 3b. Snapshot -> restore is bit-exact, no model needed to load.
        # -------------------------------------------------------------- #
        with tempfile.TemporaryDirectory() as tmp:
            snapshot_dir = service.snapshot(Path(tmp) / "store")
            restored = EntityStore.restore(snapshot_dir)
            assert restored.clusters() == service.store.clusters()
            print(f"\nSnapshot/restore round-trip: {len(restored.clusters())} "
                  f"clusters restored bit-exactly (read-only until a model is bound).")

        # -------------------------------------------------------------- #
        # 3c. Streaming == batch: the parity the store guarantees.
        # -------------------------------------------------------------- #
        batch = LinkagePipeline(predictor,
                                config=store_config.to_pipeline_config()).run(records)
        online = service.store.clusters()
        assert online == batch.clusters.clusters, "online/batch cluster mismatch"
        print(f"Parity: streaming {len(records)} upserts produced the same "
              f"{len(online)} clusters as one batch LinkagePipeline.run.")


if __name__ == "__main__":
    main()
