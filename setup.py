"""Shim for legacy tooling; packaging metadata lives in pyproject.toml.

The package uses a src/ layout: importable code is under ``src/repro``.
"""

from setuptools import find_packages, setup

setup(
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
