"""Tests for the shared utilities (rng, timer, serialization, validation)."""

import time

import numpy as np
import pytest

from repro.utils import (
    RandomState,
    Timer,
    load_json,
    load_npz,
    require_fraction,
    require_non_empty,
    require_positive,
    save_json,
    save_npz,
    spawn_rng,
)


class TestRandomState:
    def test_fork_is_deterministic(self):
        state_a = RandomState(seed=7)
        state_b = RandomState(seed=7)
        assert state_a.fork("child").random() == state_b.fork("child").random()

    def test_fork_names_independent(self):
        state = RandomState(seed=7)
        assert state.fork("a").random() != state.fork("b").random()

    def test_spawn_rng_accepts_many_inputs(self):
        assert isinstance(spawn_rng(3), np.random.Generator)
        generator = np.random.default_rng(0)
        assert spawn_rng(generator) is generator
        assert isinstance(spawn_rng(RandomState(1)), np.random.Generator)
        assert isinstance(spawn_rng(None), np.random.Generator)

    def test_integers_range(self):
        value = RandomState(0).integers(5, 10)
        assert 5 <= value < 10


class TestTimer:
    def test_measure_records_duration(self):
        timer = Timer()
        with timer.measure("sleep"):
            time.sleep(0.01)
        assert timer.total("sleep") >= 0.01
        assert timer.count("sleep") == 1
        assert timer.mean("sleep") == pytest.approx(timer.total("sleep"))

    def test_unknown_name_is_zero(self):
        assert Timer().total("nothing") == 0.0

    def test_summary(self):
        timer = Timer()
        with timer.measure("a"):
            pass
        assert "a" in timer.summary()


class TestSerialization:
    def test_json_roundtrip_with_numpy(self, tmp_path):
        payload = {"value": np.float64(0.5), "array": np.arange(3), "n": np.int64(4)}
        path = save_json(payload, tmp_path / "out.json")
        loaded = load_json(path)
        assert loaded["value"] == 0.5
        assert loaded["array"] == [0, 1, 2]
        assert loaded["n"] == 4

    def test_npz_roundtrip(self, tmp_path):
        arrays = {"weights": np.random.rand(3, 2), "bias": np.zeros(2)}
        path = save_npz(arrays, tmp_path / "model.npz")
        loaded = load_npz(path)
        assert np.allclose(loaded["weights"], arrays["weights"])
        assert set(loaded) == {"weights", "bias"}

    def test_model_state_dict_roundtrip(self, tmp_path, fast_config):
        from repro.core import AdaMELNetwork
        network = AdaMELNetwork(4, fast_config.embedding_dim, config=fast_config,
                                rng=np.random.default_rng(0))
        path = save_npz(network.state_dict(), tmp_path / "adamel.npz")
        restored = AdaMELNetwork(4, fast_config.embedding_dim, config=fast_config,
                                 rng=np.random.default_rng(99))
        restored.load_state_dict(load_npz(path))
        features = np.random.rand(2, 4, fast_config.embedding_dim)
        assert np.allclose(network.predict_proba(features), restored.predict_proba(features))


class TestValidation:
    def test_require_positive(self):
        assert require_positive(3, "x") == 3
        with pytest.raises(ValueError):
            require_positive(0, "x")

    def test_require_fraction(self):
        assert require_fraction(0.5, "x") == 0.5
        assert require_fraction(1.0, "x") == 1.0
        with pytest.raises(ValueError):
            require_fraction(1.5, "x")
        with pytest.raises(ValueError):
            require_fraction(1.0, "x", inclusive=False)

    def test_require_non_empty(self):
        assert require_non_empty([1], "x") == [1]
        with pytest.raises(ValueError):
            require_non_empty([], "x")
