"""Tests for metrics, the evaluation harness, projections and reporting."""

import numpy as np
import pytest

from repro.core import AdaMELBase
from repro.eval import (
    accuracy,
    average_precision,
    best_f1,
    classification_report,
    compare_models,
    confusion_counts,
    domain_alignment_score,
    evaluate_model,
    f1_at_threshold,
    format_results_table,
    format_series,
    format_table,
    pca_project,
    pr_auc,
    precision_recall_curve,
    precision_recall_f1,
    tsne_project,
)


class TestMetrics:
    def test_perfect_ranking_prauc_one(self):
        labels = [0, 0, 1, 1]
        scores = [0.1, 0.2, 0.8, 0.9]
        assert pr_auc(labels, scores) == pytest.approx(1.0)

    def test_inverted_ranking_low_prauc(self):
        labels = [1, 1, 0, 0]
        scores = [0.1, 0.2, 0.8, 0.9]
        assert pr_auc(labels, scores) < 0.6

    def test_random_scores_near_positive_rate(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=2000)
        scores = rng.random(2000)
        assert pr_auc(labels, scores) == pytest.approx(labels.mean(), abs=0.05)

    def test_prauc_matches_manual_average_precision(self):
        labels = np.array([1, 0, 1, 0, 1])
        scores = np.array([0.9, 0.8, 0.7, 0.6, 0.5])
        # AP = sum over positive ranks of precision@k / num_positives
        expected = (1 / 1 + 2 / 3 + 3 / 5) / 3
        assert average_precision(labels, scores) == pytest.approx(expected)

    def test_no_positives_gives_zero(self):
        assert pr_auc([0, 0, 0], [0.2, 0.3, 0.4]) == 0.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            pr_auc([], [])
        with pytest.raises(ValueError):
            pr_auc([0, 2], [0.5, 0.5])
        with pytest.raises(ValueError):
            pr_auc([0, 1], [0.5])

    def test_precision_recall_curve_monotone_recall(self):
        labels = [1, 0, 1, 1, 0, 1]
        scores = [0.9, 0.8, 0.7, 0.4, 0.3, 0.1]
        precision, recall, thresholds = precision_recall_curve(labels, scores)
        assert recall[0] == 0.0
        assert np.all(np.diff(recall) >= 0)
        assert len(precision) == len(recall) == len(thresholds) + 1

    def test_confusion_counts(self):
        counts = confusion_counts([1, 1, 0, 0], [1, 0, 1, 0])
        assert counts == {"tp": 1, "fp": 1, "tn": 1, "fn": 1}

    def test_precision_recall_f1(self):
        precision, recall, f1 = precision_recall_f1([1, 1, 0, 0], [1, 0, 0, 0])
        assert precision == 1.0
        assert recall == 0.5
        assert f1 == pytest.approx(2 / 3)

    def test_f1_at_threshold(self):
        assert f1_at_threshold([1, 0], [0.9, 0.1], threshold=0.5) == 1.0

    def test_best_f1_at_least_threshold_f1(self):
        labels = [1, 0, 1, 0, 1]
        scores = [0.6, 0.55, 0.5, 0.4, 0.35]
        best, threshold = best_f1(labels, scores)
        assert best >= f1_at_threshold(labels, scores, 0.5)
        assert 0 <= threshold <= 1

    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 0, 0]) == pytest.approx(2 / 3)

    def test_classification_report_fields(self):
        report = classification_report([1, 0, 1, 0], [0.9, 0.2, 0.7, 0.4])
        as_dict = report.as_dict()
        assert as_dict["pr_auc"] == pytest.approx(1.0)
        assert as_dict["num_pairs"] == 4
        assert as_dict["positive_rate"] == pytest.approx(0.5)


class TestEvaluationHarness:
    def test_evaluate_model(self, music_scenario, fast_config):
        result = evaluate_model(AdaMELBase(fast_config), music_scenario)
        assert 0.0 <= result.pr_auc <= 1.0
        assert result.fit_seconds > 0
        assert result.scenario_name == music_scenario.name

    def test_compare_models_trains_each_factory(self, music_scenario, fast_config):
        results = compare_models({
            "a": lambda: AdaMELBase(fast_config),
            "b": lambda: AdaMELBase(fast_config.with_updates(seed=1)),
        }, music_scenario)
        assert set(results) == {"a", "b"}
        assert all(0.0 <= r.pr_auc <= 1.0 for r in results.values())


class TestProjection:
    def test_pca_shape_and_centering(self):
        points = np.random.default_rng(0).random((30, 6))
        projected = pca_project(points, dim=2)
        assert projected.shape == (30, 2)
        assert np.allclose(projected.mean(axis=0), 0.0, atol=1e-9)

    def test_pca_invalid_dim(self):
        with pytest.raises(ValueError):
            pca_project(np.random.rand(10, 3), dim=5)

    def test_tsne_shape(self):
        points = np.random.default_rng(0).random((25, 8))
        embedded = tsne_project(points, dim=2, iterations=50, seed=1)
        assert embedded.shape == (25, 2)
        assert np.all(np.isfinite(embedded))

    def test_tsne_too_few_points(self):
        with pytest.raises(ValueError):
            tsne_project(np.random.rand(3, 4))

    def test_alignment_score_separated_vs_mixed(self):
        rng = np.random.default_rng(0)
        separated_source = rng.normal(0, 0.1, size=(40, 2))
        separated_target = rng.normal(5, 0.1, size=(40, 2)) + 5
        mixed_source = rng.normal(0, 1.0, size=(40, 2))
        mixed_target = rng.normal(0, 1.0, size=(40, 2))
        low = domain_alignment_score(separated_source, separated_target)
        high = domain_alignment_score(mixed_source, mixed_target)
        assert low < 0.2
        assert high > 0.7

    def test_alignment_score_requires_points(self):
        with pytest.raises(ValueError):
            domain_alignment_score(np.zeros((0, 2)), np.ones((3, 2)))


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 0.5], ["bb", 1.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "0.5000" in text and "1.2500" in text

    def test_format_results_table(self):
        text = format_results_table({"m1": {"pr_auc": 0.9}, "m2": {"pr_auc": 0.8}},
                                    metric_order=["pr_auc"])
        assert "m1" in text and "0.9000" in text

    def test_format_series(self):
        text = format_series("x", [1, 2], {"series_a": [0.1, 0.2], "series_b": [0.3, 0.4]})
        assert "series_a" in text and "0.4000" in text
