"""Tests for the `python -m repro.bench` runner and its CI perf gate."""

from __future__ import annotations

import pytest

from repro.bench import (STAGES, check_regressions, find_regressions, list_stages,
                         run_suite, select_scale)
from repro.bench.runner import summarize_latency_samples
from repro.bench.__main__ import build_parser
from repro.experiments import ExperimentScale
from repro.experiments.registry import EXPERIMENTS


class TestScaleSelection:
    def test_named_scales(self):
        assert select_scale("smoke")[1] == ExperimentScale.smoke()
        assert select_scale("paper")[1] == ExperimentScale.paper()
        name, scale = select_scale("bench")
        assert name == "bench"
        assert isinstance(scale, ExperimentScale)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert select_scale()[0] == "smoke"
        monkeypatch.delenv("REPRO_BENCH_SCALE")
        assert select_scale()[0] == "bench"

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark scale"):
            select_scale("gigantic")


class TestStageRegistry:
    def test_every_experiment_has_a_stage(self):
        """The bench suite covers every registered figure/table experiment."""
        stage_names = {name for name, _ in list_stages()}
        for identifier in EXPERIMENTS:
            assert any(identifier.startswith(name) or name.startswith(identifier)
                       for name in stage_names), identifier

    def test_stage_names_unique(self):
        names = [stage.name for stage in STAGES]
        assert len(names) == len(set(names))

    def test_unknown_stage_rejected(self):
        with pytest.raises(KeyError, match="unknown bench stages"):
            run_suite(scale_name="smoke", stages=["nonexistent"])

    def test_serve_online_stage_registered(self):
        assert "serve_online" in {name for name, _ in list_stages()}

    def test_obs_overhead_stage_registered(self):
        assert "obs_overhead" in {name for name, _ in list_stages()}

    def test_obs_distributed_stage_registered(self):
        assert "obs_distributed" in {name for name, _ in list_stages()}

    def test_store_recovery_stage_registered(self):
        assert "store_recovery" in {name for name, _ in list_stages()}


class TestLatencyPercentiles:
    def test_samples_fold_into_millisecond_percentiles(self):
        extras = {
            "throughput": 100.0,
            "query_latency_samples": [0.001 * i for i in range(1, 101)],
        }
        summarized = summarize_latency_samples(extras)
        assert summarized["throughput"] == 100.0
        assert "query_latency_samples" not in summarized
        assert summarized["query_latency_count"] == 100.0
        assert (summarized["query_latency_p50_ms"]
                <= summarized["query_latency_p95_ms"]
                <= summarized["query_latency_p99_ms"])
        # Samples are seconds, snapshot keys are milliseconds.
        assert summarized["query_latency_p50_ms"] == pytest.approx(50.5, rel=0.02)

    def test_empty_samples_stay_json_clean(self):
        summarized = summarize_latency_samples({"upsert_latency_samples": []})
        assert summarized["upsert_latency_p99_ms"] == 0.0
        assert summarized["upsert_latency_count"] == 0.0

    def test_extras_without_samples_pass_through(self):
        extras = {"seconds": 1.0, "speedup": 2.0}
        assert summarize_latency_samples(extras) == extras


class TestEncoderStage:
    def test_encoder_stage_reports_speedup(self):
        """The encoder micro-stage runs, validates bit-equality internally,
        and reports the vectorised speedup."""
        payload = run_suite(scale_name="smoke", seed=0, stages=["encoder"])
        assert payload["scale"] == "smoke"
        entry = payload["stages"]["encoder"]
        assert entry["seconds"] >= 0
        assert entry["num_pairs"] > 0
        assert entry["speedup"] > 0
        assert entry["cached_speedup"] >= entry["speedup"] * 0.1
        assert payload["schema_version"] == 1


class TestPerfGate:
    @staticmethod
    def payload(scale="smoke", **stage_seconds):
        return {"scale": scale,
                "stages": {name: {"seconds": seconds}
                           for name, seconds in stage_seconds.items()}}

    def test_passes_within_tolerance(self):
        baseline = self.payload(figure6=10.0)
        current = self.payload(figure6=12.0)
        assert check_regressions(current, baseline, tolerance=0.25) == []

    def test_fails_beyond_tolerance(self):
        baseline = self.payload(figure6=10.0)
        current = self.payload(figure6=13.0)
        problems = check_regressions(current, baseline, tolerance=0.25)
        assert len(problems) == 1
        assert "figure6" in problems[0]

    def test_ignores_noise_floor_stages(self):
        baseline = self.payload(tiny=0.01)
        current = self.payload(tiny=10.0)
        assert check_regressions(current, baseline, min_seconds=0.05) == []

    def test_missing_stage_reported(self):
        baseline = self.payload(figure6=10.0, figure7=5.0)
        current = self.payload(figure6=10.0)
        problems = check_regressions(current, baseline)
        assert any("figure7" in problem for problem in problems)

    def test_scale_mismatch_reported(self):
        baseline = self.payload(scale="bench", figure6=10.0)
        current = self.payload(scale="smoke", figure6=10.0)
        problems = check_regressions(current, baseline)
        assert len(problems) == 1
        assert "scale mismatch" in problems[0]

    def test_faster_is_never_a_regression(self):
        baseline = self.payload(figure6=10.0)
        current = self.payload(figure6=1.0)
        assert check_regressions(current, baseline) == []

    def test_find_regressions_names_retryable_stages(self):
        """A timing regression carries its stage name so the CLI can re-time
        just that stage; structural problems carry ``None`` (not retryable)."""
        baseline = self.payload(figure6=10.0, figure7=5.0)
        current = self.payload(figure6=13.0)
        names = [name for name, _ in find_regressions(current, baseline, tolerance=0.25)]
        assert names == ["figure6", None]

    def test_find_regressions_scale_mismatch_not_retryable(self):
        baseline = self.payload(scale="bench", figure6=10.0)
        current = self.payload(scale="smoke", figure6=10.0)
        assert [name for name, _ in find_regressions(current, baseline)] == [None]

    def test_machine_ratio_relaxes_budgets_on_slower_hardware(self):
        """A uniformly 2x-slower machine (per the encoder calibration
        workload) must not fail stages that merely scaled with the machine."""
        baseline = self.payload(figure6=10.0)
        current = self.payload(figure6=20.0)
        baseline["stages"]["encoder"] = {"seconds": 1.0, "reference_seconds": 1.0}
        current["stages"]["encoder"] = {"seconds": 2.0, "reference_seconds": 2.0}
        assert check_regressions(current, baseline, tolerance=0.25) == []
        # A genuine regression on top of the machine ratio still fails.
        current["stages"]["figure6"]["seconds"] = 30.0
        assert len(check_regressions(current, baseline, tolerance=0.25)) == 1

    def test_machine_ratio_never_tightens_budgets(self):
        """A faster machine (ratio < 1) keeps the baseline's absolute budget."""
        baseline = self.payload(figure6=10.0)
        current = self.payload(figure6=12.0)  # within +25% of baseline
        baseline["stages"]["encoder"] = {"seconds": 2.0, "reference_seconds": 2.0}
        current["stages"]["encoder"] = {"seconds": 1.0, "reference_seconds": 1.0}
        assert check_regressions(current, baseline, tolerance=0.25) == []

    @staticmethod
    def overhead_payload(serve_ratio, train_ratio, seconds=2.0):
        return {"scale": "smoke",
                "stages": {"obs_overhead": {"seconds": seconds,
                                            "serve_overhead_ratio": serve_ratio,
                                            "train_overhead_ratio": train_ratio}}}

    def test_overhead_ratio_within_ceiling_passes(self):
        baseline = self.overhead_payload(1.02, 1.01)
        current = self.overhead_payload(1.05, 0.99)
        assert check_regressions(current, baseline) == []

    def test_overhead_ratio_over_ceiling_fails_and_is_retryable(self):
        """The 5% telemetry budget is absolute: it fails even when the
        baseline recorded a similar ratio, and carries the stage name so the
        ``--check`` retry loop re-times it before failing the gate."""
        baseline = self.overhead_payload(1.08, 1.0)  # a bad baseline is no excuse
        current = self.overhead_payload(1.08, 1.0)
        problems = find_regressions(current, baseline)
        assert [name for name, _ in problems] == ["obs_overhead"]
        assert "serve_overhead_ratio" in problems[0][1]
        assert "5%" in problems[0][1]

    def test_overhead_ratio_missing_from_run_is_reported(self):
        baseline = self.overhead_payload(1.0, 1.0)
        current = {"scale": "smoke", "stages": {"obs_overhead": {"seconds": 2.0}}}
        problems = find_regressions(current, baseline)
        assert len(problems) == 2  # both ratios gone
        assert all(name is None for name, _ in problems)

    def test_overhead_ratio_ignores_machine_ratio_relaxation(self):
        """Both sides of an overhead ratio come from one machine, so the
        encoder-based machine ratio must not relax the 5% ceiling."""
        baseline = self.overhead_payload(1.0, 1.0)
        current = self.overhead_payload(1.2, 1.0)
        baseline["stages"]["encoder"] = {"seconds": 1.0, "reference_seconds": 1.0}
        current["stages"]["encoder"] = {"seconds": 4.0, "reference_seconds": 4.0}
        problems = find_regressions(current, baseline)
        assert [name for name, _ in problems] == ["obs_overhead"]

    @staticmethod
    def distributed_payload(merge_ratio=1.05, coverage=1.0, span_parity=1.0,
                            once_parity=1.0, fork_parity=1.0, seconds=1.5):
        return {"scale": "smoke",
                "stages": {"obs_distributed": {
                    "seconds": seconds,
                    "merge_overhead_ratio": merge_ratio,
                    "worker_span_coverage": coverage,
                    "worker_span_parity": span_parity,
                    "shard_seconds_once_parity": once_parity,
                    "worker_span_fork_parity": fork_parity}}}

    def test_obs_distributed_clean_run_passes(self):
        baseline = self.distributed_payload()
        current = self.distributed_payload(merge_ratio=1.12, coverage=0.95)
        assert check_regressions(current, baseline) == []

    def test_obs_distributed_merge_ratio_has_its_own_wider_ceiling(self):
        """1.06 < ratio <= 1.20 passes here (the smoke workload is tens of
        milliseconds; the generic 5% budget would flake), above 1.20 fails
        and is retryable."""
        baseline = self.distributed_payload()
        assert find_regressions(self.distributed_payload(merge_ratio=1.19),
                                baseline) == []
        problems = find_regressions(self.distributed_payload(merge_ratio=1.3),
                                    baseline)
        assert [name for name, _ in problems] == ["obs_distributed"]
        assert "1.20x" in problems[0][1]

    @pytest.mark.parametrize("coverage", [0.5, 0.89, 1.11, 2.0])
    def test_obs_distributed_coverage_outside_band_fails(self, coverage):
        problems = find_regressions(self.distributed_payload(coverage=coverage),
                                    self.distributed_payload())
        assert [name for name, _ in problems] == ["obs_distributed"]
        assert "coverage" in problems[0][1]

    @pytest.mark.parametrize("flag", ["worker_span_parity",
                                      "shard_seconds_once_parity",
                                      "worker_span_fork_parity"])
    def test_obs_distributed_parity_flags_are_exact(self, flag):
        current = self.distributed_payload(**{
            {"worker_span_parity": "span_parity",
             "shard_seconds_once_parity": "once_parity",
             "worker_span_fork_parity": "fork_parity"}[flag]: 0.0})
        problems = find_regressions(current, self.distributed_payload())
        assert len(problems) == 1
        assert problems[0][0] is None  # deterministic: not retryable
        assert flag in problems[0][1]

    def test_obs_distributed_missing_keys_reported(self):
        current = {"scale": "smoke",
                   "stages": {"obs_distributed": {"seconds": 1.5}}}
        problems = find_regressions(current, self.distributed_payload())
        messages = " ".join(problem for _, problem in problems)
        assert "worker_span_coverage" in messages
        assert "merge_overhead_ratio" in messages

    @staticmethod
    def recovery_payload(speedup=2.0, recovery=1.0, full_replay=1.0,
                         sqlite=1.0, seconds=0.6):
        return {"scale": "smoke",
                "stages": {"store_recovery": {
                    "seconds": seconds,
                    "restore_speedup": speedup,
                    "recovery_parity": recovery,
                    "full_replay_parity": full_replay,
                    "sqlite_backend_parity": sqlite}}}

    def test_store_recovery_clean_run_passes(self):
        assert check_regressions(self.recovery_payload(speedup=1.3),
                                 self.recovery_payload()) == []

    def test_store_recovery_speedup_below_floor_fails_and_is_retryable(self):
        """Tail restore must beat full replay by 1.2x even when the baseline
        machine recorded a similarly bad number."""
        baseline = self.recovery_payload(speedup=1.1)
        problems = find_regressions(self.recovery_payload(speedup=1.1), baseline)
        assert [name for name, _ in problems] == ["store_recovery"]
        assert "1.2x" in problems[0][1]

    def test_store_recovery_missing_speedup_reported(self):
        current = {"scale": "smoke",
                   "stages": {"store_recovery": {"seconds": 0.6,
                                                 "recovery_parity": 1.0,
                                                 "full_replay_parity": 1.0,
                                                 "sqlite_backend_parity": 1.0}}}
        problems = find_regressions(current, self.recovery_payload())
        assert any("restore_speedup" in message for _, message in problems)

    @pytest.mark.parametrize("flag", ["recovery_parity", "full_replay_parity",
                                      "sqlite_backend_parity"])
    def test_store_recovery_parity_flags_are_exact(self, flag):
        current = self.recovery_payload(**{
            {"recovery_parity": "recovery",
             "full_replay_parity": "full_replay",
             "sqlite_backend_parity": "sqlite"}[flag]: 0.0})
        problems = find_regressions(current, self.recovery_payload())
        assert len(problems) == 1
        assert problems[0][0] is None  # deterministic: not retryable
        assert flag in problems[0][1]


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale is None
        assert args.check is None
        assert args.tolerance == 0.25
        assert args.retries == 2

    def test_check_without_value_uses_default_snapshot(self):
        args = build_parser().parse_args(["--check"])
        assert args.check == "BENCH_core.json"

    def test_check_with_explicit_baseline(self):
        args = build_parser().parse_args(["--check", "other.json", "--scale", "smoke"])
        assert args.check == "other.json"
        assert args.scale == "smoke"
