"""Shared fixtures: tiny corpora, scenarios and configs so tests stay fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaMELConfig
from repro.data.generators import (
    MonitorCorpusGenerator,
    MonitorGeneratorConfig,
    MusicCorpusGenerator,
    MusicGeneratorConfig,
)
from repro.experiments import ExperimentScale
from repro.text import HashedEmbedder, Tokenizer


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(123)


@pytest.fixture(scope="session")
def tiny_music_corpus():
    """A small music corpus shared across tests (generation is deterministic)."""
    config = MusicGeneratorConfig(num_entities=30)
    return MusicCorpusGenerator("artist", config, seed=11).generate()


@pytest.fixture(scope="session")
def tiny_track_corpus():
    config = MusicGeneratorConfig(num_entities=25)
    return MusicCorpusGenerator("track", config, seed=13).generate()


@pytest.fixture(scope="session")
def tiny_monitor_corpus():
    config = MonitorGeneratorConfig(num_entities=35)
    return MonitorCorpusGenerator(config, num_sources=10, seed=17).generate()


@pytest.fixture(scope="session")
def music_scenario(tiny_music_corpus):
    """Overlapping MEL scenario built from the tiny music corpus."""
    return tiny_music_corpus.build_scenario(
        seen_sources=["website_1", "website_2", "website_3"],
        mode="overlapping", support_size=20, test_size=80, seed=5)


@pytest.fixture(scope="session")
def monitor_scenario(tiny_monitor_corpus):
    return tiny_monitor_corpus.build_scenario(
        seen_sources=["ebay.com", "catalog.com", "best-deal-items.com",
                      "cleverboxes.com", "ca.pcpartpicker.com"],
        mode="overlapping", support_size=20, test_size=80, seed=5)


@pytest.fixture(scope="session")
def fast_config() -> AdaMELConfig:
    """AdaMEL config small enough for unit tests."""
    return AdaMELConfig(embedding_dim=16, hidden_dim=8, attention_dim=12,
                        classifier_hidden_dim=12, epochs=3, batch_size=8, seed=0)


@pytest.fixture(scope="session")
def smoke_scale() -> ExperimentScale:
    return ExperimentScale.smoke()


@pytest.fixture(scope="session")
def small_embedder() -> HashedEmbedder:
    return HashedEmbedder(dim=16, tokenizer=Tokenizer(crop_size=6))
