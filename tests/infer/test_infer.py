"""Tests for the inference subsystem: model bundles and batched serving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaMELBase, AdaMELHybrid, AdaMELZero
from repro.features import EncodingCache
from repro.infer import (MODEL_FORMAT_VERSION, BatchedPredictor,
                         PredictorQueueFull, load_model, save_model)
from repro.text import HashedEmbedder, Tokenizer, TokenEmbedder
from repro.utils.serialization import load_json, save_json


@pytest.fixture(scope="module")
def fitted_trainer(music_scenario, fast_config):
    trainer = AdaMELHybrid(fast_config)
    trainer.fit(music_scenario)
    return trainer


@pytest.fixture(scope="module")
def test_pairs(music_scenario):
    return list(music_scenario.test.pairs)


class TestModelBundle:
    def test_round_trip_is_bit_exact(self, fitted_trainer, test_pairs, tmp_path):
        bundle = save_model(fitted_trainer, tmp_path / "bundle")
        loaded = load_model(bundle)
        expected = fitted_trainer.predict_proba(test_pairs)
        actual = loaded.predict_proba(test_pairs)
        assert np.array_equal(expected, actual)

    def test_round_trip_preserves_weights_exactly(self, fitted_trainer, tmp_path):
        bundle = save_model(fitted_trainer, tmp_path / "bundle")
        loaded = load_model(bundle)
        saved_state = fitted_trainer.network.state_dict()
        loaded_state = loaded.network.state_dict()
        assert set(saved_state) == set(loaded_state)
        for name in saved_state:
            assert np.array_equal(saved_state[name], loaded_state[name]), name

    def test_round_trip_preserves_variant_and_config(self, fitted_trainer, tmp_path):
        bundle = save_model(fitted_trainer, tmp_path / "bundle")
        loaded = load_model(bundle)
        assert loaded.variant == fitted_trainer.variant
        assert loaded.config == fitted_trainer.config
        assert loaded.schema == fitted_trainer.schema
        assert isinstance(loaded, AdaMELHybrid)

    def test_loaded_model_serves_attention_and_importance(self, fitted_trainer, test_pairs,
                                                          tmp_path):
        loaded = load_model(save_model(fitted_trainer, tmp_path / "bundle"))
        scores = loaded.attention_scores(test_pairs[:8])
        assert scores.shape == (8, loaded.encoder.num_features)
        expected = fitted_trainer.attention_scores(test_pairs[:8])
        assert np.array_equal(expected, scores)

    def test_unfitted_trainer_rejected(self, fast_config, tmp_path):
        with pytest.raises(ValueError, match="unfitted"):
            save_model(AdaMELBase(fast_config), tmp_path / "nope")

    def test_unknown_format_version_rejected(self, fitted_trainer, tmp_path):
        bundle = save_model(fitted_trainer, tmp_path / "bundle")
        meta = load_json(bundle / "model.json")
        meta["format_version"] = MODEL_FORMAT_VERSION + 1
        save_json(meta, bundle / "model.json")
        with pytest.raises(ValueError, match="format version"):
            load_model(bundle)

    def test_custom_embedder_rejected_with_guidance(self, music_scenario, fast_config,
                                                    tmp_path):
        embedder = HashedEmbedder(dim=fast_config.embedding_dim,
                                  tokenizer=Tokenizer(crop_size=fast_config.crop_size))

        class OpaqueEmbedder(TokenEmbedder):
            dim = fast_config.embedding_dim

            def embed_token(self, token):
                return embedder.embed_token(token)

        trainer = AdaMELZero(fast_config, embedder=OpaqueEmbedder())
        trainer.fit(music_scenario)
        with pytest.raises(TypeError, match="HashedEmbedder"):
            save_model(trainer, tmp_path / "nope")


class TestBatchedPredictor:
    def test_batched_equals_one_by_one(self, fitted_trainer, test_pairs):
        predictor = BatchedPredictor.from_trainer(fitted_trainer, micro_batch_size=7)
        batched = predictor.predict_proba(test_pairs)
        one_by_one = np.concatenate([predictor.predict_proba([pair]) for pair in test_pairs])
        np.testing.assert_allclose(batched, one_by_one, rtol=1e-9, atol=1e-12)

    def test_micro_batch_size_does_not_change_results(self, fitted_trainer, test_pairs):
        small = BatchedPredictor.from_trainer(fitted_trainer, micro_batch_size=3)
        large = BatchedPredictor.from_trainer(fitted_trainer, micro_batch_size=1000)
        np.testing.assert_allclose(small.predict_proba(test_pairs),
                                   large.predict_proba(test_pairs),
                                   rtol=1e-9, atol=1e-12)

    def test_stream_scores_match_bulk(self, fitted_trainer, test_pairs):
        predictor = BatchedPredictor.from_trainer(fitted_trainer)
        streamed = list(predictor.predict_proba_stream(iter(test_pairs), chunk_size=9))
        assert [len(chunk) for chunk, _ in streamed[:-1]] == [9] * (len(streamed) - 1)
        assert [pair for chunk, _ in streamed for pair in chunk] == list(test_pairs)
        scores = np.concatenate([probabilities for _, probabilities in streamed])
        np.testing.assert_allclose(scores, predictor.predict_proba(test_pairs),
                                   rtol=1e-9, atol=1e-12)

    def test_stream_rejects_invalid_chunk_size(self, fitted_trainer):
        predictor = BatchedPredictor.from_trainer(fitted_trainer)
        with pytest.raises(ValueError, match="chunk_size"):
            next(predictor.predict_proba_stream([], chunk_size=0))

    def test_matches_trainer_predictions(self, fitted_trainer, test_pairs):
        predictor = BatchedPredictor.from_trainer(fitted_trainer)
        np.testing.assert_allclose(predictor.predict_proba(test_pairs),
                                   fitted_trainer.predict_proba(test_pairs),
                                   rtol=1e-9, atol=1e-12)

    def test_load_from_bundle(self, fitted_trainer, test_pairs, tmp_path):
        bundle = save_model(fitted_trainer, tmp_path / "bundle")
        predictor = BatchedPredictor.load(bundle, micro_batch_size=16,
                                          cache=EncodingCache())
        np.testing.assert_allclose(predictor.predict_proba(test_pairs),
                                   fitted_trainer.predict_proba(test_pairs),
                                   rtol=1e-9, atol=1e-12)

    def test_queue_submit_flush(self, fitted_trainer, test_pairs):
        predictor = BatchedPredictor.from_trainer(fitted_trainer, micro_batch_size=8)
        bulk = predictor.predict_proba(test_pairs[:10])
        first = predictor.submit(test_pairs[:4])
        second = predictor.submit(test_pairs[4])
        third = predictor.submit(test_pairs[5:10])
        assert predictor.pending() == 10
        flushed = predictor.flush()
        assert predictor.pending() == 0
        assert flushed.shape == (10,)
        np.testing.assert_allclose(flushed, bulk, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(flushed[first], bulk[:4], rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(flushed[second], bulk[4:5], rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(flushed[third], bulk[5:10], rtol=1e-9, atol=1e-12)

    def test_flush_empty_queue(self, fitted_trainer):
        predictor = BatchedPredictor.from_trainer(fitted_trainer)
        assert predictor.flush().shape == (0,)

    def test_empty_predict(self, fitted_trainer):
        predictor = BatchedPredictor.from_trainer(fitted_trainer)
        assert predictor.predict_proba([]).shape == (0,)

    def test_predict_threshold(self, fitted_trainer, test_pairs):
        predictor = BatchedPredictor.from_trainer(fitted_trainer)
        hard = predictor.predict(test_pairs, threshold=0.5)
        assert set(np.unique(hard)).issubset({0, 1})

    def test_training_mode_restored(self, fitted_trainer, test_pairs):
        fitted_trainer.network.train(True)
        predictor = BatchedPredictor.from_trainer(fitted_trainer)
        predictor.predict_proba(test_pairs[:4])
        assert fitted_trainer.network.training is True

    def test_stats_track_batches(self, fitted_trainer, test_pairs):
        predictor = BatchedPredictor.from_trainer(fitted_trainer, micro_batch_size=4)
        predictor.predict_proba(test_pairs[:10])
        stats = predictor.stats()
        assert stats["requests_served"] == 10
        assert stats["batches_run"] == 3

    def test_queue_bounds_do_not_change_bulk_results(self, fitted_trainer, test_pairs):
        # The batched-equals-single guarantee must survive the queue knobs:
        # bulk scoring through a bounded/auto-flushing predictor is
        # bit-identical to the plain one, and to scoring one pair at a time.
        plain = BatchedPredictor.from_trainer(fitted_trainer, micro_batch_size=7)
        bounded = BatchedPredictor.from_trainer(fitted_trainer, micro_batch_size=7,
                                                max_queue_size=8, auto_flush=3)
        assert np.array_equal(plain.predict_proba(test_pairs),
                              bounded.predict_proba(test_pairs))
        one_by_one = np.concatenate([bounded.predict_proba([pair])
                                     for pair in test_pairs])
        np.testing.assert_allclose(bounded.predict_proba(test_pairs), one_by_one,
                                   rtol=1e-9, atol=1e-12)

    def test_max_queue_size_overflow_raises_and_preserves_queue(self, fitted_trainer,
                                                                test_pairs):
        predictor = BatchedPredictor.from_trainer(fitted_trainer, max_queue_size=4)
        first = predictor.submit(test_pairs[:3])
        with pytest.raises(PredictorQueueFull, match="max_queue_size"):
            predictor.submit(test_pairs[3:6])
        # Nothing was enqueued by the failed submit; earlier slices survive.
        assert predictor.pending() == 3
        flushed = predictor.flush()
        assert flushed.shape == (3,)
        np.testing.assert_allclose(flushed[first],
                                   predictor.predict_proba(test_pairs[:3]),
                                   rtol=1e-9, atol=1e-12)

    def test_auto_flush_bounds_backlog_and_keeps_submission_order(self, fitted_trainer,
                                                                  test_pairs):
        predictor = BatchedPredictor.from_trainer(fitted_trainer, auto_flush=4)
        bulk = predictor.predict_proba(test_pairs[:10])
        slices = [predictor.submit(pair) for pair in test_pairs[:10]]
        # The unscored backlog never exceeds the auto-flush threshold even
        # though 10 requests are pending.
        stats = predictor.stats()
        assert stats["queued"] < 4
        assert stats["pending"] == 10
        assert stats["buffered"] == stats["pending"] - stats["queued"]
        flushed = predictor.flush()
        assert predictor.pending() == 0
        assert flushed.shape == (10,)
        np.testing.assert_allclose(flushed, bulk, rtol=1e-9, atol=1e-12)
        for index, request in enumerate(slices):
            np.testing.assert_allclose(flushed[request], bulk[index:index + 1],
                                       rtol=1e-9, atol=1e-12)

    def test_auto_flush_must_fit_the_queue_bound(self, fitted_trainer):
        with pytest.raises(ValueError, match="auto_flush"):
            BatchedPredictor.from_trainer(fitted_trainer, max_queue_size=4,
                                          auto_flush=8)
        with pytest.raises(ValueError, match="max_queue_size"):
            BatchedPredictor.from_trainer(fitted_trainer, max_queue_size=0)

    def test_invalid_micro_batch_size(self, fitted_trainer):
        with pytest.raises(ValueError):
            BatchedPredictor.from_trainer(fitted_trainer, micro_batch_size=0)

    def test_unfitted_trainer_rejected(self, fast_config):
        with pytest.raises(ValueError, match="fitted"):
            BatchedPredictor.from_trainer(AdaMELBase(fast_config))
