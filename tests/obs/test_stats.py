"""Shared stats helpers: percentiles, Gini, bucket skew."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.stats import (PERCENTILE_POINTS, bucket_skew, gini,
                             histogram_percentiles, percentiles, top_k_buckets)


class TestPercentiles:
    def test_matches_numpy_percentile(self):
        samples = [0.5, 0.1, 0.9, 0.3, 0.7, 0.2]
        result = percentiles(samples)
        assert set(result) == {"p50", "p95", "p99"}
        for point in PERCENTILE_POINTS:
            assert result[f"p{point}"] == pytest.approx(
                float(np.percentile(samples, point)))

    def test_empty_input_yields_zeros(self):
        assert percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_custom_points(self):
        assert set(percentiles([1.0, 2.0], points=(25, 75))) == {"p25", "p75"}


class TestHistogramPercentiles:
    def test_interpolates_within_buckets(self):
        # 10 observations uniformly in the (0, 1] bucket: p50 ~ 0.5.
        result = histogram_percentiles((1.0, 2.0), (10, 0, 0))
        assert result["p50"] == pytest.approx(0.5)
        assert result["p99"] == pytest.approx(0.99)

    def test_spans_buckets_cumulatively(self):
        # 5 in (0,1], 5 in (1,2]: p50 falls exactly at the first boundary.
        result = histogram_percentiles((1.0, 2.0), (5, 5, 0))
        assert result["p50"] == pytest.approx(1.0)
        assert result["p99"] == pytest.approx(1.0 + (9.9 - 5.0) / 5.0)

    def test_inf_bucket_clamps_to_last_bound(self):
        result = histogram_percentiles((1.0, 2.0), (0, 0, 7))
        assert result["p50"] == 2.0

    def test_empty_histogram_yields_zeros(self):
        assert histogram_percentiles((1.0,), (0, 0)) == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0}


class TestGini:
    def test_even_distribution_is_zero(self):
        assert gini([4, 4, 4, 4]) == pytest.approx(0.0)

    def test_concentrated_distribution_is_high(self):
        assert gini([0, 0, 0, 10]) == pytest.approx(0.75)

    def test_scale_invariant(self):
        sizes = [1, 2, 3, 10]
        assert gini(sizes) == pytest.approx(gini([s * 100 for s in sizes]))

    def test_empty_and_all_zero_are_zero(self):
        assert gini([]) == 0.0
        assert gini([0, 0]) == 0.0


class TestBucketSkew:
    def test_top_k_is_deterministic_under_ties(self):
        sizes = {"b": 5, "a": 5, "c": 9, "d": 1}
        assert top_k_buckets(sizes, k=3) == [("c", 9), ("a", 5), ("b", 5)]
        assert top_k_buckets(sizes, k=0) == []

    def test_bucket_skew_summary(self):
        skew = bucket_skew({"x": 6, "y": 2, "z": 0}, top_k=2)
        assert skew["num_buckets"] == 3
        assert skew["num_records"] == 8
        assert skew["max_bucket_size"] == 6
        assert skew["mean_bucket_size"] == pytest.approx(8 / 3)
        assert skew["hottest"] == [("x", 6), ("y", 2)]
        assert 0.0 <= skew["gini"] < 1.0

    def test_empty_index(self):
        skew = bucket_skew({})
        assert skew["num_buckets"] == 0
        assert skew["max_bucket_size"] == 0
        assert skew["gini"] == 0.0
