"""Merge algebra for worker telemetry: payloads, metric folding, re-rooting.

The property tests use hand-rolled deterministic generators (no hypothesis
in the toolchain) over dyadic-rational values (integers over 4), so float
sums are exact and "N merged payloads == one shared registry" can be
asserted with ``==`` rather than approximately.
"""

from __future__ import annotations

import itertools
import pickle
import random

import pytest

from repro import obs
from repro.obs.merge import (TelemetryPayload, capture_payload,
                             merge_metric_entries, merge_payload)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NOOP_SPAN, Span, TraceCollector

BOUNDS = [0.25, 1.0, 4.0]


def _record(registry, events):
    """Apply (kind, labels, value) events to a registry."""
    for kind, labels, value in events:
        if kind == "counter":
            registry.counter("cache_hits_total", "hits", labels).inc(value)
        elif kind == "gauge":
            registry.gauge("coalescer_queue_depth_pairs", "depth",
                           labels).set(value)
        else:
            registry.histogram("store_upsert_seconds", "latency", labels,
                               buckets=BOUNDS).observe(value)


def _canonical(registry):
    """Snapshot keyed by (name, labels) for order-independent comparison.

    A gauge's current *value* is last-write-wins in a shared registry but
    max-of-values under merge — only the high watermark is order-free, so
    gauges are compared by watermark alone.
    """
    canonical = {}
    for e in registry.snapshot():
        entry = {k: v for k, v in e.items() if k != "help"}
        if e["kind"] == "gauge":
            entry.pop("value")
        canonical[(e["name"], tuple(sorted(e["labels"].items())))] = entry
    return canonical


def _random_events(rng, n):
    kinds = ("counter", "gauge", "histogram")
    label_sets = ((), (("worker", "a"),), (("worker", "b"),))
    return [(rng.choice(kinds), dict(rng.choice(label_sets)),
             rng.randrange(0, 64) / 4.0) for _ in range(n)]


class TestMergeMetricEntries:
    def test_counters_sum(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("cache_hits_total", "hits").inc(3)
        right.counter("cache_hits_total", "hits").inc(4)
        merge_metric_entries(left, right.snapshot())
        assert left.counter("cache_hits_total", "hits").value == 7.0

    def test_gauges_keep_watermark_max_not_sum(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        gauge = left.gauge("coalescer_queue_depth_pairs", "depth")
        gauge.set(10)
        gauge.set(2)  # current value 2, watermark 10
        other = right.gauge("coalescer_queue_depth_pairs", "depth")
        other.set(5)  # current value 5, watermark 5
        merge_metric_entries(left, right.snapshot())
        snap = gauge.snapshot()
        assert snap["value"] == 5.0  # max of values, not 7
        assert snap["max"] == 10.0  # max of watermarks, untouched by value 5

    def test_gauge_merge_does_not_raise_value_to_peak(self):
        """The other side's *watermark* must not become this side's value."""
        left, right = MetricsRegistry(), MetricsRegistry()
        left.gauge("coalescer_queue_depth_pairs", "depth").set(1)
        other = right.gauge("coalescer_queue_depth_pairs", "depth")
        other.set(50)
        other.set(2)  # value 2, watermark 50
        merge_metric_entries(left, right.snapshot())
        snap = left.gauge("coalescer_queue_depth_pairs", "depth").snapshot()
        assert snap["value"] == 2.0
        assert snap["max"] == 50.0

    def test_histograms_add_bucket_wise_with_extrema(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        mine = left.histogram("store_upsert_seconds", "latency", buckets=BOUNDS)
        theirs = right.histogram("store_upsert_seconds", "latency", buckets=BOUNDS)
        for value in (0.25, 2.0):
            mine.observe(value)
        for value in (0.5, 8.0):
            theirs.observe(value)
        merge_metric_entries(left, right.snapshot())
        snap = mine.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 10.75
        assert snap["min"] == 0.25
        assert snap["max"] == 8.0
        assert sum(count for _, count in snap["buckets"]) == 4

    def test_empty_histogram_merge_leaves_extrema_alone(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        mine = left.histogram("store_upsert_seconds", "latency", buckets=BOUNDS)
        mine.observe(0.5)
        right.histogram("store_upsert_seconds", "latency", buckets=BOUNDS)
        merge_metric_entries(left, right.snapshot())
        snap = mine.snapshot()
        assert snap["count"] == 1
        # An empty snapshot reports min/max 0.0; merging it must not
        # pollute the real extrema.
        assert snap["min"] == 0.5

    def test_mismatched_histogram_bounds_raise(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("store_upsert_seconds", "latency", buckets=BOUNDS)
        right.histogram("store_upsert_seconds", "latency", buckets=[0.5, 2.0])
        with pytest.raises(ValueError):
            merge_metric_entries(left, right.snapshot())

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown kind"):
            merge_metric_entries(MetricsRegistry(),
                                 [{"name": "cache_hits_total",
                                   "kind": "summary", "labels": {}}])

    def test_disjoint_label_sets_union(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("cache_hits_total", "hits", {"worker": "a"}).inc(1)
        right.counter("cache_hits_total", "hits", {"worker": "b"}).inc(2)
        merge_metric_entries(left, right.snapshot())
        assert len([e for e in left.snapshot()
                    if e["name"] == "cache_hits_total"]) == 2


class TestMergeAlgebraProperties:
    """Hand-rolled property tests: exact equality over dyadic values."""

    def test_n_way_merge_equals_one_shared_registry(self):
        rng = random.Random(7)
        for trial in range(10):
            worker_events = [_random_events(rng, rng.randrange(1, 12))
                             for _ in range(4)]
            shared = MetricsRegistry()
            for events in worker_events:
                _record(shared, events)
            merged = MetricsRegistry()
            for events in worker_events:
                worker = MetricsRegistry()
                _record(worker, events)
                merge_metric_entries(merged, worker.snapshot())
            assert _canonical(merged) == _canonical(shared), f"trial {trial}"

    def test_merge_is_commutative_and_associative(self):
        rng = random.Random(13)
        worker_events = [_random_events(rng, 8) for _ in range(3)]
        snapshots = []
        for events in worker_events:
            worker = MetricsRegistry()
            _record(worker, events)
            snapshots.append(worker.snapshot())
        reference = None
        for order in itertools.permutations(range(3)):
            merged = MetricsRegistry()
            for index in order:
                merge_metric_entries(merged, snapshots[index])
            canonical = _canonical(merged)
            if reference is None:
                reference = canonical
            assert canonical == reference, f"order {order}"

    def test_merge_is_idempotent_source(self):
        """Merging a snapshot never mutates the snapshot itself."""
        worker = MetricsRegistry()
        worker.counter("cache_hits_total", "hits").inc(3)
        snapshot = worker.snapshot()
        frozen = [dict(entry) for entry in snapshot]
        merge_metric_entries(MetricsRegistry(), snapshot)
        merge_metric_entries(MetricsRegistry(), snapshot)
        assert snapshot == frozen


class TestSpanRoundTrip:
    def test_from_dict_inverts_to_dict(self):
        with obs.telemetry() as session:
            with obs.trace("sharded.worker", shard=2):
                with obs.trace("emit", shard=2):
                    pass
                with obs.trace("score", shard=2, pairs=9):
                    pass
        (root,) = session.collector.roots()
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt.to_dict() == root.to_dict()
        assert [child.name for child in rebuilt.children] == ["emit", "score"]
        assert rebuilt.children[1].attributes == {"shard": 2, "pairs": 9}


class TestPayload:
    def test_capture_and_pickle_round_trip(self):
        with obs.telemetry() as session:
            obs.counter("cache_hits_total", "hits").inc(5)
            with obs.trace("sharded.worker", shard=0):
                pass
            payload = capture_payload(session.registry, session.collector,
                                      shard=0)
        clone = pickle.loads(pickle.dumps(payload))
        assert clone.context == {"shard": 0}
        assert clone.spans == payload.spans
        assert {e["name"] for e in clone.metrics} == {"cache_hits_total"}

    def test_capture_defaults_to_active_session(self):
        with obs.telemetry():
            obs.counter("cache_hits_total", "hits").inc(1)
            payload = capture_payload()
        assert {e["name"] for e in payload.metrics} == {"cache_hits_total"}

    def test_capture_while_disabled_is_empty(self):
        payload = capture_payload()
        assert payload.metrics == [] and payload.spans == []


class TestMergePayload:
    @staticmethod
    def worker_payload(shard):
        with obs.telemetry() as session:
            obs.counter("cache_hits_total", "hits").inc(1)
            with obs.trace("sharded.worker"):
                with obs.trace("score"):
                    pass
        return capture_payload(session.registry, session.collector,
                               shard=shard)

    def test_reroots_under_parent_with_labels(self):
        payloads = [self.worker_payload(shard) for shard in range(3)]
        with obs.telemetry() as session:
            with obs.trace("sharded.score") as parent:
                for shard, payload in enumerate(payloads):
                    adopted = merge_payload(payload, parent=parent,
                                            shard=shard)
                    assert [span.name for span in adopted] == ["sharded.worker"]
        (root,) = session.collector.roots()
        workers = [span for span in root.children
                   if span.name == "sharded.worker"]
        assert [span.attributes["shard"] for span in workers] == [0, 1, 2]
        assert [child.name for child in workers[0].children] == ["score"]
        assert session.registry.counter("cache_hits_total", "hits").value == 3.0

    def test_without_parent_spans_become_collector_roots(self):
        payload = self.worker_payload(0)
        registry, collector = MetricsRegistry(), TraceCollector()
        merge_payload(payload, registry=registry, collector=collector)
        assert [span.name for span in collector.roots()] == ["sharded.worker"]

    def test_noop_parent_falls_back_to_collector(self):
        """Adopting under the shared NOOP_SPAN would corrupt its class-level
        children list; the merge must treat it as 'no parent'."""
        payload = self.worker_payload(0)
        collector = TraceCollector()
        merge_payload(payload, registry=MetricsRegistry(),
                      collector=collector, parent=NOOP_SPAN)
        assert not NOOP_SPAN.children
        assert [span.name for span in collector.roots()] == ["sharded.worker"]

    def test_empty_payload_is_a_no_op(self):
        registry, collector = MetricsRegistry(), TraceCollector()
        assert merge_payload(TelemetryPayload(), registry=registry,
                             collector=collector) == []
        assert registry.snapshot() == [] and collector.roots() == []


class TestDetachedStack:
    def test_worker_scope_does_not_nest_under_open_driver_span(self):
        """An in-process worker must build its own root even while the
        driver's span is open on this thread (the forked case gets this for
        free; detached_stack makes both modes uniform)."""
        with obs.telemetry() as driver:
            with obs.trace("sharded.score"):
                with obs.detached_stack(), obs.telemetry() as worker:
                    with obs.trace("sharded.worker"):
                        pass
                    assert [s.name for s in worker.collector.roots()] == \
                        ["sharded.worker"]
        assert [s.name for s in driver.collector.roots()] == ["sharded.score"]
        (driver_root,) = driver.collector.roots()
        assert driver_root.children == []
