"""Span tracing: nesting, attributes, error tagging, collector bounds."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs.tracing import NOOP_SPAN, TraceCollector


class TestTraceScope:
    def test_disabled_trace_yields_the_noop_span(self):
        with obs.trace("pipeline.run", records=3) as span:
            assert span is NOOP_SPAN
        span.set("key", "value")  # must be inert

    def test_nested_spans_build_a_tree(self):
        with obs.telemetry() as session:
            with obs.trace("pipeline.run") as root:
                with obs.trace("ingest", chunk=0) as child:
                    with obs.trace("parse"):
                        pass
                with obs.trace("block"):
                    pass
        roots = session.collector.roots()
        assert [span.name for span in roots] == ["pipeline.run"]
        assert [span.name for span in root.children] == ["ingest", "block"]
        assert child.attributes == {"chunk": 0}
        assert [span.name for span in child.children] == ["parse"]
        assert root.seconds >= sum(c.seconds for c in root.children) >= 0.0
        assert root.cpu_seconds >= 0.0

    def test_exceptions_are_tagged_and_reraised(self):
        with obs.telemetry() as session:
            with pytest.raises(RuntimeError):
                with obs.trace("serve.upsert"):
                    raise RuntimeError("boom")
        (root,) = session.collector.roots()
        assert root.attributes["error"] == "RuntimeError"
        assert root.seconds >= 0.0  # finished despite the exception

    def test_current_span_tracks_the_stack(self):
        assert obs.current_span() is None
        with obs.telemetry():
            with obs.trace("outer") as outer:
                assert obs.current_span() is outer
                with obs.trace("inner") as inner:
                    assert obs.current_span() is inner
                assert obs.current_span() is outer
            assert obs.current_span() is None

    def test_span_to_dict_round_trips_the_tree(self):
        with obs.telemetry() as session:
            with obs.trace("pipeline.run", records=5) as root:
                root.set("candidates", 9)
                with obs.trace("score"):
                    pass
        tree = session.collector.roots()[0].to_dict()
        assert tree["name"] == "pipeline.run"
        assert tree["attributes"] == {"records": 5, "candidates": 9}
        assert [child["name"] for child in tree["children"]] == ["score"]
        assert tree["seconds"] >= tree["children"][0]["seconds"]


class TestCollector:
    def test_collector_keeps_a_bounded_deque_of_roots(self):
        collector = TraceCollector(max_roots=3)
        obs.set_active_collector(collector)
        try:
            for index in range(5):
                with obs.trace("serve.query", index=index):
                    pass
        finally:
            obs.set_active_collector(None)
        roots = collector.roots()
        assert len(roots) == 3
        assert [span.attributes["index"] for span in roots] == [2, 3, 4]

    def test_threads_build_independent_trees(self):
        with obs.telemetry() as session:
            barrier = threading.Barrier(2)

            def worker(name):
                with obs.trace(name):
                    barrier.wait(timeout=5)
                    with obs.trace("inner"):
                        pass

            threads = [threading.Thread(target=worker, args=(f"root-{i}",))
                       for i in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        roots = session.collector.roots()
        # Two independent roots, each with exactly its own child — no
        # cross-thread adoption despite overlapping lifetimes.
        assert sorted(span.name for span in roots) == ["root-0", "root-1"]
        assert all([c.name for c in span.children] == ["inner"] for span in roots)
