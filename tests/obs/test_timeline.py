"""ASCII Gantt timelines: root selection, bar geometry, the CLI flag."""

from __future__ import annotations

from repro import obs
from repro.obs.__main__ import main as obs_main
from repro.obs.export import write_export
from repro.obs.timeline import render_timeline, render_timelines, timeline_roots


def span(name, started_at, seconds, children=(), **attrs):
    node = {"name": name, "started_at": started_at, "seconds": seconds,
            "cpu_seconds": seconds}
    if attrs:
        node["attributes"] = dict(attrs)
    if children:
        node["children"] = list(children)
    return node


def sharded_root():
    workers = [span("sharded.worker", 10.0 + 0.1 * shard, 0.5, shard=shard)
               for shard in range(3)]
    return span("sharded.run", 10.0, 1.0,
                children=[span("sharded.score", 10.0, 0.8, children=workers)])


class TestTimelineRoots:
    def test_prefers_roots_with_worker_spans(self):
        roots = timeline_roots([span("train.epoch", 0.0, 9.0), sharded_root(),
                                span("pipeline.run", 0.0, 2.0)])
        assert [r["name"] for r in roots] == ["sharded.run"]

    def test_falls_back_to_pipeline_shaped_roots_newest_first(self):
        first = span("pipeline.run", 0.0, 1.0)
        second = span("pipeline.run", 5.0, 1.0)
        roots = timeline_roots([first, span("serve.query", 0.0, 9.0), second])
        assert roots == [second, first]

    def test_last_resort_is_the_single_longest_root(self):
        short = span("serve.query", 0.0, 0.1)
        long = span("train.epoch", 0.0, 2.0)
        assert timeline_roots([short, long]) == [long]

    def test_empty_traces(self):
        assert timeline_roots([]) == []
        assert render_timelines([]) == "(no trace trees to render)"


class TestRenderTimeline:
    def test_rows_bars_and_shard_labels(self):
        text = render_timeline(sharded_root(), width=40)
        lines = text.splitlines()
        assert "sharded.run" in lines[0] and "total 1.0000s" in lines[0]
        assert all("|" in line for line in lines[1:])
        for shard in range(3):
            assert any(f"sharded.worker[shard={shard}]" in line
                       for line in lines)

    def test_bar_position_tracks_start_offset(self):
        root = span("root", 0.0, 1.0,
                    children=[span("late", 0.75, 0.25)])
        text = render_timeline(root, width=40)
        late_row = next(line for line in text.splitlines() if "late" in line)
        bar = late_row.split("|")[1]
        # A span covering the last quarter must start past the midpoint.
        assert bar.index("#") >= 20
        assert bar.rstrip().endswith("#")

    def test_out_of_range_children_clamp_into_the_axis(self):
        root = span("root", 100.0, 1.0,
                    children=[span("skewed", 0.0, 50.0)])
        bar_rows = render_timeline(root, width=40).splitlines()[2:]
        for row in bar_rows:
            bar = row.split("|")[1]
            assert len(bar) == 40

    def test_deep_trees_are_elided(self):
        node = span("leaf", 0.0, 0.1)
        for name in ("d3", "d2", "d1"):
            node = span(name, 0.0, 0.1, children=[node])
        root = span("root", 0.0, 0.1, children=[node])
        text = render_timeline(root, max_depth=3)
        assert "deeper spans elided" in text
        assert "leaf" not in text


class TestCliTimeline:
    @staticmethod
    def export_with_workers(path):
        with obs.telemetry() as session:
            with obs.trace("sharded.run"):
                with obs.trace("sharded.score"):
                    with obs.detached_stack():
                        with obs.trace("sharded.worker", shard=0):
                            pass
        return write_export(path, registry=session.registry,
                            collector=session.collector)

    def test_from_export_timeline_renders_worker_rows(self, tmp_path, capsys):
        path = self.export_with_workers(tmp_path / "run.jsonl")
        assert obs_main(["--from-export", str(path), "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "one row per span" in out

    def test_timeline_conflicts_with_exposition(self, tmp_path, capsys):
        path = self.export_with_workers(tmp_path / "run.jsonl")
        assert obs_main(["--from-export", str(path), "--timeline",
                         "--exposition"]) == 2

    def test_demo_timeline(self, capsys):
        assert obs_main(["--demo", "--timeline"]) == 0
        assert "one row per span" in capsys.readouterr().out
