"""Metrics registry: instruments, families, exposition, on/off switching."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs.metrics import (DEFAULT_SIZE_BUCKETS, METRIC_SUBSYSTEMS,
                               METRIC_UNITS, BoundHandles, MetricsRegistry,
                               NOOP_INSTRUMENT, valid_metric_name)


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("cache_hits_total", "help")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_tracks_value_and_high_watermark(self):
        gauge = MetricsRegistry().gauge("coalescer_queue_depth_pairs")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3.0
        assert gauge.max_value == 10.0
        gauge.set_max(7)  # below the watermark, above the value
        assert gauge.value == 7.0
        assert gauge.max_value == 10.0
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 10.0

    def test_histogram_buckets_sum_count_min_max(self):
        hist = MetricsRegistry().histogram("store_upsert_seconds",
                                           buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 2.0, 100.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(102.65)
        assert snap["min"] == 0.05
        assert snap["max"] == 100.0
        # Upper bounds are inclusive (bisect_left): 0.1 lands in the first bucket.
        assert snap["buckets"] == [[0.1, 2], [1.0, 1], [10.0, 1], ["+Inf", 1]]

    def test_histogram_sum_is_bit_identical_to_sequential_sum(self):
        # The TrainingHistory migration feeds the same floats to a list and a
        # histogram; both must reduce to the identical float64.
        values = [0.1 + i * 1e-3 for i in range(100)]
        hist = MetricsRegistry().histogram("training_step_seconds")
        total = 0.0
        for value in values:
            hist.observe(value)
            total += value
        assert hist.sum == total

    def test_histogram_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("store_upsert_seconds", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("store_query_seconds", buckets=(1.0, 1.0, 2.0))


class TestRegistry:
    def test_registration_is_idempotent_per_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("cache_hits_total", "help")
        b = registry.counter("cache_hits_total")
        assert a is b
        labeled = registry.counter("cache_hits_total", labels={"tier": "l1"})
        assert labeled is not a
        assert labeled is registry.counter("cache_hits_total", labels={"tier": "l1"})

    def test_kind_and_bucket_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("cache_hits_total")
        with pytest.raises(ValueError):
            registry.gauge("cache_hits_total")
        registry.histogram("store_upsert_seconds", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("store_upsert_seconds", buckets=(1.0, 3.0))

    def test_invalid_names_and_labels_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("Bad-Name")
        with pytest.raises(ValueError):
            registry.counter("cache_hits_total", labels={"Bad-Label": "x"})

    def test_snapshot_is_sorted_and_json_able(self):
        import json

        registry = MetricsRegistry()
        registry.counter("store_upserts_total").inc()
        registry.gauge("cache_entries_count").set(3)
        registry.histogram("store_upsert_seconds").observe(0.01)
        snap = registry.snapshot()
        assert [entry["name"] for entry in snap] == sorted(entry["name"]
                                                           for entry in snap)
        json.dumps(snap)  # must not raise

    def test_exposition_renders_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("cache_hits_total", "Cache hits").inc(3)
        registry.counter("cache_hits_total", labels={"tier": "l1"}).inc(2)
        hist = registry.histogram("store_upsert_seconds", "Upsert latency",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.exposition()
        lines = text.splitlines()
        assert "# HELP cache_hits_total Cache hits" in lines
        assert "# TYPE cache_hits_total counter" in lines
        assert "cache_hits_total 3" in lines
        assert 'cache_hits_total{tier="l1"} 2' in lines
        # Histogram buckets are cumulative and end with +Inf == _count.
        assert 'store_upsert_seconds_bucket{le="0.1"} 1' in lines
        assert 'store_upsert_seconds_bucket{le="1"} 2' in lines
        assert 'store_upsert_seconds_bucket{le="+Inf"} 3' in lines
        assert "store_upsert_seconds_count 3" in lines
        assert text.endswith("\n")


class TestActiveRegistrySwitch:
    def test_helpers_return_noop_while_disabled(self):
        assert not obs.enabled()
        assert obs.counter("cache_hits_total") is NOOP_INSTRUMENT
        assert obs.gauge("cache_entries_count") is NOOP_INSTRUMENT
        assert obs.histogram("store_upsert_seconds") is NOOP_INSTRUMENT
        # No-ops swallow everything without state.
        NOOP_INSTRUMENT.inc()
        NOOP_INSTRUMENT.observe(1.0)
        assert NOOP_INSTRUMENT.value == 0.0

    def test_telemetry_scope_installs_and_restores(self):
        with obs.telemetry() as session:
            assert obs.enabled()
            obs.counter("cache_hits_total").inc()
            assert obs.active_registry() is session.registry
        assert not obs.enabled()
        # The session stays readable after the scope exits.
        assert session.registry.snapshot()[0]["value"] == 1.0

    def test_nested_telemetry_restores_the_outer_session(self):
        with obs.telemetry() as outer:
            with obs.telemetry() as inner:
                obs.counter("cache_hits_total").inc()
                assert obs.active_registry() is inner.registry
            assert obs.active_registry() is outer.registry
        assert not obs.enabled()

    def test_bound_handles_follow_the_active_registry(self):
        calls = []

        def binder(registry):
            calls.append(registry)
            return registry.counter("cache_hits_total")

        handles = BoundHandles(binder)
        assert handles.get() is None  # disabled -> no handles, binder not called
        assert calls == []
        with obs.telemetry() as session:
            first = handles.get()
            second = handles.get()
            assert first is second  # steady state: one bind, identity check after
            assert calls == [session.registry]
        assert handles.get() is None

    def test_concurrent_recording_is_consistent(self):
        registry = MetricsRegistry()
        counter = registry.counter("cache_hits_total")
        hist = registry.histogram("infer_batch_pairs", buckets=DEFAULT_SIZE_BUCKETS)

        def worker():
            for _ in range(1000):
                counter.inc()
                hist.observe(8)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000.0
        assert hist.count == 4000


class TestNamingConvention:
    def test_valid_names(self):
        assert valid_metric_name("cache_hits_total")
        assert valid_metric_name("coalescer_queue_depth_pairs")
        assert valid_metric_name("training_step_seconds")
        assert valid_metric_name("index_bucket_gini_ratio")

    def test_invalid_names(self):
        assert not valid_metric_name("hits_total")  # unknown subsystem
        assert not valid_metric_name("cache_hits")  # missing unit
        assert not valid_metric_name("cache_total")  # no descriptive middle
        assert not valid_metric_name("Cache_hits_total")
        assert all(subsystem.islower() for subsystem in METRIC_SUBSYSTEMS)
        assert all(unit.islower() for unit in METRIC_UNITS)
