"""SLO engine: burn-rate windows, status folding, catalog, report rendering.

Every test drives an injected fake clock, so window pruning and the
short-vs-long burn distinction are deterministic — no sleeps.
"""

from __future__ import annotations

import pytest

from repro.obs.slo import (SLO, SLOConfig, SLOMonitor,
                           default_service_objectives, format_health)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


def latency_slo(clock, target=0.9, threshold=0.1, windows=(60.0, 600.0),
                burn_threshold=2.0):
    return SLO(SLOConfig("serve_query_latency", "latency_quantile",
                         target=target, threshold=threshold, windows=windows,
                         burn_threshold=burn_threshold), clock=clock)


class TestConfigValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SLOConfig("x", "availability")

    @pytest.mark.parametrize("target", [0.0, 1.0, -0.5, 2.0])
    def test_target_must_be_a_proper_fraction(self, target):
        with pytest.raises(ValueError, match="target"):
            SLOConfig("x", "error_rate", target=target)

    @pytest.mark.parametrize("windows", [(600.0, 60.0), (0.0, 60.0),
                                         (60.0, 60.0)])
    def test_windows_must_be_short_then_long(self, windows):
        with pytest.raises(ValueError, match="windows"):
            SLOConfig("x", "error_rate", windows=windows)

    def test_burn_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="burn_threshold"):
            SLOConfig("x", "error_rate", burn_threshold=0.0)


class TestSLOEvaluation:
    def test_no_data(self):
        report = latency_slo(FakeClock()).evaluate()
        assert report["status"] == "no_data"
        for window in report["windows"].values():
            assert window["total"] == 0.0
            assert window["burn_rate"] == 0.0

    def test_all_good_passes_with_zero_burn(self):
        clock = FakeClock()
        slo = latency_slo(clock)
        for _ in range(20):
            slo.record(0.05)
            clock.tick(1.0)
        report = slo.evaluate()
        assert report["status"] == "pass"
        assert all(w["burn_rate"] == 0.0 for w in report["windows"].values())

    def test_burn_rate_is_bad_ratio_over_budget(self):
        clock = FakeClock()
        slo = latency_slo(clock, target=0.9)  # budget = 0.1
        for index in range(10):
            slo.record(0.05 if index < 8 else 0.5)  # 20% bad
            clock.tick(1.0)
        report = slo.evaluate()
        short = report["windows"]["60s"]
        assert short["good_ratio"] == pytest.approx(0.8)
        assert short["burn_rate"] == pytest.approx(2.0)

    def test_sustained_burn_on_both_windows_is_breached(self):
        clock = FakeClock()
        slo = latency_slo(clock, target=0.9, burn_threshold=2.0)
        for _ in range(30):
            slo.record(0.5)  # every event bad: burn = 10x everywhere
            clock.tick(1.0)
        assert slo.evaluate()["status"] == "breached"

    def test_short_window_spike_alone_is_burning(self):
        clock = FakeClock()
        slo = latency_slo(clock, target=0.9, windows=(60.0, 600.0))
        # Five minutes of healthy traffic, then a bad final minute: the
        # short window burns hot, the long window still has budget.
        for _ in range(300):
            slo.record(0.05)
            clock.tick(1.0)
        for _ in range(50):
            slo.record(0.5)
            clock.tick(1.0)
        report = slo.evaluate()
        assert report["status"] == "burning"
        assert report["windows"]["60s"]["burn_rate"] > 2.0
        assert report["windows"]["600s"]["burn_rate"] < 2.0

    def test_samples_age_out_of_the_long_window(self):
        clock = FakeClock()
        slo = latency_slo(clock)
        slo.record(0.5)  # bad
        clock.tick(601.0)
        slo.record(0.05)  # the prune happens on record
        report = slo.evaluate()
        assert report["status"] == "pass"
        assert report["windows"]["600s"]["total"] == 1.0

    def test_latency_reports_observed_quantile(self):
        clock = FakeClock()
        slo = latency_slo(clock, target=0.9, threshold=0.1)
        for index in range(10):
            slo.record(index / 100.0)
            clock.tick(1.0)
        report = slo.evaluate()
        observed = report["windows"]["600s"]["observed_quantile"]
        assert 0.08 <= observed <= 0.09

    def test_error_rate_uses_explicit_good_flag(self):
        clock = FakeClock()
        slo = SLO(SLOConfig("serve_error_rate", "error_rate", target=0.9),
                  clock=clock)
        for index in range(10):
            slo.record(1.0 if index == 0 else 0.0, good=index != 0)
            clock.tick(1.0)
        report = slo.evaluate()
        assert report["windows"]["600s"]["good"] == 9.0
        assert "observed_quantile" not in report["windows"]["600s"]

    def test_queue_saturation_good_below_threshold(self):
        clock = FakeClock()
        slo = SLO(SLOConfig("coalescer_queue_saturation", "queue_saturation",
                            target=0.9, threshold=0.8), clock=clock)
        slo.record(0.2)
        slo.record(0.95)
        report = slo.evaluate()
        assert report["windows"]["600s"]["good"] == 1.0


class TestSLOMonitor:
    def test_duplicate_names_rejected(self):
        config = SLOConfig("serve_error_rate", "error_rate")
        with pytest.raises(ValueError, match="duplicate"):
            SLOMonitor([config, config])

    def test_membership_and_names(self):
        monitor = SLOMonitor(default_service_objectives())
        assert "serve_query_latency" in monitor
        assert "nope" not in monitor
        assert monitor.names() == ["serve_query_latency",
                                   "serve_upsert_latency",
                                   "serve_error_rate",
                                   "coalescer_queue_saturation",
                                   "wal_fsync_latency"]

    def test_health_is_worst_objective_with_data(self):
        clock = FakeClock()
        monitor = SLOMonitor(
            [SLOConfig("serve_query_latency", "latency_quantile",
                       target=0.9, threshold=0.1),
             SLOConfig("serve_error_rate", "error_rate", target=0.9)],
            clock=clock)
        for _ in range(20):
            monitor.record("serve_query_latency", 0.5)  # all bad: breached
            monitor.record("serve_error_rate", 0.0, good=True)
            clock.tick(1.0)
        report = monitor.health()
        assert report["status"] == "breached"
        statuses = {o["name"]: o["status"] for o in report["objectives"]}
        assert statuses == {"serve_query_latency": "breached",
                            "serve_error_rate": "pass"}

    def test_no_data_objectives_do_not_drag_health_down(self):
        clock = FakeClock()
        monitor = SLOMonitor(default_service_objectives(), clock=clock)
        monitor.record("serve_query_latency", 0.01)
        assert monitor.health()["status"] == "pass"

    def test_empty_monitor_reports_no_data(self):
        assert SLOMonitor(default_service_objectives())\
            .health()["status"] == "no_data"


class TestDefaultCatalog:
    def test_catalog_matches_documented_defaults(self):
        by_name = {c.name: c for c in default_service_objectives()}
        assert by_name["serve_query_latency"].threshold == 0.250
        assert by_name["serve_upsert_latency"].threshold == 0.500
        assert by_name["serve_error_rate"].target == 0.999
        assert by_name["coalescer_queue_saturation"].threshold == 0.8
        assert all(c.windows == (60.0, 600.0) and c.burn_threshold == 2.0
                   for c in by_name.values())


class TestFormatHealth:
    def test_renders_every_objective_with_status_and_burns(self):
        clock = FakeClock()
        monitor = SLOMonitor(default_service_objectives(), clock=clock)
        for _ in range(5):
            monitor.record("serve_query_latency", 0.020)
            monitor.record("serve_error_rate", 0.0, good=True)
            monitor.record("coalescer_queue_saturation", 0.1)
            clock.tick(1.0)
        text = format_health(monitor.health(), uptime=12.5)
        assert text.startswith("service health: PASS")
        assert "uptime 12.5s" in text
        for name in monitor.names():
            assert name in text
        assert "p95" in text  # latency detail renders the quantile
        assert "0 errors / 5 requests" in text
