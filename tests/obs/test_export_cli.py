"""JSONL export round-trip, the dashboard renderer, and the obs CLI."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.__main__ import main as obs_main
from repro.obs.dashboard import render_dashboard, render_metrics, render_trace_tree
from repro.obs.export import (EXPORT_SCHEMA_VERSION, SUPPORTED_EXPORT_SCHEMAS,
                              ExportError, load_export, write_export)


def _record_session(path):
    """One tiny enabled session with metrics and a trace, exported to path."""
    with obs.telemetry() as session:
        obs.counter("cache_hits_total", "Cache hits").inc(7)
        obs.gauge("coalescer_queue_depth_pairs", "Queue depth").set(12)
        obs.histogram("store_upsert_seconds", "Upsert latency").observe(0.004)
        with obs.trace("pipeline.run", records=2):
            with obs.trace("score"):
                pass
        return write_export(path, registry=session.registry,
                            collector=session.collector)


class TestExportRoundTrip:
    def test_round_trip_preserves_metrics_and_traces(self, tmp_path):
        path = _record_session(tmp_path / "run.jsonl")
        export = load_export(path)
        assert export["meta"]["type"] == "meta"
        assert "argv" in export["meta"]
        by_name = {entry["name"]: entry for entry in export["metrics"]}
        assert by_name["cache_hits_total"]["value"] == 7.0
        assert by_name["coalescer_queue_depth_pairs"]["max"] == 12.0
        hist = by_name["store_upsert_seconds"]
        assert hist["count"] == 1
        assert hist["buckets"][-1][0] == "+Inf"
        (trace,) = export["traces"]
        assert trace["name"] == "pipeline.run"
        assert [child["name"] for child in trace["children"]] == ["score"]

    def test_export_file_is_line_oriented_json(self, tmp_path):
        path = _record_session(tmp_path / "run.jsonl")
        lines = path.read_text().splitlines()
        types = [json.loads(line)["type"] for line in lines]
        assert types[0] == "meta"
        assert set(types) == {"meta", "metric", "trace"}

    def test_export_while_disabled_writes_only_meta(self, tmp_path):
        path = write_export(tmp_path / "empty.jsonl")
        export = load_export(path)
        assert export["metrics"] == [] and export["traces"] == []

    def test_unknown_line_types_are_ignored(self, tmp_path):
        path = _record_session(tmp_path / "run.jsonl")
        with path.open("a") as handle:
            handle.write(json.dumps({"type": "future-extension"}) + "\n")
        load_export(path)  # must not raise

    def test_malformed_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(ExportError, match=r"bad\.jsonl:2"):
            load_export(path)

    def test_fully_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ExportError, match="empty export"):
            load_export(path)


class TestExportSchemaVersion:
    def test_meta_line_carries_current_schema(self, tmp_path):
        path = _record_session(tmp_path / "run.jsonl")
        meta = json.loads(path.read_text().splitlines()[0])
        assert meta["schema"] == EXPORT_SCHEMA_VERSION == 2
        assert load_export(path)["meta"]["schema"] == 2

    def test_version_1_files_without_the_field_still_load(self, tmp_path):
        path = _record_session(tmp_path / "run.jsonl")
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        del meta["schema"]  # what a pre-versioning writer produced
        path.write_text("\n".join([json.dumps(meta)] + lines[1:]) + "\n")
        export = load_export(path)
        assert "schema" not in export["meta"]
        assert export["metrics"]  # payload still read

    @pytest.mark.parametrize("schema", [99, "2", 2.5])
    def test_unknown_or_malformed_schema_rejected(self, tmp_path, schema):
        path = _record_session(tmp_path / "run.jsonl")
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        meta["schema"] = schema
        path.write_text("\n".join([json.dumps(meta)] + lines[1:]) + "\n")
        with pytest.raises(ExportError, match="not supported"):
            load_export(path)

    def test_rejection_names_versions_and_line(self, tmp_path):
        path = _record_session(tmp_path / "run.jsonl")
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        meta["schema"] = 99
        path.write_text("\n".join([json.dumps(meta)] + lines[1:]) + "\n")
        with pytest.raises(ExportError) as excinfo:
            load_export(path)
        message = str(excinfo.value)
        assert "run.jsonl:1" in message
        assert "99" in message
        for supported in SUPPORTED_EXPORT_SCHEMAS:
            assert str(supported) in message


class TestDashboard:
    def test_renders_counters_gauges_histograms_and_traces(self, tmp_path):
        path = _record_session(tmp_path / "run.jsonl")
        export = load_export(path)
        text = render_dashboard(metrics=export["metrics"],
                                traces=export["traces"], title="test dash")
        assert "test dash" in text
        assert "cache_hits_total" in text
        assert "coalescer_queue_depth_pairs" in text
        assert "store_upsert_seconds" in text
        assert "pipeline.run" in text

    def test_empty_metrics_has_a_fallback_line(self):
        assert "(no metrics recorded)" in render_metrics([])

    def test_trace_tree_indents_children(self, tmp_path):
        path = _record_session(tmp_path / "run.jsonl")
        (trace,) = load_export(path)["traces"]
        text = render_trace_tree(trace)
        root_line = next(line for line in text.splitlines() if "pipeline.run" in line)
        child_line = next(line for line in text.splitlines() if "score" in line)
        assert (len(child_line) - len(child_line.lstrip())
                > len(root_line) - len(root_line.lstrip()))


class TestCLI:
    def test_from_export_renders_the_dashboard(self, tmp_path, capsys):
        path = _record_session(tmp_path / "run.jsonl")
        assert obs_main(["--from-export", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cache_hits_total" in out
        assert "pipeline.run" in out

    def test_from_export_exposition_rebuilds_prometheus_text(self, tmp_path, capsys):
        path = _record_session(tmp_path / "run.jsonl")
        assert obs_main(["--from-export", str(path), "--exposition"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE cache_hits_total counter" in out
        assert "cache_hits_total 7" in out
        assert 'store_upsert_seconds_bucket{le="+Inf"} 1' in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert obs_main(["--from-export", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such export" in capsys.readouterr().err

    def test_malformed_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert obs_main(["--from-export", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_export_flag_requires_demo(self, tmp_path, capsys):
        assert obs_main(["--from-export", str(tmp_path / "x.jsonl"),
                         "--export", str(tmp_path / "y.jsonl")]) == 2
        assert "--export only applies to --demo" in capsys.readouterr().err

    def test_source_flag_is_required(self, capsys):
        with pytest.raises(SystemExit):
            obs_main([])
