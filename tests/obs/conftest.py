"""Telemetry is process-global: force it off around every obs test."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _telemetry_off():
    obs.disable()
    yield
    obs.disable()
