"""Telemetry wired through the real hot paths: pipeline, serve, training.

These tests run the actual subsystems inside ``obs.telemetry()`` and assert
on what lands in the registry/collector — including the acceptance property
that a pipeline run's stage spans sum to its wall clock, the repo-wide
metric naming lint, and the bit-identical ``TrainingHistory`` migration.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import AdaMELHybrid
from repro.features.cache import EncodingCache
from repro.infer import BatchedPredictor
from repro.obs.metrics import valid_metric_name
from repro.pipeline import LinkagePipeline
from repro.serve import LinkageService, ServiceConfig, replay_upserts


@pytest.fixture(scope="module")
def predictor(music_scenario, fast_config):
    trainer = AdaMELHybrid(fast_config)
    trainer.fit(music_scenario)
    return BatchedPredictor.from_trainer(trainer)


def _snapshot_by_name(registry):
    by_name = {}
    for entry in registry.snapshot():
        by_name.setdefault(entry["name"], []).append(entry)
    return by_name


class TestPipelineInstrumentation:
    def test_run_records_counters_histograms_and_a_trace_tree(
            self, predictor, tiny_music_corpus):
        records = tiny_music_corpus.records
        with obs.telemetry() as session:
            result = LinkagePipeline(predictor).run(records)
        by_name = _snapshot_by_name(session.registry)
        assert by_name["pipeline_runs_total"][0]["value"] == 1.0
        assert by_name["pipeline_records_total"][0]["value"] == len(records)
        assert (by_name["pipeline_candidates_total"][0]["value"]
                == len(result.candidates.pairs))
        stage_labels = {entry["labels"]["stage"]
                        for entry in by_name["pipeline_stage_seconds"]}
        assert stage_labels == {"ingest", "block", "pair", "score", "cluster"}
        # Every blocking index reports a Gini gauge and hottest buckets.
        gini_indexes = {entry["labels"]["index"]
                        for entry in by_name["index_bucket_gini_ratio"]}
        assert len(gini_indexes) >= 2
        assert all(0.0 <= entry["value"] < 1.0
                   for entry in by_name["index_bucket_gini_ratio"])
        assert "index_hot_bucket_records" in by_name
        # Scoring flowed through the instrumented predictor.
        assert (by_name["infer_requests_total"][0]["value"]
                == len(result.candidates.pairs))
        assert by_name["infer_batches_total"][0]["value"] >= 1.0

    def test_stage_spans_sum_to_the_run_wall_clock(self, predictor,
                                                   tiny_music_corpus):
        # Acceptance: the trace tree accounts for the run — child spans sum
        # to the root span, and the root matches the stage_seconds total.
        with obs.telemetry() as session:
            result = LinkagePipeline(predictor).run(tiny_music_corpus.records)
        root = next(span for span in session.collector.roots()
                    if span.name == "pipeline.run")
        child_sum = sum(child.seconds for child in root.children)
        tolerance = 0.15 * root.seconds + 0.05
        assert abs(root.seconds - child_sum) <= tolerance
        assert abs(root.seconds - sum(result.stage_seconds.values())) <= tolerance
        assert {child.name for child in root.children} == {
            "ingest", "block", "pair", "score", "cluster"}

    def test_disabled_run_records_nothing(self, predictor, tiny_music_corpus):
        assert not obs.enabled()
        LinkagePipeline(predictor).run(tiny_music_corpus.records)
        with obs.telemetry() as session:
            pass  # nothing recorded into this fresh session by the prior run
        assert session.registry.snapshot() == []
        assert session.collector.roots() == []


class TestServeInstrumentation:
    def test_service_traffic_lands_in_store_and_coalescer_metrics(
            self, predictor, tiny_music_corpus):
        records = tiny_music_corpus.records[:30]
        config = ServiceConfig(max_batch_size=16, max_wait_ms=2.0, top_k=3)
        with obs.telemetry() as session:
            with LinkageService(predictor, service_config=config) as service:
                replay_upserts(service, records)
                for record in records[:5]:
                    service.query(record)
                legacy = service.coalescer.stats()
        by_name = _snapshot_by_name(session.registry)
        assert by_name["store_upserts_total"][0]["value"] == len(records)
        assert by_name["store_queries_total"][0]["value"] == 5.0
        assert by_name["store_upsert_seconds"][0]["count"] == len(records)
        assert by_name["store_query_seconds"][0]["count"] == 5.0
        # Obs counters agree with the coalescer's legacy stats dict.
        assert (by_name["coalescer_requests_total"][0]["value"]
                == legacy["requests"])
        flushes = {entry["labels"]["reason"]: entry["value"]
                   for entry in by_name.get("coalescer_flushes_total", [])}
        assert sum(flushes.values()) == legacy["batches"]
        assert by_name["coalescer_batch_pairs"][0]["count"] == legacy["batches"]
        assert by_name["coalescer_wait_seconds"][0]["count"] == legacy["requests"]
        # Spans: one root per serve request.
        roots = [span.name for span in session.collector.roots()]
        assert roots.count("serve.upsert") == len(records)
        assert roots.count("serve.query") == 5

    def test_store_resolution_counters(self, predictor, tiny_music_corpus):
        records = tiny_music_corpus.records[:20]
        with obs.telemetry() as session:
            with LinkageService(predictor,
                                service_config=ServiceConfig(
                                    max_batch_size=16, max_wait_ms=2.0)) as service:
                replay_upserts(service, records)
                store_stats = service.store.stats()
        by_name = _snapshot_by_name(session.registry)
        assert (by_name["store_pairs_scored_total"][0]["value"]
                == store_stats["pairs_scored"])
        assert (by_name.get("store_resolutions_total",
                            [{"value": 0.0}])[0]["value"]
                == store_stats.get("resolutions", 0.0))


class TestCacheInstrumentation:
    @staticmethod
    def _arrays():
        import numpy as np

        return np.ones(4), np.ones(4)  # 32 + 32 bytes as float64

    def test_lookup_counts_is_an_atomic_pair_read(self):
        cache = EncodingCache()
        cache.store("a", *self._arrays())
        cache.lookup("a")
        cache.lookup("b")
        assert cache.lookup_counts() == (1, 1)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_cache_counters_route_through_obs(self):
        features, mask = self._arrays()
        with obs.telemetry() as session:
            cache = EncodingCache(max_bytes=128)  # room for two entries
            cache.store("a", features, mask)
            cache.store("b", features, mask)
            cache.lookup("a")
            cache.lookup("missing")
            cache.store("c", features, mask)  # evicts the LRU entry
        by_name = _snapshot_by_name(session.registry)
        assert by_name["cache_hits_total"][0]["value"] == 1.0
        assert by_name["cache_misses_total"][0]["value"] == 1.0
        assert by_name["cache_evictions_total"][0]["value"] == 1.0
        assert by_name["cache_entries_count"][0]["value"] == 2.0
        assert by_name["cache_size_bytes"][0]["value"] == 128.0


class TestTrainingInstrumentation:
    def test_step_seconds_bit_identical_to_history(self, music_scenario,
                                                   fast_config):
        # The migration contract: the histogram and TrainingHistory see the
        # SAME per-step floats, so their reductions agree exactly — not
        # approximately.
        config = fast_config.with_updates(profile_steps=True)
        with obs.telemetry() as session:
            history = AdaMELHybrid(config).fit(music_scenario)
        by_name = _snapshot_by_name(session.registry)
        step = by_name["training_step_seconds"][0]
        assert step["count"] == len(history.step_seconds)
        assert step["sum"] == sum(history.step_seconds)
        assert by_name["training_steps_total"][0]["value"] == len(
            history.step_seconds)
        gauge = by_name["training_encoder_cache_hit_ratio"][0]
        assert gauge["value"] == history.encoder_cache_hit_rate

    def test_epoch_histogram_and_trace_per_epoch(self, music_scenario,
                                                 fast_config):
        with obs.telemetry() as session:
            AdaMELHybrid(fast_config).fit(music_scenario)
        by_name = _snapshot_by_name(session.registry)
        assert by_name["training_epochs_total"][0]["value"] == fast_config.epochs
        assert by_name["training_epoch_seconds"][0]["count"] == fast_config.epochs
        assert by_name["training_tape_forward_ops"][0]["value"] >= 0.0
        epochs = [span for span in session.collector.roots()
                  if span.name == "train.epoch"]
        assert len(epochs) == fast_config.epochs
        assert epochs[0].attributes["epoch"] == 0

    def test_history_unchanged_when_disabled(self, music_scenario, fast_config):
        # The regression lock: telemetry off must leave TrainingHistory
        # exactly as before the migration (profiling still works).
        config = fast_config.with_updates(profile_steps=True)
        baseline = AdaMELHybrid(config).fit(music_scenario)
        with obs.telemetry():
            enabled = AdaMELHybrid(config).fit(music_scenario)
        assert baseline.total_loss == enabled.total_loss
        assert len(baseline.step_seconds) == len(enabled.step_seconds)
        assert baseline.encoder_cache_hit_rate == enabled.encoder_cache_hit_rate


class TestNamingLint:
    def test_every_emitted_metric_follows_the_convention(
            self, predictor, music_scenario, fast_config, tiny_music_corpus):
        # Exercise training + pipeline + serve in one session, then lint
        # every family name that landed in the registry.
        with obs.telemetry() as session:
            AdaMELHybrid(fast_config.with_updates(profile_steps=True)).fit(
                music_scenario)
            LinkagePipeline(predictor).run(tiny_music_corpus.records)
            with LinkageService(predictor,
                                service_config=ServiceConfig(
                                    max_batch_size=16, max_wait_ms=2.0)) as service:
                replay_upserts(service, tiny_music_corpus.records[:10])
                service.query(tiny_music_corpus.records[0])
        names = session.registry.names()
        assert len(names) >= 25  # the catalog actually got exercised
        offenders = [name for name in names if not valid_metric_name(name)]
        assert offenders == []
