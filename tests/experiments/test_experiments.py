"""Smoke tests for the experiment harness (small scales, qualitative checks)."""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentScale,
    build_corpus,
    build_scenario,
    get_experiment,
    list_experiments,
    model_factories,
    restrict_scenario_to_attributes,
    run_figure6,
    run_figure8,
    run_figure10,
    run_figure11,
    run_figure12,
    run_table4,
    run_table6,
    run_table7,
)
from repro.experiments.table7 import single_domain_scenario


@pytest.fixture(scope="module")
def scale():
    return ExperimentScale.smoke()


class TestScenarios:
    def test_build_corpus_datasets(self, scale):
        assert build_corpus("music3k", scale=scale).entity_type == "artist"
        assert build_corpus("music1m", scale=scale).name.startswith("music-1m")
        assert build_corpus("monitor", scale=scale).entity_type == "monitor"
        with pytest.raises(ValueError):
            build_corpus("imdb", scale=scale)

    def test_build_scenario_modes(self, scale):
        overlapping = build_scenario("music3k", mode="overlapping", scale=scale, seed=1)
        disjoint = build_scenario("music3k", mode="disjoint", scale=scale, seed=1)
        assert overlapping.seen_sources == disjoint.seen_sources
        assert all(not (pair.source_set() & disjoint.seen_sources) for pair in disjoint.target)

    def test_model_factories_names(self, scale):
        factories = model_factories(scale=scale)
        assert {"tler", "deepmatcher", "entitymatcher", "ditto", "cordel-attention",
                "adamel-base", "adamel-zero", "adamel-few", "adamel-hyb"} == set(factories)
        subset = model_factories(scale=scale, methods=["tler", "adamel-hyb"])
        assert set(subset) == {"tler", "adamel-hyb"}
        with pytest.raises(KeyError):
            model_factories(scale=scale, methods=["nonexistent"])

    def test_scale_configs(self, scale):
        assert scale.adamel_config().epochs == scale.adamel_epochs
        assert scale.baseline_config().epochs == scale.baseline_epochs
        assert ExperimentScale.paper().adamel_epochs > scale.adamel_epochs

    def test_restrict_scenario_to_attributes(self, scale):
        scenario = build_scenario("music3k", scale=scale, seed=1)
        restricted = restrict_scenario_to_attributes(scenario, ["name", "main_performer"])
        assert set(restricted.aligned_schema()) == {"name", "main_performer"}
        assert len(restricted.test) == len(scenario.test)
        with pytest.raises(ValueError):
            restrict_scenario_to_attributes(scenario, [])


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        identifiers = set(list_experiments())
        expected = {"figure6-music3k", "figure6-music1m", "figure6-monitor", "figure7",
                    "figure8", "figure9", "figure10", "figure11", "figure12",
                    "table4", "table5", "table6", "table7"}
        assert expected == identifiers

    def test_get_experiment(self):
        experiment = get_experiment("table4")
        assert callable(experiment.runner)
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_benchmark_paths_unique(self):
        paths = [experiment.benchmark for experiment in EXPERIMENTS.values()]
        # figure9's runtime inset shares its benchmark file, everything else is unique.
        assert len(set(paths)) == len(paths)


class TestExperimentRuns:
    def test_figure6_smoke(self, scale):
        result = run_figure6("music3k", "artist", modes=("overlapping",),
                             methods=["adamel-base", "adamel-zero"], scale=scale, seed=2)
        assert set(result.results["overlapping"]) == {"adamel-base", "adamel-zero"}
        assert all(0 <= r.pr_auc <= 1 for r in result.results["overlapping"].values())
        assert result.best_method("overlapping") in {"adamel-base", "adamel-zero"}
        assert "pr_auc" in result.format()

    def test_figure8_lambda_sweep(self, scale):
        result = run_figure8("music3k", "artist", lambdas=(0.0, 0.98), scale=scale, seed=2)
        assert len(result.series["adamel-zero"]) == 2
        assert result.pr_auc("adamel-zero", 0.98) >= 0.0

    def test_figure10_support_sweep(self, scale):
        result = run_figure10("music3k", "artist", support_sizes=(5, 20), scale=scale, seed=2)
        assert len(result.series["adamel-few"]) == 2
        assert np.isfinite(result.improvement("adamel-hyb"))

    def test_figure11_reproduces_challenges(self, scale):
        result = run_figure11(scale=scale, seed=2)
        # C2: several attributes exist only in the target domain.
        assert len(result.target_only_attributes()) >= 3
        # C1: most attributes are missing for the majority of pairs.
        assert len(result.mostly_missing_attributes()) >= 5
        # page_title is close to complete in both domains.
        assert result.source_fractions["page_title"] > 0.8

    def test_figure12_distribution_shift(self, scale):
        result = run_figure12(scale=scale, seed=2)
        assert result.divergence > 0.3
        assert result.source_tokens and result.target_tokens

    def test_table4_importance(self, scale):
        result = run_table4(datasets={"music3k-artist": {"dataset": "music3k",
                                                         "entity_type": "artist"}},
                            top_k=3, scale=scale, seed=2)
        top = result.top_features("music3k-artist")
        assert len(top) == 3
        assert all(name.endswith(("_shared", "_unique")) for name in top)

    def test_table6_ablation(self, scale):
        result = run_table6(datasets=(("music3k", "artist"),), scale=scale, seed=2)
        scores = result.results["music3k-artist"]["adamel-hyb"]
        assert set(scores) == {"shared", "unique", "shared+unique"}
        assert all(0 <= value <= 1 for value in scores.values())

    def test_table7_single_domain(self, scale):
        result = run_table7(benchmarks=("beer",), scale=scale, seed=2)
        scores = result.results["beer"]
        assert set(scores) == {"deepmatcher", "adamel-zero", "adamel-hyb"}
        assert all(0 <= value <= 1 for value in scores.values())

    def test_single_domain_scenario_structure(self):
        scenario = single_domain_scenario("beer", seed=3)
        assert len(scenario.source) > 0
        assert len(scenario.test) > 0
        assert scenario.support is not None
