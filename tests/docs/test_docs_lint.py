"""Docs lint: no dead intra-repo links, every Python snippet must parse.

Walks ``README.md`` and every ``docs/*.md``:

* markdown links whose target is not an URL or a pure anchor must resolve to
  a real file or directory relative to the containing document (anchors and
  query strings stripped);
* every fenced ``python`` code block must survive ``ast.parse`` — examples in
  the docs are kept at least syntactically honest;
* the architecture page must cross-link every other subsystem doc, and every
  subsystem doc must link back to it, so the doc graph stays navigable.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_PATHS = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")])

# [text](target) — but not images ![...](...) and not footnote-style refs.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(\w*)\s*$")


def _links(text):
    return _LINK.findall(text)


def _fenced_blocks(text, language):
    blocks, current, inside = [], [], False
    for line_number, line in enumerate(text.splitlines(), start=1):
        fence = _FENCE.match(line)
        if fence and not inside:
            inside = fence.group(1) == language
            current, start = [], line_number + 1
        elif line.strip().startswith("```") and inside:
            blocks.append((start, "\n".join(current)))
            inside = False
        elif line.strip() == "```" and not inside:
            inside = False
        elif inside:
            current.append(line)
    return blocks


@pytest.mark.parametrize("doc_path", DOC_PATHS,
                         ids=[str(p.relative_to(REPO_ROOT)) for p in DOC_PATHS])
class TestDocsLint:
    def test_intra_repo_links_resolve(self, doc_path):
        text = doc_path.read_text(encoding="utf-8")
        dead = []
        for target in _links(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0].split("?", 1)[0]
            if not relative:
                continue
            if not (doc_path.parent / relative).exists():
                dead.append(target)
        assert dead == [], (
            f"{doc_path.relative_to(REPO_ROOT)} has dead links: {dead}")

    def test_python_blocks_parse(self, doc_path):
        text = doc_path.read_text(encoding="utf-8")
        for start_line, block in _fenced_blocks(text, "python"):
            try:
                ast.parse(block)
            except SyntaxError as error:
                pytest.fail(
                    f"{doc_path.relative_to(REPO_ROOT)} python block at line "
                    f"{start_line} does not parse: {error}")


class TestDocGraph:
    SUBSYSTEM_DOCS = ("autograd.md", "benchmarking.md", "observability.md",
                      "pipeline.md", "resilience.md", "serving.md",
                      "sharding.md", "storage.md")

    def test_architecture_links_every_subsystem_doc(self):
        text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
        linked = {target.split("#", 1)[0] for target in _links(text)}
        missing = [doc for doc in self.SUBSYSTEM_DOCS if doc not in linked]
        assert missing == []

    def test_every_subsystem_doc_links_back(self):
        unlinked = []
        for doc in self.SUBSYSTEM_DOCS:
            text = (REPO_ROOT / "docs" / doc).read_text(encoding="utf-8")
            if "architecture.md" not in {t.split("#", 1)[0] for t in _links(text)}:
                unlinked.append(doc)
        assert unlinked == []

    def test_readme_links_architecture(self):
        text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "docs/architecture.md" in {t.split("#", 1)[0] for t in _links(text)}
