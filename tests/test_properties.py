"""Property-based tests (hypothesis) on core invariants.

These cover the numerical substrate (autograd, softmax, metrics), the text
pipeline (tokenisation, similarity bounds, hashing determinism) and the data
structures (schema alignment, contrastive features).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data import EntityPair, Record, Schema, align_pairs
from repro.eval.metrics import average_precision, best_f1, precision_recall_curve
from repro.features.relational import extract_relational_features
from repro.nn import Tensor
from repro.nn import functional as F
from repro.text import (
    HashedEmbedder,
    Tokenizer,
    jaccard_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    tokenize,
)

TEXT = st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd", "Zs")), max_size=40)
SMALL_FLOATS = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)


# --------------------------------------------------------------------------- #
# Autograd / numerical substrate
# --------------------------------------------------------------------------- #
@given(arrays(np.float64, (4, 5), elements=SMALL_FLOATS))
@settings(max_examples=30, deadline=None)
def test_softmax_is_probability_distribution(values):
    out = F.softmax(Tensor(values), axis=-1).data
    assert np.all(out >= 0)
    assert np.allclose(out.sum(axis=-1), 1.0)


@given(arrays(np.float64, (3, 4), elements=SMALL_FLOATS),
       arrays(np.float64, (3, 4), elements=SMALL_FLOATS))
@settings(max_examples=30, deadline=None)
def test_addition_gradient_is_ones(a_values, b_values):
    a = Tensor(a_values, requires_grad=True)
    b = Tensor(b_values, requires_grad=True)
    (a + b).sum().backward()
    assert np.allclose(a.grad, 1.0)
    assert np.allclose(b.grad, 1.0)


@given(arrays(np.float64, (6,), elements=st.floats(0.01, 0.99)))
@settings(max_examples=30, deadline=None)
def test_sigmoid_logit_roundtrip(probabilities):
    logits = np.log(probabilities / (1 - probabilities))
    assert np.allclose(Tensor(logits).sigmoid().data, probabilities, atol=1e-9)


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
@given(st.lists(st.tuples(st.integers(0, 1), st.floats(0, 1, allow_nan=False)),
                min_size=2, max_size=60))
@settings(max_examples=50, deadline=None)
def test_average_precision_bounded(pairs):
    labels = [label for label, _ in pairs]
    scores = [score for _, score in pairs]
    value = average_precision(labels, scores)
    assert 0.0 <= value <= 1.0


@given(st.lists(st.tuples(st.integers(0, 1), st.floats(0, 1, allow_nan=False)),
                min_size=2, max_size=60).filter(lambda items: any(l for l, _ in items)))
@settings(max_examples=50, deadline=None)
def test_best_f1_bounded_and_recall_monotone(pairs):
    labels = [label for label, _ in pairs]
    scores = [score for _, score in pairs]
    f1, threshold = best_f1(labels, scores)
    assert 0.0 <= f1 <= 1.0
    _, recall, _ = precision_recall_curve(labels, scores)
    assert np.all(np.diff(recall) >= -1e-12)


@given(st.lists(st.floats(0.05, 0.95, allow_nan=False), min_size=3, max_size=40),
       st.integers(1, 10))
@settings(max_examples=30, deadline=None)
def test_perfectly_separated_scores_have_ap_one(negative_scores, num_positive):
    labels = [0] * len(negative_scores) + [1] * num_positive
    scores = list(np.array(negative_scores) * 0.5) + [0.99] * num_positive
    assert average_precision(labels, scores) == 1.0


# --------------------------------------------------------------------------- #
# Text pipeline
# --------------------------------------------------------------------------- #
@given(TEXT)
@settings(max_examples=60, deadline=None)
def test_tokenize_is_idempotent_and_lowercase(text):
    tokens = tokenize(text)
    assert tokenize(" ".join(tokens)) == tokens
    assert all(token == token.lower() for token in tokens)


@given(TEXT, TEXT)
@settings(max_examples=60, deadline=None)
def test_similarity_measures_bounded_and_symmetric(a, b):
    for measure in (jaccard_similarity, jaro_winkler_similarity):
        value_ab = measure(a, b)
        value_ba = measure(b, a)
        assert 0.0 <= value_ab <= 1.0 + 1e-9
        assert abs(value_ab - value_ba) < 1e-9


@given(TEXT, TEXT)
@settings(max_examples=40, deadline=None)
def test_levenshtein_triangle_inequality_with_empty(a, b):
    assert levenshtein_distance(a, b) <= len(a) + len(b)
    assert levenshtein_distance(a, a) == 0


@given(st.text(alphabet=st.characters(whitelist_categories=("Ll",)), min_size=1, max_size=15))
@settings(max_examples=40, deadline=None)
def test_hashed_embedder_deterministic_and_finite(token):
    embedder = HashedEmbedder(dim=16)
    vector = embedder.embed_token(token)
    assert vector.shape == (16,)
    assert np.all(np.isfinite(vector))
    assert np.allclose(vector, HashedEmbedder(dim=16).embed_token(token))


# --------------------------------------------------------------------------- #
# Data structures
# --------------------------------------------------------------------------- #
_ATTR_VALUES = st.dictionaries(st.sampled_from(["title", "artist", "album", "genre"]),
                               TEXT, min_size=1, max_size=4)


@given(_ATTR_VALUES, _ATTR_VALUES)
@settings(max_examples=50, deadline=None)
def test_alignment_produces_full_schema(left_attrs, right_attrs):
    left = Record("l", "s1", left_attrs)
    right = Record("r", "s2", right_attrs)
    pair = EntityPair(left, right, label=1)
    schema = Schema(("title", "artist", "album", "genre", "extra"))
    aligned = align_pairs([pair], schema)[0]
    assert set(aligned.left.attribute_names()) == set(schema)
    assert set(aligned.right.attribute_names()) == set(schema)
    # Values that existed are preserved.
    for attribute, value in left_attrs.items():
        assert aligned.left.value(attribute) == value


@given(_ATTR_VALUES, _ATTR_VALUES)
@settings(max_examples=50, deadline=None)
def test_contrastive_features_partition_tokens(left_attrs, right_attrs):
    """sim(A) and uni(A) are disjoint and cover the union of the pair's tokens."""
    schema = Schema(("title", "artist"))
    left = Record("l", "s1", {k: left_attrs.get(k, "") for k in schema})
    right = Record("r", "s2", {k: right_attrs.get(k, "") for k in schema})
    pair = EntityPair(left, right, label=0)
    tokenizer = Tokenizer(crop_size=50)
    features = extract_relational_features(pair, schema, tokenizer)
    by_name = {feature.name: set(feature.tokens) for feature in features}
    for attribute in schema:
        shared = by_name[f"{attribute}_shared"]
        unique = by_name[f"{attribute}_unique"]
        left_tokens = set(tokenizer(left.value(attribute)))
        right_tokens = set(tokenizer(right.value(attribute)))
        assert shared.isdisjoint(unique)
        assert shared == left_tokens & right_tokens
        assert shared | unique == left_tokens | right_tokens
