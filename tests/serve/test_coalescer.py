"""RequestCoalescer: fusion, deadline/size flushes, backpressure, failures.

These tests use a plain deterministic score function (no model), so the
batching behaviour can be asserted tightly and the suite stays fast.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.data.records import EntityPair, Record
from repro.serve import CoalescerClosed, CoalescerQueueFull, RequestCoalescer


def make_pair(index: int) -> EntityPair:
    left = Record(record_id=f"l{index}", source="a", attributes={"name": f"left {index}"})
    right = Record(record_id=f"r{index}", source="b", attributes={"name": f"right {index}"})
    return EntityPair(left=left, right=right)


def index_scores(pairs):
    """Deterministic per-pair score derived from the record id."""
    return np.array([float(int(pair.left.record_id[1:]) % 97) / 97.0
                     for pair in pairs])


class TestFusion:
    def test_results_match_submission_and_request_order(self):
        pairs = [make_pair(i) for i in range(20)]
        with RequestCoalescer(index_scores, max_batch_size=8, max_wait_ms=5.0) as coalescer:
            first = coalescer.submit(pairs[:6])
            second = coalescer.submit(pairs[6])
            third = coalescer.submit(pairs[7:20])
            np.testing.assert_array_equal(first.result(5.0), index_scores(pairs[:6]))
            np.testing.assert_array_equal(second.result(5.0), index_scores([pairs[6]]))
            np.testing.assert_array_equal(third.result(5.0), index_scores(pairs[7:20]))

    def test_concurrent_submitters_are_fused_into_fewer_batches(self):
        release = threading.Event()
        calls = []

        def gated_scores(pairs):
            calls.append(len(pairs))
            release.wait(5.0)
            return index_scores(pairs)

        num_requests = 12
        with RequestCoalescer(gated_scores, max_batch_size=64,
                              max_wait_ms=1.0) as coalescer:
            handles = []
            threads = [threading.Thread(
                target=lambda i=i: handles.append(coalescer.submit(make_pair(i))))
                for i in range(num_requests)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # First batch is gated inside score_fn; every request submitted
            # meanwhile must ride along in at most one further batch.
            release.set()
            deadline = time.monotonic() + 5.0
            while len(handles) < num_requests and time.monotonic() < deadline:
                time.sleep(0.01)
            for handle in handles:
                handle.result(5.0)
        assert sum(calls) == num_requests
        assert len(calls) <= 2
        assert coalescer.stats()["batches"] == len(calls)

    def test_scores_identical_to_direct_call(self):
        pairs = [make_pair(i) for i in range(33)]
        with RequestCoalescer(index_scores, max_batch_size=8, max_wait_ms=1.0) as coalescer:
            fused = np.concatenate([coalescer.score([pair]) for pair in pairs])
        np.testing.assert_array_equal(fused, index_scores(pairs))


class TestFlushTriggers:
    def test_deadline_flush_fires_below_batch_size(self):
        # 3 pairs never fill a 64-pair batch: only the deadline can flush.
        with RequestCoalescer(index_scores, max_batch_size=64,
                              max_wait_ms=20.0) as coalescer:
            start = time.monotonic()
            scores = coalescer.score([make_pair(i) for i in range(3)], timeout=5.0)
            elapsed = time.monotonic() - start
        assert scores.shape == (3,)
        stats = coalescer.stats()
        assert stats["deadline_flushes"] >= 1
        assert stats["size_flushes"] == 0
        assert elapsed >= 0.015  # the request waited for (most of) the deadline

    def test_size_flush_fires_before_deadline(self):
        # A full batch must not wait out a deliberately huge deadline.
        with RequestCoalescer(index_scores, max_batch_size=4,
                              max_wait_ms=30_000.0) as coalescer:
            start = time.monotonic()
            scores = coalescer.score([make_pair(i) for i in range(4)], timeout=5.0)
            elapsed = time.monotonic() - start
        assert scores.shape == (4,)
        assert coalescer.stats()["size_flushes"] >= 1
        assert elapsed < 5.0

    def test_max_wait_zero_overrides_a_long_deadline(self):
        # A serialized writer (the store's upsert path) asks for max_wait=0:
        # its lone request must flush immediately instead of waiting out a
        # deadline no co-rider can fill.
        with RequestCoalescer(index_scores, max_batch_size=64,
                              max_wait_ms=30_000.0) as coalescer:
            start = time.monotonic()
            scores = coalescer.score([make_pair(0)], timeout=5.0, max_wait=0.0)
            elapsed = time.monotonic() - start
        assert scores.shape == (1,)
        assert elapsed < 1.0

    def test_oversized_request_goes_through_alone(self):
        with RequestCoalescer(index_scores, max_batch_size=4, max_wait_ms=1.0,
                              max_queue_size=64) as coalescer:
            scores = coalescer.score([make_pair(i) for i in range(11)], timeout=5.0)
        assert scores.shape == (11,)
        assert coalescer.stats()["mean_batch_pairs"] == 11.0


class TestBackpressure:
    def test_submit_times_out_when_queue_is_full(self):
        gate = threading.Event()

        def blocked_scores(pairs):
            gate.wait(10.0)
            return index_scores(pairs)

        coalescer = RequestCoalescer(blocked_scores, max_batch_size=2,
                                     max_wait_ms=0.0, max_queue_size=2)
        with coalescer:
            # Batch one occupies the executor; the queue then fills up.
            first = coalescer.submit([make_pair(0), make_pair(1)])
            time.sleep(0.05)  # let the executor pick batch one up
            second = coalescer.submit([make_pair(2), make_pair(3)])
            with pytest.raises(CoalescerQueueFull):
                coalescer.submit(make_pair(4), timeout=0.05)
            assert coalescer.stats()["rejected"] == 1.0
            gate.set()
            first.result(5.0)
            second.result(5.0)

    def test_submit_blocks_until_room_frees_up(self):
        slow_started = threading.Event()

        def slow_scores(pairs):
            slow_started.set()
            time.sleep(0.05)
            return index_scores(pairs)

        with RequestCoalescer(slow_scores, max_batch_size=2, max_wait_ms=0.0,
                              max_queue_size=2) as coalescer:
            coalescer.submit([make_pair(0), make_pair(1)])
            slow_started.wait(5.0)
            pending = coalescer.submit([make_pair(2), make_pair(3)])
            # Queue full: this submit must wait for the executor, then land.
            scores = coalescer.score(make_pair(4), timeout=5.0)
            assert scores.shape == (1,)
            pending.result(5.0)


class TestLifecycleAndFailure:
    def test_submit_before_start_and_after_stop_raises(self):
        coalescer = RequestCoalescer(index_scores)
        with pytest.raises(CoalescerClosed):
            coalescer.submit(make_pair(0))
        coalescer.start()
        coalescer.stop()
        with pytest.raises(CoalescerClosed):
            coalescer.submit(make_pair(0))

    def test_stop_flushes_queued_requests(self):
        coalescer = RequestCoalescer(index_scores, max_batch_size=64,
                                     max_wait_ms=60_000.0)
        coalescer.start()
        handle = coalescer.submit(make_pair(3))
        coalescer.stop()
        np.testing.assert_array_equal(handle.result(0.0), index_scores([make_pair(3)]))

    def test_stop_timeout_never_detaches_a_live_executor(self):
        # A stop() that times out while score_fn is stuck must not let a
        # later start() spawn a second executor next to the live one (two
        # threads would then drive the non-thread-safe model concurrently).
        gate = threading.Event()

        def stuck_scores(pairs):
            gate.wait(10.0)
            return index_scores(pairs)

        coalescer = RequestCoalescer(stuck_scores, max_batch_size=1, max_wait_ms=0.0)
        coalescer.start()
        handle = coalescer.submit(make_pair(0))
        time.sleep(0.05)  # let the executor enter the stuck score_fn
        with pytest.raises(TimeoutError, match="still running"):
            coalescer.stop(timeout=0.05)
        assert coalescer.start() is coalescer
        executors = [thread for thread in threading.enumerate()
                     if thread.name == "repro-coalescer"]
        assert len(executors) == 1  # no second executor was spawned
        gate.set()
        coalescer.stop(timeout=5.0)
        np.testing.assert_array_equal(handle.result(0.0), index_scores([make_pair(0)]))

    def test_score_fn_error_propagates_to_every_request(self):
        def broken_scores(pairs):
            raise RuntimeError("model fell over")

        with RequestCoalescer(broken_scores, max_batch_size=4,
                              max_wait_ms=1.0) as coalescer:
            first = coalescer.submit(make_pair(0))
            second = coalescer.submit(make_pair(1))
            with pytest.raises(RuntimeError, match="fell over"):
                first.result(5.0)
            with pytest.raises(RuntimeError, match="fell over"):
                second.result(5.0)

    def test_bad_score_shape_is_an_error(self):
        with RequestCoalescer(lambda pairs: np.zeros(1 + len(pairs)),
                              max_batch_size=4, max_wait_ms=1.0) as coalescer:
            with pytest.raises(ValueError, match="shape"):
                coalescer.score(make_pair(0), timeout=5.0)

    def test_empty_score_returns_empty(self):
        with RequestCoalescer(index_scores) as coalescer:
            assert coalescer.score([]).shape == (0,)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            RequestCoalescer(index_scores, max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            RequestCoalescer(index_scores, max_wait_ms=-1.0)
        with pytest.raises(ValueError, match="max_queue_size"):
            RequestCoalescer(index_scores, max_batch_size=8, max_queue_size=4)


class TestFlushTelemetry:
    """Flush-reason counters and queue gauges through ``repro.obs``."""

    @staticmethod
    def _flushes(session):
        return {entry["labels"]["reason"]: entry["value"]
                for entry in session.registry.snapshot()
                if entry["name"] == "coalescer_flushes_total"}

    def test_size_flush_is_counted_by_reason(self):
        from repro import obs

        with obs.telemetry() as session:
            with RequestCoalescer(index_scores, max_batch_size=4,
                                  max_wait_ms=30_000.0) as coalescer:
                coalescer.score([make_pair(i) for i in range(4)], timeout=5.0)
        flushes = self._flushes(session)
        assert flushes["size"] >= 1.0
        assert flushes.get("deadline", 0.0) == 0.0
        assert flushes["size"] == coalescer.stats()["size_flushes"]

    def test_deadline_flush_is_counted_by_reason(self):
        from repro import obs

        with obs.telemetry() as session:
            with RequestCoalescer(index_scores, max_batch_size=64,
                                  max_wait_ms=10.0) as coalescer:
                coalescer.score([make_pair(i) for i in range(3)], timeout=5.0)
        flushes = self._flushes(session)
        assert flushes["deadline"] >= 1.0
        assert flushes.get("size", 0.0) == 0.0
        assert flushes["deadline"] == coalescer.stats()["deadline_flushes"]

    def test_shutdown_flush_is_counted_by_reason(self):
        from repro import obs

        with obs.telemetry() as session:
            coalescer = RequestCoalescer(index_scores, max_batch_size=64,
                                         max_wait_ms=60_000.0)
            coalescer.start()
            handle = coalescer.submit(make_pair(3))
            coalescer.stop()  # only stop() can flush a 60s-deadline batch
            handle.result(0.0)
        assert self._flushes(session)["shutdown"] >= 1.0

    def test_queue_depth_high_watermark_and_wait_times(self):
        from repro import obs

        gate = threading.Event()

        def gated_scores(pairs):
            gate.wait(5.0)
            return index_scores(pairs)

        with obs.telemetry() as session:
            with RequestCoalescer(gated_scores, max_batch_size=2,
                                  max_wait_ms=0.0, max_queue_size=64) as coalescer:
                first = coalescer.submit([make_pair(0), make_pair(1)])
                time.sleep(0.05)  # executor is now gated inside batch one
                second = coalescer.submit([make_pair(2), make_pair(3)])
                third = coalescer.submit(make_pair(4))
                time.sleep(0.05)  # let the queued requests measurably wait
                gate.set()
                for handle in (first, second, third):
                    handle.result(5.0)
        series = {entry["name"]: entry for entry in session.registry.snapshot()}
        # 5 pairs queued while the executor was gated: the watermark must have
        # seen at least the 3 pairs that piled up behind the in-flight batch,
        # and the final depth is zero (everything drained).
        assert series["coalescer_queue_high_watermark_pairs"]["max"] >= 3.0
        assert series["coalescer_queue_depth_pairs"]["value"] == 0.0
        assert series["coalescer_requests_total"]["value"] == 3.0
        assert series["coalescer_pairs_scored_total"]["value"] == 5.0
        wait = series["coalescer_wait_seconds"]
        assert wait["count"] == 3
        assert wait["max"] >= 0.04  # the gated requests measurably waited

    def test_rejected_submissions_are_counted(self):
        from repro import obs

        gate = threading.Event()

        def blocked_scores(pairs):
            gate.wait(10.0)
            return index_scores(pairs)

        with obs.telemetry() as session:
            coalescer = RequestCoalescer(blocked_scores, max_batch_size=2,
                                         max_wait_ms=0.0, max_queue_size=2)
            with coalescer:
                first = coalescer.submit([make_pair(0), make_pair(1)])
                time.sleep(0.05)
                second = coalescer.submit([make_pair(2), make_pair(3)])
                with pytest.raises(CoalescerQueueFull):
                    coalescer.submit(make_pair(4), timeout=0.05)
                gate.set()
                first.result(5.0)
                second.result(5.0)
        series = {entry["name"]: entry for entry in session.registry.snapshot()}
        assert series["coalescer_rejected_total"]["value"] == 1.0
        assert series["coalescer_requests_total"]["value"] == 2.0
