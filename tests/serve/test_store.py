"""EntityStore: incremental-vs-batch parity, persistence, online queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaMELHybrid
from repro.data.records import Record
from repro.infer import BatchedPredictor
from repro.pipeline import LinkagePipeline
from repro.serve import EntityStore, StoreConfig


@pytest.fixture(scope="module")
def predictor(music_scenario, fast_config):
    trainer = AdaMELHybrid(fast_config)
    trainer.fit(music_scenario)
    return BatchedPredictor.from_trainer(trainer)


@pytest.fixture(scope="module")
def streamed_store(predictor, tiny_music_corpus):
    store = EntityStore(score_fn=predictor.predict_proba)
    for record in tiny_music_corpus.records:
        store.upsert(record)
    return store


@pytest.fixture(scope="module")
def batch_result(predictor, tiny_music_corpus):
    return LinkagePipeline(predictor).run(tiny_music_corpus.records)


class TestBatchParity:
    def test_streaming_upserts_match_batch_pipeline(self, streamed_store, batch_result):
        assert streamed_store.clusters() == batch_result.clusters.clusters

    def test_parity_holds_for_shuffled_input_order(self, predictor, tiny_music_corpus):
        records = list(tiny_music_corpus.records)
        np.random.default_rng(19).shuffle(records)
        store = EntityStore(score_fn=predictor.predict_proba)
        for record in records:
            store.upsert(record)
        batch = LinkagePipeline(predictor).run(records)
        assert store.clusters() == batch.clusters.clusters

    def test_parity_survives_bucket_overflow_retraction(self, predictor,
                                                        tiny_music_corpus):
        # Tight caps force buckets to overflow mid-stream, so candidate pairs
        # emitted early must be retracted exactly as batch blocking would
        # never have emitted them.
        config = StoreConfig(lsh_max_bucket_size=2, max_postings=2,
                             initials_max_bucket_size=2)
        store = EntityStore(score_fn=predictor.predict_proba, config=config)
        for record in tiny_music_corpus.records:
            store.upsert(record)
        assert store.counters.pairs_retracted > 0  # the regime is exercised
        batch = LinkagePipeline(
            predictor, config=config.to_pipeline_config()).run(tiny_music_corpus.records)
        assert store.clusters() == batch.clusters.clusters

    def test_every_record_in_exactly_one_entity(self, streamed_store, tiny_music_corpus):
        clustered = [record_id for members in streamed_store.clusters()
                     for record_id in members]
        assert sorted(clustered) == sorted(
            record.record_id for record in tiny_music_corpus.records)


class TestUpsertSemantics:
    def test_upsert_returns_stable_entity_membership(self, streamed_store,
                                                     tiny_music_corpus):
        record = tiny_music_corpus.records[0]
        entity_id = streamed_store.entity_of(record.record_id)
        assert record.record_id in streamed_store.entity_members(entity_id)

    def test_identical_reupsert_is_idempotent(self, predictor, tiny_music_corpus):
        store = EntityStore(score_fn=predictor.predict_proba)
        first = store.upsert(tiny_music_corpus.records[0])
        before = store.stats()
        assert store.upsert(tiny_music_corpus.records[0]) == first
        assert store.stats() == before

    def test_conflicting_content_is_rejected(self, predictor, tiny_music_corpus):
        store = EntityStore(score_fn=predictor.predict_proba)
        record = tiny_music_corpus.records[0]
        store.upsert(record)
        changed = Record(record_id=record.record_id, source=record.source,
                         attributes={**dict(record.attributes), "name": "someone else"})
        with pytest.raises(ValueError, match="append-only"):
            store.upsert(changed)

    def test_store_without_score_fn_rejects_upsert(self, tiny_music_corpus):
        store = EntityStore()
        with pytest.raises(RuntimeError, match="score_fn"):
            store.upsert(tiny_music_corpus.records[0])

    def test_scoring_failure_leaves_store_untouched_and_is_retryable(
            self, predictor, tiny_music_corpus):
        # A scoring error (model failure, coalescer timeout/shutdown) must
        # not leave a half-ingested record behind: the same upsert retried
        # with a healthy scorer must land, with full batch parity.
        records = tiny_music_corpus.records
        store = EntityStore(score_fn=predictor.predict_proba)
        for record in records[:10]:
            store.upsert(record)
        clusters_before = store.clusters()
        stats_before = store.stats()

        def broken(pairs):
            raise TimeoutError("scoring request not completed")

        store.bind_score_fn(broken)
        with pytest.raises(TimeoutError):
            store.upsert(records[10])
        assert records[10].record_id not in store
        assert store.clusters() == clusters_before
        assert store.stats() == stats_before

        store.bind_score_fn(predictor.predict_proba)
        for record in records[10:]:
            store.upsert(record)
        batch = LinkagePipeline(predictor).run(records)
        assert store.clusters() == batch.clusters.clusters


class TestQuery:
    def test_query_finds_the_probed_entity(self, streamed_store, tiny_music_corpus):
        # Probe with a copy of a stored record from a brand-new source: its
        # own entity must rank among the matches.
        record = tiny_music_corpus.records[0]
        probe = Record(record_id="probe#query", source="unseen-source",
                       attributes=dict(record.attributes))
        matches = streamed_store.query(probe, top_k=5)
        assert matches, "probing a stored record's content found nothing"
        assert all(0.0 <= match.score <= 1.0 for match in matches)
        scores = [match.score for match in matches]
        assert scores == sorted(scores, reverse=True)
        assert streamed_store.entity_of(record.record_id) in {
            match.entity_id for match in matches}

    def test_query_does_not_mutate_the_store(self, streamed_store, tiny_music_corpus):
        clusters_before = streamed_store.clusters()
        records_before = len(streamed_store)
        probe = Record(record_id="probe#readonly", source="unseen-source",
                       attributes=dict(tiny_music_corpus.records[3].attributes))
        streamed_store.query(probe)
        assert len(streamed_store) == records_before
        assert streamed_store.clusters() == clusters_before

    def test_query_respects_top_k(self, streamed_store, tiny_music_corpus):
        probe = Record(record_id="probe#topk", source="unseen-source",
                       attributes=dict(tiny_music_corpus.records[0].attributes))
        assert len(streamed_store.query(probe, top_k=1)) <= 1
        with pytest.raises(ValueError, match="top_k"):
            streamed_store.query(probe, top_k=0)


class TestSnapshotRestore:
    def test_round_trip_is_bit_exact(self, streamed_store, tmp_path):
        snapshot = streamed_store.snapshot(tmp_path / "store")
        restored = EntityStore.restore(snapshot)
        assert restored.clusters() == streamed_store.clusters()
        assert restored.entities() == streamed_store.entities()
        # Internal candidate state is reproduced exactly, not just clusters.
        assert restored._support == streamed_store._support
        assert restored._scores == streamed_store._scores

    def test_restored_store_is_read_only_until_bound(self, streamed_store,
                                                     predictor, tiny_music_corpus,
                                                     tmp_path):
        restored = EntityStore.restore(streamed_store.snapshot(tmp_path / "store"))
        probe = tiny_music_corpus.records[0]
        with pytest.raises(RuntimeError, match="score_fn"):
            restored.query(probe)
        restored.bind_score_fn(predictor.predict_proba)
        assert restored.upsert(probe) == streamed_store.entity_of(probe.record_id)

    def test_restore_continues_streaming_with_parity(self, predictor,
                                                     tiny_music_corpus, tmp_path):
        records = list(tiny_music_corpus.records)
        half = len(records) // 2
        store = EntityStore(score_fn=predictor.predict_proba)
        for record in records[:half]:
            store.upsert(record)
        restored = EntityStore.restore(store.snapshot(tmp_path / "half"),
                                       score_fn=predictor.predict_proba)
        for record in records[half:]:
            restored.upsert(record)
        batch = LinkagePipeline(predictor).run(records)
        assert restored.clusters() == batch.clusters.clusters

    def test_unknown_format_version_rejected(self, streamed_store, tmp_path):
        from repro.utils.serialization import load_json, save_json

        snapshot = streamed_store.snapshot(tmp_path / "store")
        state = load_json(snapshot / "store.json")
        state["format_version"] = 999
        save_json(state, snapshot / "store.json")
        with pytest.raises(ValueError, match="format version"):
            EntityStore.restore(snapshot)


class TestConfigBridge:
    def test_store_config_round_trips_through_pipeline_config(self):
        config = StoreConfig(num_perm=64, bands=16, score_threshold=0.7,
                             cross_source_only=False)
        assert StoreConfig.from_pipeline_config(config.to_pipeline_config()) == config

    def test_stats_are_json_clean(self, streamed_store):
        import json
        import math

        stats = streamed_store.stats()
        assert all(math.isfinite(value) for value in stats.values())
        assert json.dumps(stats)
