"""LinkageService end-to-end, the load generator and the serve CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaMELHybrid
from repro.data.records import Record
from repro.infer import BatchedPredictor
from repro.pipeline import LinkagePipeline
from repro.serve import (EntityStore, LinkageService, ServiceConfig, StoreConfig,
                         latency_percentiles, replay_queries, replay_upserts)
from repro.serve.__main__ import main as serve_main


@pytest.fixture(scope="module")
def predictor(music_scenario, fast_config):
    trainer = AdaMELHybrid(fast_config)
    trainer.fit(music_scenario)
    return BatchedPredictor.from_trainer(trainer)


@pytest.fixture()
def service(predictor):
    config = ServiceConfig(max_batch_size=16, max_wait_ms=2.0, top_k=3)
    with LinkageService(predictor, service_config=config) as running:
        yield running


class TestLinkageService:
    def test_upserts_then_queries_resolve_entities(self, service, tiny_music_corpus):
        records = tiny_music_corpus.records
        for record in records[:20]:
            result = service.upsert(record)
            assert result.entity_id == service.store.entity_of(record.record_id)
            assert result.seconds >= 0.0
        probe = Record(record_id="probe#svc", source="unseen-source",
                       attributes=dict(records[0].attributes))
        response = service.query(probe)
        assert len(response.matches) <= 3
        assert response.best is None or 0.0 <= response.best.score <= 1.0

    def test_concurrent_query_load_is_served_through_the_coalescer(
            self, service, tiny_music_corpus):
        records = tiny_music_corpus.records
        replay_upserts(service, records)
        report = replay_queries(service, records, num_workers=4)
        assert report.num_workers == 4
        assert report.operations == len(records)
        assert report.errors == 0
        percentiles = report.percentiles()
        assert 0.0 < percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]
        stats = service.coalescer.stats()
        assert stats["requests"] > 0
        assert stats["batches"] > 0
        # All scoring flows through the coalescer (upserts + queries), so the
        # executor can never run more fused batches than requests.  Actual
        # fusion of concurrent submitters is asserted deterministically in
        # test_coalescer.py, where the score function is gated.
        assert stats["batches"] <= stats["requests"]
        assert stats["pairs_scored"] >= stats["requests"]

    def test_service_parity_with_batch_pipeline(self, service, predictor,
                                                tiny_music_corpus):
        records = list(tiny_music_corpus.records)
        replay_upserts(service, records)
        batch = LinkagePipeline(predictor).run(records)
        assert service.store.clusters() == batch.clusters.clusters

    def test_stats_are_nested_and_numeric(self, service, tiny_music_corpus):
        service.upsert(tiny_music_corpus.records[0])
        stats = service.stats()
        assert set(stats) == {"service", "store", "coalescer", "predictor"}
        for section in stats.values():
            assert all(isinstance(value, float) for value in section.values())

    def test_serving_a_restored_store(self, predictor, tiny_music_corpus, tmp_path):
        records = tiny_music_corpus.records
        store = EntityStore(score_fn=predictor.predict_proba)
        for record in records[:15]:
            store.upsert(record)
        snapshot = store.snapshot(tmp_path / "store")
        restored = EntityStore.restore(snapshot)
        with LinkageService(predictor, store=restored) as service:
            for record in records[15:30]:
                service.upsert(record)
            assert len(service.store) == 30

    def test_existing_store_and_store_config_conflict(self, predictor):
        with pytest.raises(ValueError, match="not both"):
            LinkageService(predictor, store_config=StoreConfig(),
                           store=EntityStore())


class TestLoadgen:
    def test_latency_percentiles_shape(self):
        samples = [0.001 * i for i in range(1, 101)]
        percentiles = latency_percentiles(samples)
        assert set(percentiles) == {"p50", "p95", "p99"}
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]
        assert latency_percentiles([]) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_upsert_replay_reports_throughput_and_percentiles(self, service,
                                                              tiny_music_corpus):
        report = replay_upserts(service, tiny_music_corpus.records[:10])
        assert report.operations == 10
        assert report.throughput > 0.0
        percentiles = report.percentiles()
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]

    def test_replay_queries_rejects_bad_worker_count(self, service):
        with pytest.raises(ValueError, match="num_workers"):
            replay_queries(service, [], num_workers=0)


class TestServeCLI:
    def test_no_demo_flag_prints_help(self, capsys):
        assert serve_main([]) == 2
        assert "--demo" in capsys.readouterr().out

    @pytest.mark.slow
    def test_demo_streams_and_passes_parity(self, capsys):
        exit_code = serve_main(["--demo", "--scale", "smoke", "--epochs", "3",
                                "--queries", "30", "--workers", "4"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "parity OK" in output
        assert "query latency" in output
