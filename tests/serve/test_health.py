"""Service SLO wiring: per-request recording, health(), the --health CLI."""

from __future__ import annotations

import pytest

from repro.core import AdaMELHybrid
from repro.data.records import Record
from repro.infer import BatchedPredictor
from repro.obs.slo import SLOConfig
from repro.serve import (LinkageService, ServiceConfig, replay_queries,
                         replay_upserts)
from repro.serve.__main__ import main as serve_main
from repro.serve.coalescer import RequestCoalescer


@pytest.fixture(scope="module")
def predictor(music_scenario, fast_config):
    trainer = AdaMELHybrid(fast_config)
    trainer.fit(music_scenario)
    return BatchedPredictor.from_trainer(trainer)


@pytest.fixture()
def service(predictor):
    config = ServiceConfig(max_batch_size=16, max_wait_ms=2.0, top_k=3)
    with LinkageService(predictor, service_config=config) as running:
        yield running


class TestServiceHealth:
    def test_replayed_load_reports_healthy(self, service, tiny_music_corpus):
        records = tiny_music_corpus.records
        replay_upserts(service, records)
        replay_queries(service, records, num_workers=4)
        report = service.health()
        assert report["status"] == "pass"
        assert report["uptime_seconds"] > 0.0
        by_name = {o["name"]: o for o in report["objectives"]}
        long_window = by_name["serve_query_latency"]["windows"]["600s"]
        assert long_window["total"] == float(len(records))
        assert by_name["serve_upsert_latency"]["status"] == "pass"
        assert by_name["serve_error_rate"]["windows"]["600s"]["total"] == \
            2.0 * len(records)
        # Query pairs ride the coalescer, so saturation sampled at least once.
        assert by_name["coalescer_queue_saturation"]["windows"]["600s"]["total"] > 0

    def test_health_before_any_traffic_is_no_data(self, service):
        assert service.health()["status"] == "no_data"

    def test_failed_requests_record_errors(self, service, tiny_music_corpus):
        records = tiny_music_corpus.records
        service.upsert(records[0])

        def boom(pairs):
            raise RuntimeError("scorer down")

        service.store.bind_score_fn(boom, upsert_score_fn=boom)
        # A near-duplicate probe shares the stored record's blocking buckets,
        # so both requests are forced through the (now failing) scorer.
        probe = Record(record_id="probe#health", source="unseen-source",
                       attributes=dict(records[0].attributes))
        with pytest.raises(RuntimeError):
            service.upsert(probe)
        # Queries never surface scorer failures: they fall back to the
        # index-only degraded ranking (tests/resilience covers the details).
        result = service.query(probe)
        assert result.degraded
        by_name = {o["name"]: o for o in service.health()["objectives"]}
        errors = by_name["serve_error_rate"]["windows"]["600s"]
        assert errors["total"] == 3.0
        assert errors["good"] == 2.0
        # The failed upsert never pollutes the latency samples; the degraded
        # query served an answer, so its latency counts.
        assert by_name["serve_upsert_latency"]["windows"]["600s"]["total"] == 1.0
        assert by_name["serve_query_latency"]["windows"]["600s"]["total"] == 1.0

    def test_custom_catalog_may_drop_objectives(self, predictor,
                                                tiny_music_corpus):
        catalog = [SLOConfig("serve_query_latency", "latency_quantile",
                             target=0.95, threshold=0.25)]
        with LinkageService(predictor, slo_objectives=catalog) as service:
            service.upsert(tiny_music_corpus.records[0])  # must not KeyError
            report = service.health()
        assert [o["name"] for o in report["objectives"]] == \
            ["serve_query_latency"]


class TestCoalescerQueueSampling:
    def test_sample_fn_sees_saturation_fraction(self):
        samples = []
        coalescer = RequestCoalescer(lambda pairs: [0.5] * len(pairs),
                                     max_batch_size=4, max_wait_ms=1.0,
                                     max_queue_size=100,
                                     queue_sample_fn=samples.append)
        with coalescer:
            coalescer.score([("a", "b"), ("c", "d")])
        assert samples
        assert all(0.0 <= sample <= 1.0 for sample in samples)
        assert samples[0] >= 2 / 100

    def test_sample_fn_is_optional(self):
        coalescer = RequestCoalescer(lambda pairs: [0.5] * len(pairs))
        with coalescer:
            assert coalescer.score([("a", "b")]) == [0.5]


class TestHealthCLI:
    @pytest.mark.slow
    def test_health_flag_prints_report_and_exits_clean(self, capsys):
        exit_code = serve_main(["--health", "--scale", "smoke",
                                "--epochs", "2", "--workers", "2"])
        out = capsys.readouterr().out
        assert exit_code in (0, 1)  # 1 only on a breached objective
        assert "service health:" in out
        assert "serve_query_latency" in out
        assert "coalescer_queue_saturation" in out

    def test_demo_and_health_are_mutually_exclusive(self, capsys):
        assert serve_main(["--demo", "--health"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err
