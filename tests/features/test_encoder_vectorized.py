"""Equivalence and caching tests for the vectorised pair-encoding hot path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.records import EntityPair, Record
from repro.data.schema import Schema
from repro.features import EncodingCache, PairEncoder, get_default_cache
from repro.text import HashedEmbedder, Tokenizer


@pytest.fixture(scope="module")
def scenario_pairs(music_scenario):
    scenario = music_scenario.align()
    pairs = (list(scenario.source.pairs) + list(scenario.target.pairs)
             + list(scenario.test.pairs))
    return scenario.aligned_schema(), pairs


def make_encoder(schema, dim=16, crop=6, cache=None, use_cache=True, kinds=("shared", "unique")):
    tokenizer = Tokenizer(crop_size=crop)
    embedder = HashedEmbedder(dim=dim, tokenizer=tokenizer)
    return PairEncoder(schema, embedder=embedder, tokenizer=tokenizer,
                       feature_kinds=kinds, cache=cache, use_cache=use_cache)


class TestVectorizedEquivalence:
    def test_encode_matches_reference_bit_exactly(self, scenario_pairs):
        """The vectorised encoder is bit-identical to the seed per-pair path."""
        schema, pairs = scenario_pairs
        encoder = make_encoder(schema, cache=EncodingCache())
        reference = encoder.encode_reference(pairs)
        vectorized = encoder.encode(pairs)
        assert np.array_equal(reference.features, vectorized.features)
        assert np.array_equal(reference.feature_mask, vectorized.feature_mask)
        assert np.array_equal(reference.labels, vectorized.labels)
        assert reference.pair_ids == vectorized.pair_ids

    def test_encode_matches_reference_without_cache(self, scenario_pairs):
        schema, pairs = scenario_pairs
        encoder = make_encoder(schema, use_cache=False)
        assert encoder.cache is None
        reference = encoder.encode_reference(pairs)
        vectorized = encoder.encode(pairs)
        assert np.array_equal(reference.features, vectorized.features)

    @pytest.mark.parametrize("kinds", [("shared",), ("unique",)])
    def test_single_kind_encoders_equivalent(self, scenario_pairs, kinds):
        schema, pairs = scenario_pairs
        encoder = make_encoder(schema, cache=EncodingCache(), kinds=kinds)
        reference = encoder.encode_reference(pairs[:50])
        vectorized = encoder.encode(pairs[:50])
        assert np.array_equal(reference.features, vectorized.features)
        assert np.array_equal(reference.feature_mask, vectorized.feature_mask)

    def test_encode_pair_matches_batch_row(self, scenario_pairs):
        schema, pairs = scenario_pairs
        encoder = make_encoder(schema, cache=EncodingCache())
        batch = encoder.encode(pairs[:10])
        for i, pair in enumerate(pairs[:10]):
            single = encoder.encode_pair(pair)
            assert np.array_equal(single.features, batch.features[i])
            assert np.array_equal(single.feature_mask, batch.feature_mask[i])

    def test_empty_batch(self, scenario_pairs):
        schema, _ = scenario_pairs
        encoder = make_encoder(schema)
        batch = encoder.encode([])
        assert len(batch) == 0
        assert batch.features.shape == (0, encoder.num_features, encoder.embedding_dim)


class TestEncodingCache:
    def test_cache_hits_return_identical_arrays(self, scenario_pairs):
        schema, pairs = scenario_pairs
        cache = EncodingCache()
        encoder = make_encoder(schema, cache=cache)
        cold = encoder.encode(pairs)
        assert cache.hits == 0
        warm = encoder.encode(pairs)
        assert cache.hits == len(pairs)
        assert np.array_equal(cold.features, warm.features)
        assert np.array_equal(cold.feature_mask, warm.feature_mask)

    def test_hit_rate(self, scenario_pairs):
        schema, pairs = scenario_pairs
        cache = EncodingCache()
        assert cache.hit_rate() == 0.0
        encoder = make_encoder(schema, cache=cache)
        encoder.encode(pairs)
        assert cache.hit_rate() == 0.0
        encoder.encode(pairs)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_cache_shared_across_encoder_instances(self, scenario_pairs):
        """Fresh encoders with the same configuration reuse cached rows."""
        schema, pairs = scenario_pairs
        cache = EncodingCache()
        first = make_encoder(schema, cache=cache)
        second = make_encoder(schema, cache=cache)
        assert first.fingerprint == second.fingerprint
        cold = first.encode(pairs[:40])
        warm = second.encode(pairs[:40])
        assert cache.hits == 40
        assert np.array_equal(cold.features, warm.features)

    def test_different_configs_never_collide(self, scenario_pairs):
        schema, pairs = scenario_pairs
        cache = EncodingCache()
        a = make_encoder(schema, dim=16, cache=cache)
        b = make_encoder(schema, dim=24, cache=cache)
        assert a.fingerprint != b.fingerprint
        batch_a = a.encode(pairs[:10])
        batch_b = b.encode(pairs[:10])
        assert cache.hits == 0
        assert batch_a.embedding_dim == 16
        assert batch_b.embedding_dim == 24

    def test_same_pair_id_different_content_no_stale_hit(self):
        """Cache keys include record values, not just pair ids."""
        schema = Schema(("name",))
        cache = EncodingCache()
        encoder = make_encoder(schema, cache=cache)
        pair_v1 = EntityPair(left=Record("l", "s1", {"name": "neil diamond"}),
                             right=Record("r", "s2", {"name": "n. diamond"}),
                             label=1, pair_id="shared-id")
        pair_v2 = EntityPair(left=Record("l", "s1", {"name": "tom waits"}),
                             right=Record("r", "s2", {"name": "t. waits"}),
                             label=1, pair_id="shared-id")
        batch_v1 = encoder.encode([pair_v1])
        batch_v2 = encoder.encode([pair_v2])
        assert cache.hits == 0
        assert not np.array_equal(batch_v1.features, batch_v2.features)
        assert np.array_equal(batch_v2.features,
                              encoder.encode_reference([pair_v2]).features)

    def test_eviction_respects_byte_budget(self, scenario_pairs):
        schema, pairs = scenario_pairs
        probe = make_encoder(schema, cache=EncodingCache())
        probe_batch = probe.encode(pairs[:1])
        entry_bytes = probe_batch.features[0].nbytes + probe_batch.feature_mask[0].nbytes
        cache = EncodingCache(max_bytes=entry_bytes * 5)
        encoder = make_encoder(schema, cache=cache)
        encoder.encode(pairs[:20])
        assert len(cache) <= 5
        assert cache.current_bytes <= cache.max_bytes
        assert cache.evictions > 0

    def test_oversized_entry_does_not_flush_cache(self):
        """Regression: an entry that can never fit must be rejected up front,
        not after evicting everything already cached."""
        cache = EncodingCache(max_bytes=1000)
        for i in range(5):
            cache.store((f"k{i}",), np.ones((2, 3)), np.ones(2))
        assert len(cache) == 5
        cache.store(("huge",), np.ones((100, 100)), np.ones(100))
        assert len(cache) == 5
        assert cache.evictions == 0
        assert ("huge",) not in cache

    def test_clear_resets_counters(self):
        cache = EncodingCache()
        cache.store(("k",), np.ones((2, 3)), np.ones(2))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.current_bytes == 0
        assert cache.stats()["hits"] == 0

    def test_default_cache_used_when_none_given(self, scenario_pairs):
        schema, _ = scenario_pairs
        encoder = make_encoder(schema)
        assert encoder.cache is get_default_cache()

    def test_cached_entries_survive_batch_mutation(self, scenario_pairs):
        """Mutating a returned batch must not corrupt later encodes."""
        schema, pairs = scenario_pairs
        cache = EncodingCache()
        encoder = make_encoder(schema, cache=cache)
        first = encoder.encode(pairs[:5])
        clean = first.features.copy()
        first.features[:] = -1.0
        second = encoder.encode(pairs[:5])
        assert np.array_equal(second.features, clean)
