"""Tests for the feature pipeline: relational features, pair encoding, importance."""

import numpy as np
import pytest

from repro.data import EntityPair, Record, Schema
from repro.features import (
    ImportanceReport,
    PairEncoder,
    RelationalFeatureExtractor,
    aggregate_importance,
    extract_relational_features,
    feature_names,
    top_attributes,
)
from repro.features.importance import FeatureImportance
from repro.text import HashedEmbedder, Tokenizer, missing_value_vector


@pytest.fixture
def schema():
    return Schema(("title", "artist"))


@pytest.fixture
def pair():
    left = Record(record_id="l", source="s1",
                  attributes={"title": "River Deep Mountain High", "artist": "Neil Diamond"})
    right = Record(record_id="r", source="s2",
                   attributes={"title": "River Deep", "artist": ""})
    return EntityPair(left=left, right=right, label=1)


class TestRelationalFeatures:
    def test_feature_names_order(self, schema):
        assert feature_names(schema) == ["title_shared", "title_unique",
                                         "artist_shared", "artist_unique"]

    def test_shared_and_unique_tokens(self, schema, pair):
        extractor = RelationalFeatureExtractor(schema, Tokenizer())
        by_name = extractor.tokens_by_feature(pair)
        assert set(by_name["title_shared"]) == {"river", "deep"}
        assert set(by_name["title_unique"]) == {"mountain", "high"}
        # artist is missing on the right, so nothing is shared.
        assert by_name["artist_shared"] == ()
        assert set(by_name["artist_unique"]) == {"neil", "diamond"}

    def test_paper_example_f_equals_2a(self, schema, pair):
        """The paper: F = 2|A| contrastive features per pair."""
        extractor = RelationalFeatureExtractor(schema)
        assert extractor.num_features == 2 * len(schema)
        assert len(extractor(pair)) == 2 * len(schema)

    def test_single_kind_extractor(self, schema, pair):
        extractor = RelationalFeatureExtractor(schema, feature_kinds=("shared",))
        assert extractor.num_features == len(schema)
        assert all(feature.kind == "shared" for feature in extractor(pair))

    def test_invalid_kinds(self, schema):
        with pytest.raises(ValueError):
            RelationalFeatureExtractor(schema, feature_kinds=("bogus",))
        with pytest.raises(ValueError):
            RelationalFeatureExtractor(schema, feature_kinds=())

    def test_identical_values_have_no_unique_tokens(self, schema):
        record = Record(record_id="a", source="s1", attributes={"title": "Hello", "artist": "Adele"})
        other = Record(record_id="b", source="s2", attributes={"title": "Hello", "artist": "Adele"})
        features = extract_relational_features(EntityPair(record, other, 1), schema, Tokenizer())
        unique = [f for f in features if f.kind == "unique"]
        assert all(f.is_empty for f in unique)


class TestPairEncoder:
    def test_encoded_shapes(self, schema, pair):
        encoder = PairEncoder(schema, embedder=HashedEmbedder(dim=16))
        encoded = encoder.encode([pair, pair])
        assert encoded.features.shape == (2, 4, 16)
        assert encoded.labels.tolist() == [1, 1]
        assert encoded.feature_mask.shape == (2, 4)

    def test_missing_feature_uses_fixed_vector(self, schema, pair):
        encoder = PairEncoder(schema, embedder=HashedEmbedder(dim=16))
        encoded = encoder.encode_pair(pair)
        artist_shared_index = encoder.feature_names.index("artist_shared")
        assert np.allclose(encoded.features[artist_shared_index], missing_value_vector(16))
        assert encoded.feature_mask[artist_shared_index] == 0.0

    def test_present_features_unit_norm(self, schema, pair):
        encoder = PairEncoder(schema, embedder=HashedEmbedder(dim=16))
        encoded = encoder.encode_pair(pair)
        title_shared_index = encoder.feature_names.index("title_shared")
        assert np.isclose(np.linalg.norm(encoded.features[title_shared_index]), 1.0)

    def test_unlabeled_pairs_encoded_as_minus_one(self, schema, pair):
        encoder = PairEncoder(schema, embedder=HashedEmbedder(dim=8))
        encoded = encoder.encode([pair.unlabeled()])
        assert encoded.labels.tolist() == [-1]
        assert len(encoded.labeled_view()) == 0

    def test_empty_input(self, schema):
        encoder = PairEncoder(schema, embedder=HashedEmbedder(dim=8))
        encoded = encoder.encode([])
        assert len(encoded) == 0
        assert encoded.features.shape == (0, 4, 8)

    def test_subset(self, schema, pair):
        encoder = PairEncoder(schema, embedder=HashedEmbedder(dim=8))
        encoded = encoder.encode([pair, pair.unlabeled(), pair])
        subset = encoded.subset([0, 2])
        assert len(subset) == 2
        assert subset.labels.tolist() == [1, 1]

    def test_determinism(self, schema, pair):
        encoder_a = PairEncoder(schema, embedder=HashedEmbedder(dim=8))
        encoder_b = PairEncoder(schema, embedder=HashedEmbedder(dim=8))
        assert np.allclose(encoder_a.encode_pair(pair).features,
                           encoder_b.encode_pair(pair).features)


class TestImportance:
    def test_aggregate_and_rank(self):
        scores = np.array([[0.7, 0.2, 0.1], [0.5, 0.3, 0.2]])
        report = aggregate_importance(scores, ["a_shared", "b_shared", "b_unique"])
        assert report.top(1)[0].name == "a_shared"
        assert report.score_of("a_shared") == pytest.approx(0.6)

    def test_attribute_scores_sum_kinds(self):
        scores = np.array([[0.4, 0.3, 0.3]])
        report = aggregate_importance(scores, ["x_shared", "x_unique", "y_shared"])
        assert report.attribute_scores()["x"] == pytest.approx(0.7)

    def test_top_attributes(self):
        scores = np.array([[0.5, 0.3, 0.2]])
        report = aggregate_importance(scores, ["x_shared", "y_shared", "z_shared"])
        assert top_attributes(report, 2) == ["x", "y"]

    def test_gini_bounds(self):
        uniform = ImportanceReport([FeatureImportance(f"f{i}", 0.25) for i in range(4)])
        skewed = ImportanceReport([FeatureImportance("f0", 0.97)]
                                  + [FeatureImportance(f"f{i}", 0.01) for i in range(1, 4)])
        assert uniform.gini_coefficient() == pytest.approx(0.0, abs=1e-9)
        assert skewed.gini_coefficient() > uniform.gini_coefficient()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            aggregate_importance(np.zeros((2, 3)), ["only", "two"])
        with pytest.raises(ValueError):
            aggregate_importance(np.zeros(3), ["a", "b", "c"])

    def test_unknown_feature_lookup(self):
        report = aggregate_importance(np.array([[1.0]]), ["a_shared"])
        with pytest.raises(KeyError):
            report.score_of("missing")
