"""Hammer tests: EncodingCache under concurrent lookup/store/clear traffic.

Before the serve subsystem, the process-wide cache was only touched from one
thread; online serving hits it from many.  These tests drive it hard from
worker threads and then check the structural invariants the byte-budget
eviction relies on (tracked bytes == sum of entry bytes <= budget, consistent
hit/miss accounting).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.features import EncodingCache


def entry_arrays(rng: np.random.Generator, size: int = 8):
    features = rng.normal(size=(size, size))
    mask = np.ones(size)
    return features, mask


def cache_invariants_hold(cache: EncodingCache) -> bool:
    entries = list(cache._entries.values())
    tracked = sum(features.nbytes + mask.nbytes for features, mask in entries)
    return cache.current_bytes == tracked and cache.current_bytes <= cache.max_bytes


class TestEncodingCacheHammer:
    @pytest.mark.slow
    def test_concurrent_lookup_store_keeps_budget_and_counters(self):
        # Budget fits only a fraction of the keyspace, so eviction churns
        # constantly while every thread hammers overlapping keys.
        entry_bytes = 8 * 8 * 8 + 8 * 8
        cache = EncodingCache(max_bytes=entry_bytes * 10)
        num_threads, ops = 8, 400
        lookups_per_thread = []
        errors = []

        def worker(seed: int) -> None:
            rng = np.random.default_rng(seed)
            lookups = 0
            try:
                for index in range(ops):
                    key = ("pair", int(rng.integers(0, 40)))
                    if cache.lookup(key) is None:
                        features, mask = entry_arrays(rng)
                        cache.store(key, features, mask)
                    lookups += 1
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)
            lookups_per_thread.append(lookups)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert cache_invariants_hold(cache)
        # Every lookup increments exactly one of hits/misses, atomically.
        assert cache.hits + cache.misses == sum(lookups_per_thread)
        assert len(cache) <= 10

    @pytest.mark.slow
    def test_concurrent_clear_does_not_corrupt_the_budget(self):
        entry_bytes = 8 * 8 * 8 + 8 * 8
        cache = EncodingCache(max_bytes=entry_bytes * 6)
        stop = threading.Event()
        errors = []

        def mutator(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                while not stop.is_set():
                    key = ("pair", int(rng.integers(0, 24)))
                    if cache.lookup(key) is None:
                        features, mask = entry_arrays(rng)
                        cache.store(key, features, mask)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def clearer() -> None:
            try:
                while not stop.is_set():
                    cache.clear()
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = ([threading.Thread(target=mutator, args=(seed,)) for seed in range(6)]
                   + [threading.Thread(target=clearer)])
        for thread in threads:
            thread.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for thread in threads:
            thread.join()
        timer.cancel()

        assert not errors
        assert cache_invariants_hold(cache)
        # The cache must still work normally after the storm.
        features, mask = entry_arrays(np.random.default_rng(0))
        cache.store(("after", 0), features, mask)
        cached = cache.lookup(("after", 0))
        assert cached is not None
        np.testing.assert_array_equal(cached[0], features)
