"""Finite-difference validation of analytic gradients for composite ops."""

import numpy as np
import pytest

from repro.nn import (
    AdditiveAttention,
    Linear,
    MLP,
    Tensor,
    binary_cross_entropy,
    check_gradient,
    kl_divergence,
)
from repro.nn import functional as F


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_linear_gradcheck(rng):
    layer = Linear(4, 3, rng=rng)
    x = Tensor(rng.standard_normal((5, 4)))

    def loss():
        return (layer(x) ** 2).sum()

    assert check_gradient(loss, layer.parameters())


def test_mlp_gradcheck(rng):
    mlp = MLP(3, [4], 1, activation="tanh", rng=rng)
    x = Tensor(rng.standard_normal((6, 3)))

    def loss():
        return (mlp(x) ** 2).mean()

    assert check_gradient(loss, mlp.parameters())


def test_softmax_gradcheck(rng):
    x = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
    target = rng.standard_normal((4, 5))

    def loss():
        return ((F.softmax(x, axis=-1) - Tensor(target)) ** 2).sum()

    assert check_gradient(loss, [x])


def test_bce_gradcheck(rng):
    logits = Tensor(rng.standard_normal(8), requires_grad=True)
    labels = Tensor((rng.random(8) > 0.5).astype(float))

    def loss():
        return binary_cross_entropy(logits.sigmoid(), labels)

    assert check_gradient(loss, [logits])


def test_kl_divergence_gradcheck(rng):
    scores = Tensor(rng.standard_normal((3, 6)), requires_grad=True)
    reference = np.abs(rng.standard_normal(6)) + 0.1
    reference = reference / reference.sum()

    def loss():
        return kl_divergence(Tensor(reference), F.softmax(scores, axis=-1))

    assert check_gradient(loss, [scores])


def test_additive_attention_gradcheck(rng):
    attention = AdditiveAttention(4, 5, rng=rng)
    x = Tensor(rng.standard_normal((3, 6, 4)))
    target = rng.standard_normal((3, 6))

    def loss():
        return ((attention(x) - Tensor(target)) ** 2).sum()

    assert check_gradient(loss, [attention.W, attention.a])


def test_batched_affine_gradcheck(rng):
    """The per-feature affine used by AdaMEL (broadcast batched matmul)."""
    V = Tensor(rng.standard_normal((3, 4, 2)), requires_grad=True)
    h = Tensor(rng.standard_normal((5, 3, 4)))

    def loss():
        projected = (h.unsqueeze(2) @ V).squeeze(2)
        return (projected.tanh() ** 2).sum()

    assert check_gradient(loss, [V])
