"""Tests for the graph-capture/replay executor (``repro.nn.graph``).

The central contract: with float64 data, replaying a captured graph for new
inputs produces *bit-identical* values and gradients to rebuilding and
backpropagating the eager graph for the same inputs.
"""

import numpy as np
import pytest

from repro.nn import MLP, Adam, binary_cross_entropy
from repro.nn import functional as F
from repro.nn.attention import AdditiveAttention
from repro.nn.graph import CompiledGraph, GraphShapeMismatch, Tape
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor, no_grad, recomputed_leaf


def _toy_model(seed: int):
    rng = np.random.default_rng(seed)
    attention = AdditiveAttention(6, 4, rng=rng)
    classifier = MLP(5 * 6, [8], 1, rng=rng)
    return attention, classifier


def _toy_loss(attention, classifier, feat_t, lab_t):
    scores = attention(feat_t)                       # (N, F)
    scaled = F.relu(scores.unsqueeze(-1) * feat_t)   # (N, F, H)
    flat = scaled.reshape(feat_t.shape[0], 5 * 6)
    probs = classifier.forward_sigmoid(flat).squeeze(-1)
    return binary_cross_entropy(probs, lab_t)


class TestCompiledGraphTraining:
    def test_replay_is_bit_exact_with_eager(self):
        rng = np.random.default_rng(0)
        batches = [(rng.normal(size=(4, 5, 6)), rng.integers(0, 2, 4).astype(float))
                   for _ in range(4)]

        # Eager run.
        att_e, clf_e = _toy_model(3)
        params_e = att_e.parameters() + clf_e.parameters()
        opt_e = Adam(params_e, lr=1e-2)
        eager_losses = []
        for feats, labs in batches:
            loss = _toy_loss(att_e, clf_e, Tensor(feats), Tensor(labs))
            opt_e.zero_grad()
            loss.backward()
            opt_e.step()
            eager_losses.append(float(loss.data))

        # Capture once, replay the rest.
        att_r, clf_r = _toy_model(3)
        params_r = att_r.parameters() + clf_r.parameters()
        opt_r = Adam(params_r, lr=1e-2)
        tape = Tape()
        with tape:
            feat_t = Tensor(batches[0][0])
            lab_t = Tensor(batches[0][1])
            loss = _toy_loss(att_r, clf_r, feat_t, lab_t)
        graph = CompiledGraph(tape, inputs={"features": feat_t, "labels": lab_t},
                              loss=loss)
        opt_r.zero_grad()
        loss.backward()
        opt_r.step()
        replay_losses = [float(loss.data)]
        for feats, labs in batches[1:]:
            replay_losses.append(graph.step({"features": feats, "labels": labs}))
            opt_r.step()

        assert eager_losses == replay_losses
        for a, b in zip(params_e, params_r):
            assert np.array_equal(a.data, b.data)

    def test_shape_mismatch_raises(self):
        att, clf = _toy_model(0)
        tape = Tape()
        with tape:
            feat_t = Tensor(np.zeros((4, 5, 6)))
            lab_t = Tensor(np.zeros(4))
            loss = _toy_loss(att, clf, feat_t, lab_t)
        graph = CompiledGraph(tape, inputs={"features": feat_t, "labels": lab_t},
                              loss=loss)
        with pytest.raises(GraphShapeMismatch):
            graph.step({"features": np.zeros((3, 5, 6)), "labels": np.zeros(3)})

    def test_unknown_input_rejected(self):
        tape = Tape()
        with tape:
            x = Tensor(np.zeros(3), requires_grad=True)
            loss = (x * x).sum()
        graph = CompiledGraph(tape, inputs={"x": x}, loss=loss)
        with pytest.raises(KeyError):
            graph.load_inputs({"bogus": np.zeros(3)})

    def test_loss_must_be_scalar_and_grad_connected(self):
        tape = Tape()
        with tape:
            x = Tensor(np.zeros(3), requires_grad=True)
            vector = x * 2.0
        with pytest.raises(ValueError):
            CompiledGraph(tape, inputs={}, loss=vector)
        with no_grad():
            tape2 = Tape()
            with tape2:
                y = Tensor(np.zeros(3), requires_grad=True)
                out = (y * 2.0).sum()
        with pytest.raises(ValueError):
            CompiledGraph(tape2, inputs={}, loss=out)

    def test_nested_capture_rejected(self):
        with Tape():
            with pytest.raises(RuntimeError):
                with Tape():
                    pass
        # The failed nested enter must not clobber capture state.
        with Tape():
            pass

    def test_op_counters_exposed(self):
        att, clf = _toy_model(0)
        tape = Tape()
        with tape:
            feat_t = Tensor(np.zeros((4, 5, 6)))
            lab_t = Tensor(np.zeros(4))
            loss = _toy_loss(att, clf, feat_t, lab_t)
        graph = CompiledGraph(tape, inputs={}, loss=loss)
        assert graph.num_forward_ops > 0
        assert graph.num_backward_ops > 0
        assert graph.num_nodes >= graph.num_backward_ops


class TestForwardOnlyGraph:
    def test_forward_graph_tracks_parameter_updates(self):
        rng = np.random.default_rng(1)
        att = AdditiveAttention(6, 4, rng=rng)
        features = rng.normal(size=(5, 3, 6))
        with no_grad():
            tape = Tape()
            with tape:
                feat_t = Tensor(features)
                out = att(feat_t)
        graph = CompiledGraph(tape, inputs={})
        first = out.data.copy()
        # Update parameters in place, replay, and compare with a fresh eager
        # forward — must match bit for bit.
        att.W.data += 0.05
        att.a.data -= 0.05
        graph.forward()
        with no_grad():
            expected = att(Tensor(features)).data
        assert not np.array_equal(first, out.data)
        assert np.array_equal(out.data, expected)


class TestRecomputedLeaf:
    def test_plain_constant_outside_capture(self):
        calls = []

        def compute():
            calls.append(1)
            return np.ones(3)

        leaf = recomputed_leaf(compute)
        assert len(calls) == 1
        assert np.array_equal(leaf.data, np.ones(3))

    def test_refreshed_on_replay(self):
        source = np.ones(3)
        tape = Tape()
        with tape:
            x = Tensor(np.zeros(3), requires_grad=True)
            leaf = recomputed_leaf(lambda: source * 2.0)
            loss = (x * leaf).sum()
        graph = CompiledGraph(tape, inputs={"x": x}, loss=loss)
        source[:] = 5.0
        graph.step({"x": np.ones(3)})
        assert np.array_equal(leaf.data, np.full(3, 10.0))
        assert np.array_equal(x.grad, np.full(3, 10.0))

    def test_softmax_shift_is_capture_safe(self):
        tape = Tape()
        with tape:
            x = Tensor(np.array([[1.0, 2.0, 3.0]]), requires_grad=True)
            out = F.softmax(x, axis=-1)
            loss = (out * out).sum()
        graph = CompiledGraph(tape, inputs={"x": x}, loss=loss)
        # Replay with much larger values: a stale max-shift would overflow.
        graph.step({"x": np.array([[1000.0, 1000.0, 1000.0]])})
        assert np.allclose(out.data, [[1 / 3, 1 / 3, 1 / 3]])

    def test_dropout_draws_fresh_mask_per_replay(self):
        rng_replay = np.random.default_rng(9)
        tape = Tape()
        with tape:
            x = Tensor(np.ones((64,)), requires_grad=True)
            out = F.dropout(x, 0.5, rng_replay, training=True)
            loss = out.sum()
        graph = CompiledGraph(tape, inputs={"x": x}, loss=loss)
        first = out.data.copy()
        graph.step({"x": np.ones(64)})
        assert not np.array_equal(first, out.data)
        # Consumption matches an eager run with the same generator.
        rng_eager = np.random.default_rng(9)
        expected_first = Tensor(np.ones(64)) * Tensor(
            (rng_eager.random((64,)) >= 0.5).astype(np.float64) / 0.5)
        assert np.array_equal(first, expected_first.data)


class TestDivisionBackward:
    def test_division_backward_reuses_forward_output(self):
        """Satellite: d(a/b)/db = -out/b must equal the textbook -a/b²."""
        rng = np.random.default_rng(2)
        a_data = rng.normal(size=(4, 3))
        b_data = rng.normal(size=(4, 3)) + 3.0
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(b.grad, -a_data / b_data ** 2, rtol=1e-12, atol=1e-12)
        assert np.allclose(a.grad, 1.0 / b_data, rtol=1e-12, atol=1e-12)

    def test_division_gradcheck(self):
        from repro.nn.gradcheck import check_gradient
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 2)) + 2.5, requires_grad=True)
        check_gradient(lambda: ((a / b) ** 2).sum(), [a, b])
