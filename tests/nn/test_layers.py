"""Tests for layers, modules, optimisers, activations and recurrent cells."""

import numpy as np
import pytest

from repro.nn import (
    GRU,
    GRUCell,
    MLP,
    Adam,
    Dropout,
    Embedding,
    Linear,
    Module,
    Parameter,
    RNNCell,
    SGD,
    ScaledDotProductAttention,
    SelfAttentionEncoder,
    Sequential,
    Tensor,
    binary_cross_entropy,
    clip_grad_norm,
    cross_entropy,
    mse_loss,
)
from repro.nn import functional as F


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestLinearAndMLP:
    def test_linear_shape(self, rng):
        layer = Linear(5, 3, rng=rng)
        assert layer(Tensor(np.zeros((4, 5)))).shape == (4, 3)

    def test_linear_no_bias(self, rng):
        layer = Linear(5, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_mlp_output_shape(self, rng):
        mlp = MLP(4, [8, 8], 2, rng=rng)
        assert mlp(Tensor(np.zeros((3, 4)))).shape == (3, 2)

    def test_mlp_invalid_activation(self, rng):
        with pytest.raises(ValueError):
            MLP(4, [8], 1, activation="swish", rng=rng)

    def test_sequential_indexing(self, rng):
        seq = Sequential(Linear(2, 3, rng=rng), Linear(3, 1, rng=rng))
        assert len(seq) == 2
        assert isinstance(seq[0], Linear)


class TestModuleMechanics:
    def test_parameter_discovery_recursive(self, rng):
        mlp = MLP(4, [8], 2, rng=rng)
        names = [name for name, _ in mlp.named_parameters()]
        assert any("weight" in name for name in names)
        assert mlp.num_parameters() == sum(p.size for p in mlp.parameters())

    def test_state_dict_roundtrip(self, rng):
        mlp = MLP(4, [8], 2, rng=rng)
        state = mlp.state_dict()
        mlp2 = MLP(4, [8], 2, rng=np.random.default_rng(99))
        mlp2.load_state_dict(state)
        x = np.random.rand(3, 4)
        assert np.allclose(mlp(Tensor(x)).data, mlp2(Tensor(x)).data)

    def test_load_state_dict_mismatch(self, rng):
        mlp = MLP(4, [8], 2, rng=rng)
        with pytest.raises(KeyError):
            mlp.load_state_dict({"bogus": np.zeros(2)})

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Linear(2, 2, rng=rng), Dropout(0.5, rng=rng))
        seq.eval()
        assert all(not module.training for module in seq.modules())

    def test_zero_grad(self, rng):
        layer = Linear(2, 2, rng=rng)
        (layer(Tensor(np.ones((1, 2)))) ** 2).sum().backward()
        layer.zero_grad()
        assert all(p.grad is None for p in layer.parameters())


class TestDropoutAndEmbedding:
    def test_dropout_eval_is_identity(self, rng):
        dropout = Dropout(0.5, rng=rng)
        dropout.eval()
        x = Tensor(np.ones((4, 4)))
        assert np.allclose(dropout(x).data, x.data)

    def test_dropout_training_zeroes_entries(self, rng):
        dropout = Dropout(0.7, rng=rng)
        out = dropout(Tensor(np.ones((100,))))
        assert np.sum(out.data == 0) > 0

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_embedding_lookup(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb(np.array([1, 3, 1]))
        assert out.shape == (3, 4)
        assert np.allclose(out.data[0], out.data[2])

    def test_embedding_out_of_range(self, rng):
        emb = Embedding(5, 4, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([7]))


class TestLosses:
    def test_bce_perfect_prediction_near_zero(self):
        loss = binary_cross_entropy(Tensor([1.0, 0.0]), Tensor([1.0, 0.0]))
        assert float(loss.data) < 1e-6

    def test_bce_wrong_prediction_large(self):
        loss = binary_cross_entropy(Tensor([0.0, 1.0]), Tensor([1.0, 0.0]))
        assert float(loss.data) > 5.0

    def test_bce_matches_closed_form(self):
        p, y = 0.7, 1.0
        loss = binary_cross_entropy(Tensor([p]), Tensor([y]))
        assert np.isclose(float(loss.data), -np.log(p))

    def test_cross_entropy_prefers_correct_class(self):
        good = cross_entropy(Tensor([[5.0, -5.0]]), np.array([0]))
        bad = cross_entropy(Tensor([[5.0, -5.0]]), np.array([1]))
        assert float(good.data) < float(bad.data)

    def test_mse(self):
        loss = mse_loss(Tensor([1.0, 2.0]), Tensor([1.0, 4.0]))
        assert np.isclose(float(loss.data), 2.0)


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0])
        param = Parameter(np.zeros(2))

        def loss():
            diff = param - Tensor(target)
            return (diff * diff).sum()

        return param, target, loss

    def test_sgd_converges(self):
        param, target, loss = self._quadratic_problem()
        optimizer = SGD([param], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss().backward()
            optimizer.step()
        assert np.allclose(param.data, target, atol=1e-3)

    def test_adam_converges(self):
        param, target, loss = self._quadratic_problem()
        optimizer = Adam([param], lr=0.2)
        for _ in range(300):
            optimizer.zero_grad()
            loss().backward()
            optimizer.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_sgd_momentum_changes_trajectory(self):
        param1, _, loss1 = self._quadratic_problem()
        param2 = Parameter(np.zeros(2))
        optim1 = SGD([param1], lr=0.05)
        optim2 = SGD([param2], lr=0.05, momentum=0.9)

        def loss2():
            diff = param2 - Tensor(np.array([3.0, -2.0]))
            return (diff * diff).sum()

        for _ in range(10):
            for optim, loss in ((optim1, loss1), (optim2, loss2)):
                optim.zero_grad()
                loss().backward()
                optim.step()
        assert not np.allclose(param1.data, param2.data)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_clip_grad_norm(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.isclose(np.linalg.norm(param.grad), 1.0)


class TestAttentionModules:
    def test_additive_attention_normalised(self, rng):
        from repro.nn import AdditiveAttention
        attention = AdditiveAttention(4, 6, rng=rng)
        scores = attention(Tensor(np.random.rand(3, 5, 4)))
        assert scores.shape == (3, 5)
        assert np.allclose(scores.data.sum(axis=1), 1.0)

    def test_scaled_dot_product_attention(self, rng):
        attention = ScaledDotProductAttention()
        q = Tensor(np.random.rand(2, 3, 4))
        k = Tensor(np.random.rand(2, 5, 4))
        v = Tensor(np.random.rand(2, 5, 6))
        context, weights = attention(q, k, v)
        assert context.shape == (2, 3, 6)
        assert np.allclose(weights.data.sum(axis=-1), 1.0)

    def test_attention_mask_zeroes_positions(self, rng):
        attention = ScaledDotProductAttention()
        q = Tensor(np.random.rand(1, 2, 4))
        k = Tensor(np.random.rand(1, 3, 4))
        v = Tensor(np.random.rand(1, 3, 4))
        mask = np.array([[[1, 1, 0], [1, 1, 0]]])
        _, weights = attention(q, k, v, mask=mask)
        assert np.allclose(weights.data[..., 2], 0.0, atol=1e-6)

    def test_self_attention_encoder_shape(self, rng):
        encoder = SelfAttentionEncoder(8, rng=rng)
        out = encoder(Tensor(np.random.rand(2, 5, 8)))
        assert out.shape == (2, 5, 8)


class TestRecurrent:
    def test_rnn_cell_shape(self, rng):
        cell = RNNCell(4, 6, rng=rng)
        out = cell(Tensor(np.zeros((3, 4))), Tensor(np.zeros((3, 6))))
        assert out.shape == (3, 6)

    def test_gru_cell_gate_behaviour(self, rng):
        cell = GRUCell(4, 6, rng=rng)
        hidden = Tensor(np.random.rand(2, 6))
        out = cell(Tensor(np.zeros((2, 4))), hidden)
        assert out.shape == (2, 6)

    def test_gru_unidirectional(self, rng):
        gru = GRU(4, 5, rng=rng)
        outputs, final = gru(Tensor(np.random.rand(3, 7, 4)))
        assert outputs.shape == (3, 7, 5)
        assert final.shape == (3, 5)

    def test_gru_bidirectional_doubles_dim(self, rng):
        gru = GRU(4, 5, bidirectional=True, rng=rng)
        outputs, final = gru(Tensor(np.random.rand(2, 6, 4)))
        assert outputs.shape == (2, 6, 10)
        assert final.shape == (2, 10)

    def test_gru_rejects_2d_input(self, rng):
        gru = GRU(4, 5, rng=rng)
        with pytest.raises(ValueError):
            gru(Tensor(np.random.rand(6, 4)))

    def test_gru_is_trainable(self, rng):
        gru = GRU(3, 4, rng=rng)
        x = Tensor(np.random.rand(2, 5, 3))
        out, _ = gru(x)
        loss = (out ** 2).sum()
        loss.backward()
        assert any(p.grad is not None for p in gru.parameters())


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        out = F.softmax(Tensor(np.random.rand(4, 7)), axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_stability_large_values(self):
        out = F.softmax(Tensor([[1000.0, 1000.0]]))
        assert np.allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_consistency(self):
        x = Tensor(np.random.rand(3, 5))
        assert np.allclose(F.log_softmax(x).data, np.log(F.softmax(x).data))

    def test_normalize_unit_norm(self):
        out = F.normalize(Tensor(np.random.rand(4, 6)))
        assert np.allclose(np.linalg.norm(out.data, axis=-1), 1.0, atol=1e-5)

    def test_dropout_requires_valid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), p=1.5, rng=np.random.default_rng(0))
