"""Unit tests for the autograd Tensor engine."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concatenate, no_grad, stack
from repro.nn.tensor import _unbroadcast


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        assert np.allclose(out.data, [4.0, 6.0])

    def test_add_scalar_broadcast(self):
        out = Tensor([[1.0, 2.0], [3.0, 4.0]]) + 1.0
        assert np.allclose(out.data, [[2.0, 3.0], [4.0, 5.0]])

    def test_sub_and_neg(self):
        out = Tensor([5.0]) - Tensor([2.0])
        assert np.allclose(out.data, [3.0])
        assert np.allclose((-Tensor([2.0])).data, [-2.0])

    def test_mul_div(self):
        a, b = Tensor([2.0, 3.0]), Tensor([4.0, 6.0])
        assert np.allclose((a * b).data, [8.0, 18.0])
        assert np.allclose((b / a).data, [2.0, 2.0])

    def test_pow(self):
        assert np.allclose((Tensor([2.0, 3.0]) ** 2).data, [4.0, 9.0])

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])  # type: ignore[operator]

    def test_matmul_2d(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        assert np.allclose((a @ b).data, np.array([[19, 22], [43, 50]], dtype=float))

    def test_rmatmul_with_numpy(self):
        a = np.eye(2)
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose((a @ b).data, b.data)


class TestGradients:
    def test_add_grad_broadcast(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))
        assert np.allclose(b.grad, [2.0, 2.0, 2.0])

    def test_mul_grad(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [4.0, 5.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_matmul_grad_shapes(self):
        a = Tensor(np.random.rand(4, 3), requires_grad=True)
        b = Tensor(np.random.rand(3, 2), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (4, 3)
        assert b.grad.shape == (3, 2)

    def test_batched_matmul_broadcast_grad(self):
        a = Tensor(np.random.rand(5, 4, 1, 3), requires_grad=True)
        b = Tensor(np.random.rand(4, 3, 2), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (5, 4, 1, 3)
        assert b.grad.shape == (4, 3, 2)

    def test_grad_accumulates_over_uses(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a + a).sum().backward()
        assert np.allclose(a.grad, [2.0, 2.0])

    def test_backward_requires_scalar_without_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_division_grad(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.0])

    def test_getitem_grad(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        a[0].sum().backward()
        expected = np.zeros((2, 3))
        expected[0] = 1.0
        assert np.allclose(a.grad, expected)


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        assert a.sum(axis=0).shape == (3,)
        assert a.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_matches_numpy(self):
        values = np.random.rand(3, 4)
        assert np.allclose(Tensor(values).mean(axis=1).data, values.mean(axis=1))

    def test_sum_grad_with_axis(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        a.sum(axis=1).sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_max_reduction(self):
        a = Tensor([[1.0, 5.0], [3.0, 2.0]])
        assert np.allclose(a.max(axis=1).data, [5.0, 3.0])

    def test_reshape_roundtrip_grad(self):
        a = Tensor(np.random.rand(2, 6), requires_grad=True)
        a.reshape(3, 4).sum().backward()
        assert a.grad.shape == (2, 6)

    def test_transpose(self):
        a = Tensor(np.random.rand(2, 3, 4))
        assert a.transpose(1, 0, 2).shape == (3, 2, 4)
        assert a.T.shape == (4, 3, 2)

    def test_squeeze_unsqueeze(self):
        a = Tensor(np.random.rand(2, 1, 3))
        assert a.squeeze(1).shape == (2, 3)
        assert a.unsqueeze(0).shape == (1, 2, 1, 3)

    def test_clip(self):
        a = Tensor([-1.0, 0.5, 2.0])
        assert np.allclose(a.clip(0.0, 1.0).data, [0.0, 0.5, 1.0])


class TestNonlinearities:
    def test_relu(self):
        assert np.allclose(Tensor([-1.0, 2.0]).relu().data, [0.0, 2.0])

    def test_sigmoid_range(self):
        out = Tensor(np.linspace(-10, 10, 7)).sigmoid().data
        assert np.all(out > 0) and np.all(out < 1)

    def test_tanh_matches_numpy(self):
        values = np.linspace(-2, 2, 5)
        assert np.allclose(Tensor(values).tanh().data, np.tanh(values))

    def test_exp_log_inverse(self):
        values = np.array([0.5, 1.0, 2.0])
        assert np.allclose(Tensor(values).log().exp().data, values)

    def test_abs_grad_sign(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        a.abs().sum().backward()
        assert np.allclose(a.grad, [-1.0, 1.0])


class TestGraphUtilities:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_detach(self):
        a = Tensor([1.0], requires_grad=True)
        assert not a.detach().requires_grad

    def test_as_tensor_passthrough(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a

    def test_concatenate_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        concatenate([a, b], axis=0).sum().backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (3, 2)

    def test_stack_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones(3))

    def test_unbroadcast_sums_extra_dims(self):
        grad = np.ones((4, 3, 2))
        assert _unbroadcast(grad, (3, 2)).shape == (3, 2)
        assert np.allclose(_unbroadcast(grad, (3, 2)), 4 * np.ones((3, 2)))

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
