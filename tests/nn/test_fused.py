"""Gradient checks and equivalence tests for the fused kernels.

Every fused op must (a) agree with the composition of elementary ops it
replaces and (b) pass a central-finite-difference gradient check — including
on non-contiguous inputs, which exercise the scratch-buffer reuse paths in
the analytic backwards.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.attention import AdditiveAttention
from repro.nn.fused import (fused_attention_softmax, fused_kl_divergence,
                            fused_linear_sigmoid, fused_softmax_cross_entropy)
from repro.nn.gradcheck import check_gradient
from repro.nn.losses import kl_divergence
from repro.nn.module import Parameter
from repro.nn.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestFusedLinearSigmoid:
    def test_matches_composed(self, rng):
        x = Tensor(rng.normal(size=(6, 5)))
        w = Parameter(rng.normal(size=(3, 5)) * 0.3)
        b = Parameter(rng.normal(size=3) * 0.3)
        fused = fused_linear_sigmoid(x, w, b)
        composed = F.sigmoid(x @ w.T + b)
        assert np.allclose(fused.data, composed.data, atol=1e-12)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        w = Parameter(rng.normal(size=(2, 5)) * 0.3)
        b = Parameter(rng.normal(size=2) * 0.3)
        check_gradient(lambda: fused_linear_sigmoid(x, w, b).sum(), [x, w, b])

    def test_gradcheck_without_bias(self, rng):
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        w = Parameter(rng.normal(size=(1, 3)) * 0.3)
        check_gradient(lambda: fused_linear_sigmoid(x, w).sum(), [x, w])

    def test_repeated_builds_are_deterministic(self, rng):
        """Scratch buffers must be fully overwritten before use.

        Rebuilding the identical graph twice would surface any read of
        uninitialised ``np.empty`` scratch memory as run-to-run divergence.
        """
        x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        w = Parameter(rng.normal(size=(2, 5)) * 0.3)
        b = Parameter(rng.normal(size=2) * 0.3)
        grads = []
        for _ in range(2):
            for t in (x, w, b):
                t.zero_grad()
            fused_linear_sigmoid(x, w, b).sum().backward()
            grads.append([t.grad.copy() for t in (x, w, b)])
        for a, b_ in zip(*grads):
            assert np.array_equal(a, b_)


class TestFusedAttentionSoftmax:
    def test_matches_composed(self, rng):
        attn = AdditiveAttention(6, 4, rng=rng)
        x = Tensor(rng.normal(size=(5, 3, 6)))
        fused = attn(x)
        composed = F.softmax(attn.energies(x), axis=-1)
        assert np.allclose(fused.data, composed.data, atol=1e-12)
        assert np.allclose(fused.data.sum(axis=-1), 1.0)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4, 5)), requires_grad=True)
        w = Parameter(rng.normal(size=(6, 5)) * 0.3)
        a = Parameter(rng.normal(size=6) * 0.3)
        check_gradient(lambda: (fused_attention_softmax(x, w, a) ** 2).sum(),
                       [x, w, a])

    def test_gradcheck_non_contiguous_input(self, rng):
        """The AdaMEL latent path used to feed a transposed view here."""
        base = Tensor(rng.normal(size=(5, 3, 4)), requires_grad=True)
        w = Parameter(rng.normal(size=(6, 5)) * 0.3)
        a = Parameter(rng.normal(size=6) * 0.3)

        def loss():
            x = base.transpose(1, 2, 0)  # (3, 4, 5), non-contiguous
            return (fused_attention_softmax(x, w, a) ** 2).sum()

        check_gradient(loss, [base, w, a])

    def test_two_dimensional_input(self, rng):
        x = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        w = Parameter(rng.normal(size=(6, 5)) * 0.3)
        a = Parameter(rng.normal(size=6) * 0.3)
        out = fused_attention_softmax(x, w, a)
        assert out.shape == (4,)
        check_gradient(lambda: (fused_attention_softmax(x, w, a) ** 2).sum(),
                       [x, w, a])


class TestFusedSoftmaxCrossEntropy:
    def test_matches_manual_nll(self, rng):
        logits = Tensor(rng.normal(size=(6, 4)))
        targets = rng.integers(0, 4, size=6)
        loss = fused_softmax_cross_entropy(logits, targets)
        shifted = logits.data - logits.data.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), targets].mean()
        assert np.isclose(float(loss.data), expected, atol=1e-12)

    def test_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        targets = rng.integers(0, 3, size=5)
        check_gradient(lambda: fused_softmax_cross_entropy(logits, targets), [logits])

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            fused_softmax_cross_entropy(Tensor(rng.normal(size=(2, 3, 4))),
                                        np.array([0, 1]))
        with pytest.raises(ValueError):
            fused_softmax_cross_entropy(Tensor(rng.normal(size=(2, 3))),
                                        np.array([0, 1, 2]))


class TestFusedKLDivergence:
    def test_matches_public_api(self, rng):
        # kl_divergence routes through the fused op; compare against the
        # explicit clipped composition.
        p = Tensor(np.full(4, 0.25))
        q = Tensor(rng.dirichlet(np.ones(4), size=6))
        fused = kl_divergence(p, q)
        p_safe = np.clip(p.data, 1e-9, 1.0)
        q_safe = np.clip(q.data, 1e-9, 1.0)
        expected = (p_safe * (np.log(p_safe) - np.log(q_safe))).sum(axis=-1).mean()
        assert np.isclose(float(fused.data), expected, atol=1e-12)

    def test_zero_when_identical(self):
        p = Tensor(np.full((3, 4), 0.25))
        assert float(fused_kl_divergence(Tensor(np.full(4, 0.25)), p).data) == \
            pytest.approx(0.0, abs=1e-12)

    def test_gradcheck_q(self, rng):
        p = Tensor(rng.dirichlet(np.ones(5)))
        q = Tensor(rng.dirichlet(np.ones(5), size=4), requires_grad=True)
        check_gradient(lambda: fused_kl_divergence(p, q), [q])

    def test_gradcheck_p_and_q(self, rng):
        p = Tensor(rng.dirichlet(np.ones(4)), requires_grad=True)
        q = Tensor(rng.dirichlet(np.ones(4), size=3), requires_grad=True)
        check_gradient(lambda: fused_kl_divergence(p, q), [p, q])

    def test_broadcast_gradient_sums_over_batch(self, rng):
        p = Tensor(rng.dirichlet(np.ones(4)), requires_grad=True)
        q = Tensor(rng.dirichlet(np.ones(4), size=5), requires_grad=True)
        fused_kl_divergence(p, q).backward()
        assert p.grad.shape == (4,)
        assert q.grad.shape == (5, 4)
