"""RetryPolicy / TaskExecutor: backoff, inline and pooled retry accounting."""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.resilience import faults
from repro.resilience.retry import FaultReport, RetryPolicy, TaskExecutor

FORK = "fork" in multiprocessing.get_all_start_methods()

fast_policy = RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0,
                          jitter=0.0)


class TestRetryPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0}, {"base_delay": -0.1},
        {"max_delay": 0.01, "base_delay": 0.05}, {"backoff": 0.5},
        {"jitter": -0.1}, {"task_timeout": 0.0},
    ])
    def test_rejects_invalid_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=0.3,
                             jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)
        assert policy.delay(9) == pytest.approx(0.3)

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.2)
        assert policy.delay(2) == policy.delay(2)
        assert policy.delay(1) != policy.delay(2)

    def test_dict_round_trip(self):
        policy = RetryPolicy(max_attempts=5, task_timeout=1.5,
                             fallback_in_process=False)
        assert RetryPolicy.from_dict(policy.as_dict()) == policy


class TestFaultReport:
    def test_faults_absorbed_counts_recoveries(self):
        report = FaultReport(retries=3, fallbacks=2)
        assert report.faults_absorbed == 5

    def test_as_dict_is_json_friendly(self):
        report = FaultReport(attempts=4, wall_seconds_lost=0.123456,
                             quarantined=["shard-2"])
        payload = report.as_dict()
        assert payload["attempts"] == 4
        assert payload["wall_seconds_lost"] == 0.1235
        assert payload["quarantined"] == ["shard-2"]


class _Flaky:
    """Fails the first ``failures`` calls per item, then succeeds."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.calls = {}

    def __call__(self, item):
        seen = self.calls.get(item, 0)
        self.calls[item] = seen + 1
        if seen < self.failures:
            raise RuntimeError(f"transient failure #{seen + 1} for {item}")
        return item * 10


class TestInlineExecution:
    def test_success_needs_one_attempt_and_no_retries(self):
        executor = TaskExecutor(policy=fast_policy)
        assert executor.run(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert executor.report.attempts == 3
        assert executor.report.retries == 0
        assert not executor.uses_processes

    def test_transient_failures_are_retried_and_counted(self):
        executor = TaskExecutor(policy=fast_policy)
        assert executor.run(_Flaky(failures=2), [1]) == [10]
        assert executor.report.attempts == 3
        assert executor.report.retries == 2
        assert executor.report.fallbacks == 0
        assert executor.report.wall_seconds_lost > 0.0

    def test_exhaustion_falls_back_and_quarantines(self):
        flaky = _Flaky(failures=3)  # fails all pool attempts, fallback wins
        executor = TaskExecutor(policy=fast_policy)
        assert executor.run(flaky, [7], labels=["shard-7"]) == [70]
        assert executor.report.fallbacks == 1
        assert executor.report.quarantined == ["shard-7"]
        assert executor.report.attempts == 4  # 3 tries + the fallback

    def test_exhaustion_without_fallback_raises_the_last_error(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0,
                             fallback_in_process=False)
        executor = TaskExecutor(policy=policy)
        with pytest.raises(RuntimeError, match="transient failure #2"):
            executor.run(_Flaky(failures=99), [1])

    def test_partial_results_count_as_failures(self):
        calls = {"n": 0}

        def sometimes_partial(item):
            calls["n"] += 1
            if calls["n"] == 1:
                return faults.partial_result(item=item)
            return item

        executor = TaskExecutor(policy=fast_policy)
        assert executor.run(sometimes_partial, [5]) == [5]
        assert executor.report.partial_results == 1
        assert executor.report.retries == 1


def _pooled_task(item):
    if faults.check("test.pooled", item=item) == "partial":
        return faults.partial_result(item=item)
    return item * 2


def _make_pool():
    return ProcessPoolExecutor(
        max_workers=2, mp_context=multiprocessing.get_context("fork"),
        initializer=faults.mark_worker_process)


@pytest.mark.skipif(not FORK, reason="fork start method unavailable")
class TestPooledExecution:
    def test_results_come_back_in_item_order(self):
        executor = TaskExecutor(policy=fast_policy, pool_factory=_make_pool)
        try:
            assert executor.run(_pooled_task, [3, 1, 2]) == [6, 2, 4]
            assert executor.uses_processes
            assert executor.report.attempts == 3
        finally:
            executor.shutdown()

    def test_worker_kill_is_absorbed_by_pool_rebuild(self, tmp_path):
        # Kill exactly one worker mid-task (token latch survives re-forks);
        # the executor rebuilds the pool and re-runs the affected round.
        spec = faults.FaultSpec(site="test.pooled", kind="kill", every=1,
                                scope="worker", token=str(tmp_path / "latch"))
        executor = TaskExecutor(policy=fast_policy, pool_factory=_make_pool)
        try:
            with faults.plan_scope([spec]):
                assert executor.run(_pooled_task, [1, 2, 3, 4]) == [2, 4, 6, 8]
            assert executor.report.worker_deaths >= 1
            assert executor.report.retries >= 1
        finally:
            executor.shutdown()

    def test_task_timeout_costs_the_pool_and_retries(self, tmp_path):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0,
                             jitter=0.0, task_timeout=0.5)
        # The token latch makes the stall a one-off: the rebuilt pool forks
        # fresh hit counters, so without it every retry would stall again.
        spec = faults.FaultSpec(site="test.pooled", kind="delay",
                                delay_seconds=30.0, at_hit=1, scope="worker",
                                token=str(tmp_path / "latch"))
        executor = TaskExecutor(policy=policy, pool_factory=_make_pool)
        try:
            with faults.plan_scope([spec]):
                # Only the first hit sleeps; the retried attempt is fast.
                assert executor.run(_pooled_task, [5]) == [10]
            assert executor.report.timeouts == 1
            assert executor.report.retries == 1
        finally:
            executor.shutdown()

    def test_pooled_partials_fall_back_in_process(self):
        # Workers always answer partially; the driver (scope="worker" does
        # not apply to it) runs the task itself after pool exhaustion.
        spec = faults.FaultSpec(site="test.pooled", kind="partial", every=1,
                                scope="worker")
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0,
                             jitter=0.0)
        executor = TaskExecutor(policy=policy, pool_factory=_make_pool)
        try:
            with faults.plan_scope([spec]):
                assert executor.run(_pooled_task, [4], labels=["t"]) == [8]
            assert executor.report.partial_results == 2
            assert executor.report.fallbacks == 1
            assert executor.report.quarantined == ["t"]
        finally:
            executor.shutdown()
