"""The fault-injection registry: specs, triggering, scopes, env arming."""

from __future__ import annotations

import json

import pytest

from repro.resilience import faults
from repro.resilience.faults import FaultInjected, FaultPlan, FaultSpec


@pytest.fixture(autouse=True)
def clean_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


class TestFaultSpec:
    def test_rejects_unknown_kind_and_scope(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(site="x", kind="explode")
        with pytest.raises(ValueError, match="scope"):
            FaultSpec(site="x", kind="raise", scope="gpu")

    @pytest.mark.parametrize("kwargs", [
        {"at_hit": 0}, {"every": 0}, {"max_triggers": 0},
        {"delay_seconds": -1.0},
    ])
    def test_rejects_invalid_counters(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(site="x", kind="raise", **kwargs)

    def test_one_shot_eligibility_is_exactly_at_hit(self):
        spec = FaultSpec(site="x", kind="raise", at_hit=3)
        assert [spec.eligible(hit) for hit in range(1, 6)] == \
            [False, False, True, False, False]

    def test_periodic_eligibility_fires_every_n_after_at_hit(self):
        spec = FaultSpec(site="x", kind="raise", at_hit=2, every=3)
        assert [hit for hit in range(1, 12) if spec.eligible(hit)] == [2, 5, 8, 11]

    def test_dict_round_trip(self):
        spec = FaultSpec(site="sharded.score", kind="delay", at_hit=2,
                         every=4, max_triggers=3, delay_seconds=0.5,
                         scope="worker", token="/tmp/t", match={"shard": 1})
        assert FaultSpec.from_dict(spec.as_dict()) == spec


class TestFaultPlan:
    def test_raise_kind_raises_fault_injected_with_site(self):
        plan = FaultPlan([FaultSpec(site="serve.score", kind="raise")])
        with pytest.raises(FaultInjected) as excinfo:
            plan.check("serve.score", {})
        assert excinfo.value.site == "serve.score"

    def test_max_triggers_bounds_a_periodic_spec(self):
        plan = FaultPlan([FaultSpec(site="s", kind="raise", every=1,
                                    max_triggers=2)])
        for _ in range(2):
            with pytest.raises(FaultInjected):
                plan.check("s", {})
        assert plan.check("s", {}) is None  # exhausted

    def test_partial_kind_returns_partial_and_marker_helpers_agree(self):
        plan = FaultPlan([FaultSpec(site="s", kind="partial")])
        assert plan.check("s", {}) == "partial"
        marked = faults.partial_result(shard=3)
        assert faults.is_partial(marked)
        assert not faults.is_partial({"shard": 3})
        assert not faults.is_partial([1, 2])

    def test_match_restricts_to_call_info(self):
        plan = FaultPlan([FaultSpec(site="s", kind="raise",
                                    match={"shard": 2})])
        assert plan.check("s", {"shard": 1}) is None
        with pytest.raises(FaultInjected):
            plan.check("s", {"shard": 2})
        # Non-matching calls do not consume hits.
        plan.reset()
        assert plan.check("s", {}) is None
        with pytest.raises(FaultInjected):
            plan.check("s", {"shard": 2})

    def test_token_file_is_a_cross_call_once_latch(self, tmp_path):
        token = tmp_path / "latch"
        plan = FaultPlan([FaultSpec(site="s", kind="raise", every=1,
                                    token=str(token))])
        with pytest.raises(FaultInjected):
            plan.check("s", {})
        assert token.exists()
        # Eligible again, but the latch is already claimed: no fire — the
        # mechanism that kills exactly one worker across re-forked pools.
        assert plan.check("s", {}) is None

    def test_reset_hits_restarts_the_counters(self):
        with faults.plan_scope([FaultSpec(site="s", kind="raise", at_hit=2)]):
            assert faults.check("s") is None
            with pytest.raises(FaultInjected):
                faults.check("s")
            faults.reset_hits()
            assert faults.check("s") is None
            with pytest.raises(FaultInjected):
                faults.check("s")


class TestModuleState:
    def test_check_is_noop_without_a_plan(self):
        assert faults.check("anything", shard=1) is None
        assert not faults.armed("anything")

    def test_plan_scope_restores_the_previous_plan(self):
        outer = faults.install_plan(
            FaultPlan([FaultSpec(site="outer", kind="raise")]))
        with faults.plan_scope([FaultSpec(site="inner", kind="raise")]):
            assert faults.armed("inner")
            assert not faults.armed("outer")
        assert faults.current_plan() is outer
        assert faults.armed("outer")

    def test_armed_filters_by_kind(self):
        with faults.plan_scope([FaultSpec(site="s", kind="delay")]):
            assert faults.armed("s")
            assert faults.armed("s", kind="delay")
            assert not faults.armed("s", kind="kill")

    def test_env_plan_json_arms_without_install(self, monkeypatch):
        specs = [FaultSpec(site="serve.score", kind="raise").as_dict()]
        monkeypatch.setenv(faults.FAULT_PLAN_ENV, json.dumps(specs))
        assert faults.armed("serve.score", kind="raise")
        with pytest.raises(FaultInjected):
            faults.check("serve.score")

    def test_legacy_crash_env_translates_to_a_kill_spec(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE_CRASH_POINT", "after_commit")
        monkeypatch.setenv("REPRO_STORAGE_CRASH_HITS", "7")
        plan = faults.current_plan()
        assert plan is not None
        (spec,) = plan.specs_for("storage.after_commit")
        assert spec.kind == "kill"
        assert spec.at_hit == 7

    def test_sites_catalog_covers_the_storage_crash_points(self):
        from repro.storage.crashpoints import CRASH_POINTS
        for point in CRASH_POINTS:
            assert f"storage.{point}" in faults.SITES
