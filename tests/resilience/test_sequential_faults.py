"""The sequential (no-fork) sharded path honors the same retry semantics.

``workers=1`` runs the exact same :class:`TaskExecutor` accounting inline,
so platforms without ``fork`` keep the full retry / fallback / FaultReport
contract — only per-attempt deadlines (a pooled-only knob) are absent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaMELHybrid
from repro.infer import BatchedPredictor
from repro.pipeline import ShardConfig, ShardedPipeline
from repro.resilience import faults
from repro.resilience.faults import FaultInjected, FaultSpec
from repro.resilience.retry import RetryPolicy


@pytest.fixture(scope="module")
def predictor(music_scenario, fast_config):
    trainer = AdaMELHybrid(fast_config)
    trainer.fit(music_scenario)
    return BatchedPredictor.from_trainer(trainer)


@pytest.fixture(autouse=True)
def clean_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


def _pair_keys(result):
    return [(pair.left.record_id, pair.right.record_id)
            for pair in result.scored.pairs]


def _run(predictor, records, **config):
    config.setdefault("workers", 1)
    config.setdefault("num_shards", 2)
    return ShardedPipeline(
        predictor, shards=ShardConfig(**config)).run(list(records))


class TestSequentialFaultParity:
    def test_one_raise_per_phase_is_retried_to_parity(
            self, predictor, tiny_music_corpus):
        records = list(tiny_music_corpus.records)
        baseline = _run(predictor, records)
        specs = [
            FaultSpec(site="sharded.sketch", kind="raise"),  # first hit only
            FaultSpec(site="sharded.score", kind="raise"),
        ]
        with faults.plan_scope(specs):
            faulty = _run(predictor, records)
        assert _pair_keys(faulty) == _pair_keys(baseline)
        assert np.array_equal(faulty.scored.scores, baseline.scored.scores)
        assert faulty.clusters.clusters == baseline.clusters.clusters
        report = faulty.shard_report.fault_report
        assert not faulty.shard_report.used_processes
        assert report.retries == 2
        assert report.fallbacks == 0
        assert report.wall_seconds_lost > 0.0

    def test_partial_answers_are_failures_inline_too(
            self, predictor, tiny_music_corpus):
        records = list(tiny_music_corpus.records)
        baseline = _run(predictor, records)
        specs = [FaultSpec(site="sharded.sketch", kind="partial"),
                 FaultSpec(site="sharded.score", kind="partial")]
        with faults.plan_scope(specs):
            faulty = _run(predictor, records)
        assert _pair_keys(faulty) == _pair_keys(baseline)
        report = faulty.shard_report.fault_report
        assert report.partial_results == 2
        assert report.retries == 2

    def test_exhausted_task_falls_back_and_quarantines_its_label(
            self, predictor, tiny_music_corpus):
        records = list(tiny_music_corpus.records)
        baseline = _run(predictor, records)
        retry = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0,
                            jitter=0.0)
        # Fails both regular attempts of the first sketch task; the
        # in-process fallback (the 3rd call) succeeds.
        specs = [FaultSpec(site="sharded.sketch", kind="raise", every=1,
                           max_triggers=2)]
        with faults.plan_scope(specs):
            faulty = _run(predictor, records, retry=retry)
        assert _pair_keys(faulty) == _pair_keys(baseline)
        report = faulty.shard_report.fault_report
        assert report.fallbacks == 1
        assert len(report.quarantined) == 1
        assert report.quarantined[0].startswith("sketch-")

    def test_persistent_fault_without_fallback_surfaces_the_error(
            self, predictor, tiny_music_corpus):
        retry = RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0,
                            jitter=0.0, fallback_in_process=False)
        specs = [FaultSpec(site="sharded.score", kind="raise", every=1)]
        with faults.plan_scope(specs):
            with pytest.raises(FaultInjected):
                _run(predictor, tiny_music_corpus.records, retry=retry)

    def test_shard_config_serializes_its_retry_policy(self):
        retry = RetryPolicy(max_attempts=5, task_timeout=2.0)
        payload = ShardConfig(workers=1, retry=retry).as_dict()
        assert payload["retry"] == retry.as_dict()
        assert RetryPolicy.from_dict(payload["retry"]) == retry
