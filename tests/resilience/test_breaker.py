"""CircuitBreaker state machine under a fake clock."""

from __future__ import annotations

import pytest

from repro.resilience.breaker import BREAKER_STATES, CircuitBreaker, CircuitOpen


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, recovery_seconds=10.0,
                          clock=clock)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0}, {"recovery_seconds": -1.0},
        {"half_open_probes": 0},
    ])
    def test_rejects_invalid_knobs(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)

    def test_circuit_open_is_a_runtime_error(self):
        assert issubclass(CircuitOpen, RuntimeError)
        assert BREAKER_STATES == ("closed", "half_open", "open")


class TestStateMachine:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_needs_consecutive_failures_to_trip(self, breaker):
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()  # resets the streak
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_open_flips_to_half_open_after_recovery(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(9.9)
        assert breaker.state == "open"
        clock.advance(0.2)
        assert breaker.state == "half_open"

    def test_half_open_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()  # the probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens_for_a_full_window(
            self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.9)
        assert breaker.state == "open"
        clock.advance(0.2)
        assert breaker.state == "half_open"

    def test_half_open_limits_concurrent_probes(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, recovery_seconds=1.0,
                                 half_open_probes=2, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # probe slots exhausted
        breaker.record_success()
        assert breaker.state == "closed"


class TestOverrides:
    def test_force_open_and_reset(self, breaker):
        breaker.force_open()
        assert breaker.state == "open"
        assert not breaker.allow()
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_stats_reports_counters_and_time_open(self, breaker, clock):
        breaker.record_success()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.0)
        stats = breaker.stats()
        assert stats["state"] == "open"
        assert stats["successes"] == 1
        assert stats["failures"] == 3
        assert stats["opens"] == 1
        assert stats["seconds_open"] == pytest.approx(4.0)
        assert stats["consecutive_failures"] == 3

    def test_on_transition_listener_sees_request_driven_flips(self, clock):
        flips = []
        breaker = CircuitBreaker(failure_threshold=1, recovery_seconds=1.0,
                                 clock=clock,
                                 on_transition=lambda a, b: flips.append((a, b)))
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert flips == [("closed", "open"), ("half_open", "closed")]
