"""Coalescer failure modes: wedged-executor shutdown, executor crash restart."""

from __future__ import annotations

import threading

import pytest

from repro.serve.coalescer import CoalescerClosed, RequestCoalescer


class TestStopWithWedgedExecutor:
    def test_stop_timeout_fails_queued_requests_promptly(self):
        gate = threading.Event()
        entered = threading.Event()

        def slow_score(pairs):
            entered.set()
            gate.wait(30.0)
            return [0.5] * len(pairs)

        coalescer = RequestCoalescer(slow_score, max_batch_size=2,
                                     max_wait_ms=1.0, max_queue_size=100)
        coalescer.start()
        try:
            in_flight = coalescer.submit([("a", "b")], max_wait=0.0)
            assert entered.wait(5.0)  # the executor is now inside score_fn
            queued = coalescer.submit([("c", "d")])
            with pytest.raises(TimeoutError):
                coalescer.stop(timeout=0.2)
            # The queued request fails promptly — its client must not sit
            # out a full result timeout to learn the executor is wedged.
            with pytest.raises(CoalescerClosed):
                queued.result(timeout=1.0)
            # The in-flight batch still belongs to the executor: once the
            # scorer returns, its client gets real scores.
            gate.set()
            assert list(in_flight.result(timeout=5.0)) == [0.5]
        finally:
            gate.set()
            coalescer.stop()  # executor drained; this join succeeds

    def test_submit_after_failed_stop_is_refused(self):
        gate = threading.Event()

        def slow_score(pairs):
            gate.wait(30.0)
            return [0.5] * len(pairs)

        coalescer = RequestCoalescer(slow_score, max_wait_ms=0.0)
        coalescer.start()
        try:
            coalescer.submit([("a", "b")])
            with pytest.raises(TimeoutError):
                coalescer.stop(timeout=0.1)
            with pytest.raises(CoalescerClosed):
                coalescer.submit([("c", "d")])
        finally:
            gate.set()
            coalescer.stop()


class TestExecutorCrashRestart:
    def test_crash_fails_its_batch_and_respawns_the_executor(self):
        coalescer = RequestCoalescer(lambda pairs: [0.5] * len(pairs),
                                     max_batch_size=4, max_wait_ms=1.0)
        with coalescer:
            boom = RuntimeError("machinery bug")

            def crashing(batch, cause):
                raise boom

            coalescer._execute = crashing  # instance override, class intact
            pending = coalescer.submit([("a", "b")], max_wait=0.0)
            with pytest.raises(CoalescerClosed) as excinfo:
                pending.result(timeout=5.0)
            assert excinfo.value.__cause__ is boom
            del coalescer._execute
            # The replacement executor serves new traffic transparently.
            assert list(coalescer.score([("c", "d")], timeout=5.0)) == [0.5]
            assert coalescer.stats()["executor_restarts"] == 1.0

    def test_score_fn_errors_do_not_count_as_crashes(self):
        def failing(pairs):
            raise ValueError("model rejected the batch")

        coalescer = RequestCoalescer(failing, max_wait_ms=0.0)
        with coalescer:
            with pytest.raises(ValueError, match="rejected"):
                coalescer.score([("a", "b")], timeout=5.0)
            # Per-batch score errors are absorbed by _execute; the executor
            # thread survives without a restart.
            assert coalescer.stats()["executor_restarts"] == 0.0
            with pytest.raises(ValueError, match="rejected"):
                coalescer.score([("c", "d")], timeout=5.0)
