"""Graceful degradation in serving: breaker, degraded queries, deadlines."""

from __future__ import annotations

import pytest

from repro.core import AdaMELHybrid
from repro.data.records import Record
from repro.infer import BatchedPredictor
from repro.resilience import faults
from repro.resilience.breaker import CircuitBreaker, CircuitOpen
from repro.resilience.faults import FaultSpec
from repro.serve import LinkageService, ServiceConfig


@pytest.fixture(scope="module")
def predictor(music_scenario, fast_config):
    trainer = AdaMELHybrid(fast_config)
    trainer.fit(music_scenario)
    return BatchedPredictor.from_trainer(trainer)


@pytest.fixture(autouse=True)
def clean_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


@pytest.fixture()
def service(predictor):
    config = ServiceConfig(max_batch_size=16, max_wait_ms=2.0, top_k=3,
                           breaker_failure_threshold=3,
                           breaker_recovery_seconds=60.0)
    with LinkageService(predictor, service_config=config) as running:
        yield running


def _probe(record, record_id="probe#degraded"):
    """A near-duplicate that shares the stored record's blocking buckets,
    forcing the query through the scoring path."""
    return Record(record_id=record_id, source="unseen-source",
                  attributes=dict(record.attributes))


class TestDegradedQueries:
    def test_scoring_faults_degrade_queries_without_errors(
            self, service, tiny_music_corpus):
        records = tiny_music_corpus.records
        for record in records[:5]:
            service.upsert(record)
        probe = _probe(records[0])
        healthy = service.query(probe)
        assert not healthy.degraded
        with faults.plan_scope([FaultSpec(site="serve.score", kind="raise",
                                          every=1)]):
            # Three consecutive scoring failures trip the breaker; every
            # query still answers (degraded), none errors.
            results = [service.query(probe) for _ in range(3)]
            assert all(result.degraded for result in results)
            assert service.breaker.state == "open"
            # With the breaker open the scorer is no longer even consulted:
            # queries short-circuit straight to the index-only path.
            open_result = service.query(probe)
        assert open_result.degraded
        assert open_result.matches  # availability: an answer, not an error
        report = service.health()
        assert report["status"] == "breached"
        assert report["resilience"]["breaker"]["state"] == "open"
        assert report["resilience"]["degraded_queries"] == 4
        assert service.stats()["service"]["degraded_queries"] == 4.0
        # Zero errored requests: degraded answers count as served, so the
        # error-rate window records every request as good.
        by_name = {o["name"]: o for o in report["objectives"]}
        errors = by_name["serve_error_rate"]["windows"]["600s"]
        assert errors["total"] == errors["good"] > 0

    def test_degraded_answers_are_a_subset_of_healthy_candidates(
            self, service, tiny_music_corpus):
        records = tiny_music_corpus.records
        for record in records[:8]:
            service.upsert(record)
        probe = _probe(records[0])
        healthy = service.query(probe, top_k=100)
        with faults.plan_scope([FaultSpec(site="serve.score", kind="raise",
                                          every=1)]):
            degraded = service.query(probe, top_k=100)
        assert degraded.degraded
        healthy_entities = {match.entity_id for match in healthy.matches}
        degraded_entities = {match.entity_id for match in degraded.matches}
        # Same probe, same filters — degraded ranking never invents
        # candidates the scored path would not have considered.
        assert degraded_entities <= healthy_entities
        assert healthy.best.entity_id == degraded.best.entity_id
        # Degraded scores are collision counts (evidence strength), >= 1.
        assert all(match.score >= 1.0 for match in degraded.matches)

    def test_upserts_fail_fast_while_the_breaker_is_open(
            self, service, tiny_music_corpus):
        records = tiny_music_corpus.records
        service.upsert(records[0])
        service.breaker.force_open()
        with pytest.raises(CircuitOpen):
            service.upsert(_probe(records[0], "probe#upsert"))
        # Queries keep answering while upserts are refused.
        assert service.query(_probe(records[0])).degraded

    def test_breaker_recovers_through_a_half_open_probe(
            self, predictor, tiny_music_corpus):
        clock = [0.0]
        config = ServiceConfig(max_batch_size=16, max_wait_ms=2.0,
                               breaker_failure_threshold=1)
        with LinkageService(predictor, service_config=config) as service:
            service.breaker = CircuitBreaker(failure_threshold=1,
                                             recovery_seconds=5.0,
                                             clock=lambda: clock[0])
            service.store.bind_score_fn(service._score,
                                        upsert_score_fn=service._score_upsert)
            records = tiny_music_corpus.records
            for record in records[:3]:
                service.upsert(record)
            probe = _probe(records[0])
            with faults.plan_scope([FaultSpec(site="serve.score",
                                              kind="raise", max_triggers=1)]):
                assert service.query(probe).degraded
                assert service.breaker.state == "open"
                # Before the recovery window: still open, still degraded.
                assert service.query(probe).degraded
                clock[0] += 5.0
                # The half-open probe scores for real (fault exhausted),
                # closing the breaker: full answers resume.
                recovered = service.query(probe)
            assert not recovered.degraded
            assert service.breaker.state == "closed"


class TestDeadlinePropagation:
    def test_exhausted_query_deadline_degrades_instead_of_stalling(
            self, service, tiny_music_corpus):
        records = tiny_music_corpus.records
        for record in records[:3]:
            service.upsert(record)
        result = service.query(_probe(records[0]), timeout=0.0)
        assert result.degraded
        assert result.matches

    def test_exhausted_upsert_deadline_raises_timeout(
            self, service, tiny_music_corpus):
        records = tiny_music_corpus.records
        service.upsert(records[0])
        with pytest.raises(TimeoutError):
            service.upsert(_probe(records[0], "probe#deadline"), timeout=0.0)

    def test_generous_deadlines_do_not_change_answers(
            self, service, tiny_music_corpus):
        records = tiny_music_corpus.records
        for record in records[:3]:
            service.upsert(record)
        probe = _probe(records[0])
        unbounded = service.query(probe)
        bounded = service.query(probe, timeout=30.0)
        assert not bounded.degraded
        assert [match.entity_id for match in bounded.matches] == \
            [match.entity_id for match in unbounded.matches]
