"""Chaos parity: the forked sharded pipeline under injected faults.

The acceptance bar for ``repro.resilience``: kill one worker in each
phase and delay a fraction of scoring batches, and the run must still be
bit-identical to a fault-free one — retries re-execute deterministic
tasks, so absorbed faults cost wall-clock, never output.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaMELHybrid
from repro.infer import BatchedPredictor
from repro.pipeline import ShardConfig, ShardedPipeline
from repro.resilience import faults
from repro.resilience.faults import FaultSpec

pytestmark = pytest.mark.skipif(not ShardedPipeline.fork_available(),
                                reason="fork start method unavailable")


@pytest.fixture(scope="module")
def predictor(music_scenario, fast_config):
    trainer = AdaMELHybrid(fast_config)
    trainer.fit(music_scenario)
    return BatchedPredictor.from_trainer(trainer)


@pytest.fixture(autouse=True)
def clean_plan():
    faults.clear_plan()
    yield
    faults.clear_plan()


def _pair_keys(result):
    return [(pair.left.record_id, pair.right.record_id)
            for pair in result.scored.pairs]


def _assert_bit_identical(chaotic, baseline):
    assert _pair_keys(chaotic) == _pair_keys(baseline)
    assert np.array_equal(chaotic.scored.scores, baseline.scored.scores)
    assert chaotic.clusters.clusters == baseline.clusters.clusters
    assert chaotic.clusters.assignments == baseline.clusters.assignments
    assert chaotic.index_stats == baseline.index_stats


class TestForkedChaosParity:
    def test_fault_free_run_reports_a_clean_fault_report(
            self, predictor, tiny_music_corpus):
        result = ShardedPipeline(
            predictor, shards=ShardConfig(workers=2)).run(
            list(tiny_music_corpus.records))
        report = result.shard_report.fault_report
        assert report.attempts > 0
        assert report.faults_absorbed == 0
        assert report.worker_deaths == 0
        assert report.quarantined == []
        assert result.shard_report.as_dict()["faults"]["retries"] == 0

    def test_one_kill_per_phase_plus_scoring_delays_is_bit_identical(
            self, predictor, tiny_music_corpus, tmp_path):
        records = list(tiny_music_corpus.records)
        baseline = ShardedPipeline(
            predictor, shards=ShardConfig(workers=2)).run(list(records))
        specs = [
            # Kill exactly one worker in each phase (the token latch keeps
            # rebuilt pools — which fork fresh hit counters — from dying too).
            FaultSpec(site="sharded.sketch", kind="kill", every=1,
                      scope="worker", token=str(tmp_path / "kill-sketch")),
            FaultSpec(site="sharded.score", kind="kill", every=1,
                      scope="worker", token=str(tmp_path / "kill-score")),
            # ... and stall every 10th scoring micro-batch.
            FaultSpec(site="scoring.batch", kind="delay", every=10,
                      delay_seconds=0.002, scope="worker"),
        ]
        with faults.plan_scope(specs):
            chaotic = ShardedPipeline(
                predictor, shards=ShardConfig(workers=2)).run(list(records))
        _assert_bit_identical(chaotic, baseline)
        report = chaotic.shard_report.fault_report
        assert report.worker_deaths >= 2  # one per phase
        assert report.retries >= 2
        assert report.wall_seconds_lost > 0.0

    def test_raised_worker_errors_are_retried_to_parity(
            self, predictor, tiny_music_corpus, tmp_path):
        records = list(tiny_music_corpus.records)
        baseline = ShardedPipeline(
            predictor, shards=ShardConfig(workers=2)).run(list(records))
        specs = [
            FaultSpec(site="sharded.score", kind="raise", every=1,
                      scope="worker", token=str(tmp_path / "raise-once")),
        ]
        with faults.plan_scope(specs):
            chaotic = ShardedPipeline(
                predictor, shards=ShardConfig(workers=2)).run(list(records))
        _assert_bit_identical(chaotic, baseline)
        report = chaotic.shard_report.fault_report
        assert report.retries >= 1
        assert report.worker_deaths == 0  # an exception is not a death

    def test_partial_worker_answers_are_treated_as_failures(
            self, predictor, tiny_music_corpus, tmp_path):
        records = list(tiny_music_corpus.records)
        baseline = ShardedPipeline(
            predictor, shards=ShardConfig(workers=2)).run(list(records))
        specs = [
            FaultSpec(site="sharded.sketch", kind="partial", every=1,
                      scope="worker", token=str(tmp_path / "partial-once")),
        ]
        with faults.plan_scope(specs):
            chaotic = ShardedPipeline(
                predictor, shards=ShardConfig(workers=2)).run(list(records))
        _assert_bit_identical(chaotic, baseline)
        report = chaotic.shard_report.fault_report
        assert report.partial_results >= 1
        assert report.retries >= 1
