"""Tests for records, entity pairs, schemas and ontology alignment."""

import pytest

from repro.data import EntityPair, Record, Schema, align_ontology, align_pairs, union_schema


@pytest.fixture
def record_a():
    return Record(record_id="r1", source="site_a",
                  attributes={"title": "Sweet Caroline", "artist": "Neil Diamond"},
                  entity_id="e1", entity_type="track")


@pytest.fixture
def record_b():
    return Record(record_id="r2", source="site_b",
                  attributes={"title": "Sweet Caroline", "gender": "male"},
                  entity_id="e1", entity_type="track")


class TestRecord:
    def test_value_and_missing(self, record_a):
        assert record_a.value("title") == "Sweet Caroline"
        assert record_a.value("nonexistent") == ""
        assert record_a.has_value("artist")
        assert not record_a.has_value("nonexistent")

    def test_missing_attributes(self, record_a):
        assert record_a.missing_attributes(["title", "gender"]) == ["gender"]

    def test_with_attributes_copy(self, record_a):
        updated = record_a.with_attributes({"title": "Hello"})
        assert updated.value("title") == "Hello"
        assert record_a.value("title") == "Sweet Caroline"
        assert updated.entity_id == record_a.entity_id

    def test_dict_roundtrip(self, record_a):
        assert Record.from_dict(record_a.to_dict()) == record_a


class TestEntityPair:
    def test_label_validation(self, record_a, record_b):
        with pytest.raises(ValueError):
            EntityPair(left=record_a, right=record_b, label=2)

    def test_pair_id_generated(self, record_a, record_b):
        pair = EntityPair(left=record_a, right=record_b, label=1)
        assert pair.pair_id == "r1|r2"

    def test_sources_and_source_set(self, record_a, record_b):
        pair = EntityPair(left=record_a, right=record_b, label=1)
        assert pair.sources == ("site_a", "site_b")
        assert pair.source_set() == frozenset({"site_a", "site_b"})

    def test_both_present(self, record_a, record_b):
        pair = EntityPair(left=record_a, right=record_b, label=1)
        assert pair.both_present("title")
        assert not pair.both_present("artist")

    def test_unlabeled_view(self, record_a, record_b):
        pair = EntityPair(left=record_a, right=record_b, label=1)
        assert pair.unlabeled().label is None
        assert pair.label == 1

    def test_dict_roundtrip(self, record_a, record_b):
        pair = EntityPair(left=record_a, right=record_b, label=0)
        assert EntityPair.from_dict(pair.to_dict()) == pair


class TestSchema:
    def test_unique_attributes_enforced(self):
        with pytest.raises(ValueError):
            Schema(("a", "a"))

    def test_union_preserves_order(self):
        merged = Schema(("a", "b")).union(Schema(("b", "c")))
        assert tuple(merged) == ("a", "b", "c")

    def test_from_records(self, record_a, record_b):
        schema = Schema.from_records([record_a, record_b])
        assert set(schema) == {"title", "artist", "gender"}

    def test_union_schema_multiple(self):
        merged = union_schema(Schema(("a",)), Schema(("b",)), Schema(("a", "c")))
        assert tuple(merged) == ("a", "b", "c")

    def test_union_schema_empty_raises(self):
        with pytest.raises(ValueError):
            union_schema()

    def test_index_and_contains(self):
        schema = Schema(("x", "y"))
        assert "x" in schema and schema.index("y") == 1


class TestOntologyAlignment:
    def test_align_pairs_adds_dummy_attributes(self, record_a, record_b):
        pair = EntityPair(left=record_a, right=record_b, label=1)
        schema = Schema(("title", "artist", "gender", "country"))
        aligned = align_pairs([pair], schema)[0]
        assert set(aligned.left.attribute_names()) == set(schema)
        assert aligned.left.value("country") == ""
        assert aligned.right.value("artist") == ""
        assert aligned.label == 1

    def test_align_ontology_union(self, record_a, record_b):
        source_pair = EntityPair(left=record_a, right=record_a, label=1)
        target_pair = EntityPair(left=record_b, right=record_b, label=None)
        schema, aligned_source, aligned_target = align_ontology([source_pair], [target_pair])
        assert set(schema) == {"title", "artist", "gender"}
        assert set(aligned_source[0].left.attribute_names()) == set(schema)
        assert set(aligned_target[0].left.attribute_names()) == set(schema)
