"""Tests for domains, scenarios, sampling, splits, blocking and storage."""

import numpy as np
import pytest

from repro.data import (
    BatchSampler,
    CandidateGenerator,
    EntityPair,
    MELScenario,
    PairCollection,
    Record,
    SourceDomain,
    SupportSet,
    TargetDomain,
    TokenBlocker,
    read_pair_labels_csv,
    read_pairs_jsonl,
    read_records_csv,
    sample_balanced,
    sample_support_set,
    split_by_sources,
    stratified_split,
    train_test_split,
    write_pair_labels_csv,
    write_pairs_jsonl,
    write_records_csv,
)


def _make_pair(i: int, label, source_left="s1", source_right="s2") -> EntityPair:
    left = Record(record_id=f"l{i}", source=source_left,
                  attributes={"title": f"song {i}", "artist": "Neil Diamond"}, entity_id=f"e{i}")
    right = Record(record_id=f"r{i}", source=source_right,
                   attributes={"title": f"song {i}", "artist": "N. D."}, entity_id=f"e{i}")
    return EntityPair(left=left, right=right, label=label)


@pytest.fixture
def labeled_pairs():
    return [_make_pair(i, label=i % 2) for i in range(20)]


class TestPairCollections:
    def test_positive_rate(self, labeled_pairs):
        collection = PairCollection(labeled_pairs)
        assert collection.positive_rate() == pytest.approx(0.5)

    def test_source_domain_requires_labels(self, labeled_pairs):
        with pytest.raises(ValueError):
            SourceDomain(labeled_pairs + [_make_pair(99, None)])

    def test_target_domain_strips_labels(self, labeled_pairs):
        target = TargetDomain(labeled_pairs)
        assert all(pair.label is None for pair in target)

    def test_support_set_requires_labels(self):
        with pytest.raises(ValueError):
            SupportSet([_make_pair(0, None)])

    def test_filter_sources_modes(self, labeled_pairs):
        mixed = labeled_pairs + [_make_pair(100, 1, "s3", "s4")]
        collection = PairCollection(mixed)
        assert len(collection.filter_sources(["s3"], mode="any")) == 1
        assert len(collection.filter_sources(["s1", "s2"], mode="all")) == 20

    def test_summary_keys(self, labeled_pairs):
        summary = PairCollection(labeled_pairs).summary()
        assert {"num_pairs", "positive_rate", "num_sources"} <= set(summary)


class TestMELScenario:
    def test_scenario_sources(self, music_scenario):
        assert music_scenario.seen_sources == frozenset({"website_1", "website_2", "website_3"})
        assert music_scenario.unseen_sources
        assert music_scenario.unseen_sources.isdisjoint(music_scenario.seen_sources)

    def test_scenario_alignment(self, music_scenario):
        schema = music_scenario.aligned_schema()
        for pair in list(music_scenario.source)[:5]:
            assert set(pair.left.attribute_names()) == set(schema)

    def test_scenario_requires_source_and_test(self, labeled_pairs):
        with pytest.raises(ValueError):
            MELScenario(source=SourceDomain(labeled_pairs), target=TargetDomain(labeled_pairs),
                        test=PairCollection([]))

    def test_target_domain_unlabeled_in_scenario(self, music_scenario):
        assert all(pair.label is None for pair in music_scenario.target)

    def test_summary(self, music_scenario):
        summary = music_scenario.summary()
        assert summary["train"] == len(music_scenario.source)
        assert summary["test"] == len(music_scenario.test)


class TestSampling:
    def test_batch_sampler_covers_everything(self):
        sampler = BatchSampler(23, batch_size=5, seed=1)
        seen = np.concatenate(list(sampler))
        assert sorted(seen.tolist()) == list(range(23))
        assert len(sampler) == 5

    def test_batch_sampler_drop_last(self):
        sampler = BatchSampler(23, batch_size=5, drop_last=True, seed=1)
        assert all(len(batch) == 5 for batch in sampler)
        assert len(sampler) == 4

    def test_batch_sampler_deterministic_given_seed(self):
        batches_a = [b.tolist() for b in BatchSampler(10, 3, seed=7)]
        batches_b = [b.tolist() for b in BatchSampler(10, 3, seed=7)]
        assert batches_a == batches_b

    def test_batch_sampler_reshuffles_each_epoch(self):
        sampler = BatchSampler(50, batch_size=50, seed=3)
        epoch0 = next(iter(sampler)).tolist()
        epoch1 = next(iter(sampler)).tolist()
        assert sorted(epoch0) == sorted(epoch1) == list(range(50))
        assert epoch0 != epoch1

    def test_batch_sampler_epochs_deterministic_per_index(self):
        """Regression: epoch-k order depends only on (seed, k), so two
        samplers sharing a seed stay in lockstep even when their iterations
        interleave (previously the mutated generator state made them diverge)."""
        a = BatchSampler(30, batch_size=7, seed=11)
        b = BatchSampler(30, batch_size=7, seed=11)
        # Advance `a` two epochs before `b` starts: epochs must still line up.
        a_epochs = [[batch.tolist() for batch in a] for _ in range(3)]
        b_epochs = [[batch.tolist() for batch in b] for _ in range(3)]
        assert a_epochs == b_epochs

    def test_batch_sampler_set_epoch_resumes(self):
        reference = BatchSampler(20, batch_size=6, seed=5)
        epochs = [[batch.tolist() for batch in reference] for _ in range(3)]
        resumed = BatchSampler(20, batch_size=6, seed=5).set_epoch(2)
        assert [batch.tolist() for batch in resumed] == epochs[2]

    def test_batch_sampler_first_epoch_matches_legacy_order(self):
        """The first pass must reproduce the historical single-pass shuffle
        (a fresh generator seeded directly), keeping training traces stable."""
        legacy_rng = np.random.default_rng(9)
        expected = np.arange(12)
        legacy_rng.shuffle(expected)
        sampler = BatchSampler(12, batch_size=12, seed=9)
        assert next(iter(sampler)).tolist() == expected.tolist()

    def test_batch_sampler_accepts_external_generator(self):
        sampler = BatchSampler(15, batch_size=4, seed=np.random.default_rng(21))
        seen = np.concatenate(list(sampler))
        assert sorted(seen.tolist()) == list(range(15))

    def test_sample_balanced_counts(self, labeled_pairs):
        sampled = sample_balanced(labeled_pairs, num_positive=3, num_negative=3, seed=0)
        labels = [pair.label for pair in sampled]
        assert labels.count(1) == 3 and labels.count(0) == 3

    def test_sample_support_set_size_and_balance(self, labeled_pairs):
        support = sample_support_set(labeled_pairs, size=10, seed=0)
        assert len(support) == 10
        labels = [pair.label for pair in support]
        assert abs(labels.count(1) - labels.count(0)) <= 2

    def test_sample_support_set_empty_inputs(self):
        assert sample_support_set([], size=10) == []
        assert sample_support_set([_make_pair(0, 1)], size=0) == []


class TestSplits:
    def test_train_test_split_sizes(self, labeled_pairs):
        train, test = train_test_split(labeled_pairs, test_fraction=0.25, seed=0)
        assert len(train) + len(test) == len(labeled_pairs)
        assert len(test) == 5

    def test_stratified_split_preserves_ratio(self, labeled_pairs):
        train, test = stratified_split(labeled_pairs, test_fraction=0.3, seed=0)
        train_rate = np.mean([pair.label for pair in train])
        assert train_rate == pytest.approx(0.5, abs=0.1)

    def test_split_by_sources(self, labeled_pairs):
        mixed = labeled_pairs + [_make_pair(50, 1, "s1", "s9")]
        seen_only, touching_unseen = split_by_sources(mixed, ["s1", "s2"])
        assert len(seen_only) == 20
        assert len(touching_unseen) == 1

    def test_invalid_fraction(self, labeled_pairs):
        with pytest.raises(ValueError):
            train_test_split(labeled_pairs, test_fraction=1.5)


class TestBlocking:
    def test_token_blocker_groups_shared_tokens(self, tiny_music_corpus):
        blocker = TokenBlocker("name")
        blocks = blocker.blocks(tiny_music_corpus.records[:40])
        assert blocks
        assert all(len(records) >= 1 for records in blocks.values())

    def test_candidate_generator_recall(self, tiny_music_corpus):
        generator = CandidateGenerator([TokenBlocker("name"), TokenBlocker("main_performer")])
        recall = generator.recall(tiny_music_corpus.records)
        assert recall > 0.5

    def test_candidate_generator_cross_source_only(self, tiny_music_corpus):
        generator = CandidateGenerator([TokenBlocker("name")], cross_source_only=True)
        candidates = generator.generate(tiny_music_corpus.records[:60])
        assert all(pair.left.source != pair.right.source for pair in candidates)

    def test_candidate_generator_requires_blockers(self):
        with pytest.raises(ValueError):
            CandidateGenerator([])


class TestStorage:
    def test_records_csv_roundtrip(self, tmp_path, tiny_music_corpus):
        records = tiny_music_corpus.records[:10]
        path = write_records_csv(records, tmp_path / "records.csv")
        loaded = read_records_csv(path)
        assert loaded == records

    def test_pairs_jsonl_roundtrip(self, tmp_path, tiny_music_corpus):
        pairs = tiny_music_corpus.pairs[:10]
        path = write_pairs_jsonl(pairs, tmp_path / "pairs.jsonl")
        loaded = read_pairs_jsonl(path)
        assert loaded == pairs

    def test_pair_labels_csv_roundtrip(self, tmp_path, tiny_music_corpus):
        pairs = tiny_music_corpus.pairs[:10]
        records = tiny_music_corpus.records
        path = write_pair_labels_csv(pairs, tmp_path / "labels.csv")
        loaded = read_pair_labels_csv(path, records)
        assert [(p.left.record_id, p.right.record_id, p.label) for p in loaded] == \
               [(p.left.record_id, p.right.record_id, p.label) for p in pairs]

    def test_pair_labels_unknown_record(self, tmp_path, tiny_music_corpus):
        pairs = tiny_music_corpus.pairs[:3]
        path = write_pair_labels_csv(pairs, tmp_path / "labels.csv")
        with pytest.raises(KeyError):
            read_pair_labels_csv(path, records=[])

    def test_iter_records_csv_streams_lazily(self, tmp_path, tiny_music_corpus):
        from repro.data import iter_records_csv

        records = tiny_music_corpus.records[:10]
        path = write_records_csv(records, tmp_path / "records.csv")
        stream = iter_records_csv(path)
        assert iter(stream) is stream  # a generator, not a materialised list
        assert next(stream) == records[0]
        assert list(stream) == records[1:]

    def test_iter_pairs_jsonl_streams_lazily(self, tmp_path, tiny_music_corpus):
        from repro.data import iter_pairs_jsonl

        pairs = tiny_music_corpus.pairs[:10]
        path = write_pairs_jsonl(pairs, tmp_path / "pairs.jsonl")
        stream = iter_pairs_jsonl(path)
        assert iter(stream) is stream
        assert list(stream) == pairs
