"""Tests for the synthetic corpus generators (Music, Monitor, benchmarks)."""

import numpy as np
import pytest

from repro.data.generators import (
    BENCHMARK_PROFILES,
    MONITOR_SCHEMA,
    MONITOR_SEEN_SOURCES,
    MUSIC_SCHEMA,
    MUSIC_SEEN_SOURCES,
    MonitorCorpusGenerator,
    MonitorGeneratorConfig,
    MusicCorpusGenerator,
    MusicGeneratorConfig,
    SourceStyle,
    apply_style,
    load_benchmark,
)
from repro.data.generators.monitor import TARGET_ONLY_ATTRIBUTES
from repro.data.generators.names import abbreviate_name
from repro.data.generators.corruptions import drop_tokens, shuffle_tokens, typo


class TestCorruptions:
    def test_abbreviate_name(self):
        assert abbreviate_name("Neil Diamond") == "N. D."
        assert abbreviate_name("") == ""

    def test_apply_style_missing_attribute_unsupported(self):
        style = SourceStyle(source="s", supported_attributes=frozenset({"title"}))
        rng = np.random.default_rng(0)
        assert apply_style(style, "artist", "Neil Diamond", rng) == ""

    def test_apply_style_missing_rate_one(self):
        style = SourceStyle(source="s", missing_rates={"title": 1.0})
        rng = np.random.default_rng(0)
        assert apply_style(style, "title", "Hello", rng) == ""

    def test_apply_style_abbreviates(self):
        style = SourceStyle(source="s", abbreviate_attributes=frozenset({"artist"}),
                            abbreviate_probability=1.0, default_missing_rate=0.0)
        rng = np.random.default_rng(0)
        assert apply_style(style, "artist", "Neil Diamond", rng) == "N. D."

    def test_apply_style_casing_and_affixes(self):
        style = SourceStyle(source="s", uppercase=True, default_missing_rate=0.0,
                            prefix_tokens={"title": "buy"}, suffix_tokens={"title": "now"})
        rng = np.random.default_rng(0)
        assert apply_style(style, "title", "hello", rng) == "BUY HELLO NOW"

    def test_apply_style_vocabulary_override(self):
        style = SourceStyle(source="s", default_missing_rate=0.0,
                            vocabulary_overrides={"prod_type": {"led monitor": "gaming monitor"}})
        rng = np.random.default_rng(0)
        assert apply_style(style, "prod_type", "led monitor", rng) == "gaming monitor"

    def test_typo_drop_shuffle_keep_content(self):
        rng = np.random.default_rng(0)
        assert typo("ab", rng, rate=1.0) == "ab"  # too short to mutate
        assert drop_tokens("single", rng, rate=1.0) == "single"
        assert set(shuffle_tokens("a b c", rng, probability=1.0).split()) == {"a", "b", "c"}


class TestMusicGenerator:
    def test_corpus_structure(self, tiny_music_corpus):
        assert tiny_music_corpus.schema == MUSIC_SCHEMA
        assert set(tiny_music_corpus.sources) == set(f"website_{i}" for i in range(1, 8))
        assert len(tiny_music_corpus.records) > 0
        assert len(tiny_music_corpus.pairs) > 0

    def test_positive_pairs_cross_source_same_entity(self, tiny_music_corpus):
        for pair in tiny_music_corpus.pairs:
            if pair.label == 1:
                assert pair.left.entity_id == pair.right.entity_id
                assert pair.left.source != pair.right.source

    def test_negative_pairs_different_entities(self, tiny_music_corpus):
        for pair in tiny_music_corpus.pairs:
            if pair.label == 0:
                assert pair.left.entity_id != pair.right.entity_id

    def test_determinism(self):
        config = MusicGeneratorConfig(num_entities=10)
        corpus_a = MusicCorpusGenerator("artist", config, seed=3).generate()
        corpus_b = MusicCorpusGenerator("artist", config, seed=3).generate()
        assert [r.attributes for r in corpus_a.records] == [r.attributes for r in corpus_b.records]
        assert [p.label for p in corpus_a.pairs] == [p.label for p in corpus_b.pairs]

    def test_invalid_entity_type(self):
        with pytest.raises(ValueError):
            MusicCorpusGenerator("movie")

    def test_entity_types(self, tiny_track_corpus):
        assert all(record.entity_type == "track" for record in tiny_track_corpus.records)
        assert any("(" in record.value("title") for record in tiny_track_corpus.records
                   if record.value("title"))

    def test_unseen_sources_abbreviate_names(self):
        """Challenge C3: unseen sources abbreviate artist names much more often."""
        config = MusicGeneratorConfig(num_entities=60)
        corpus = MusicCorpusGenerator("artist", config, seed=2).generate()

        def abbreviation_rate(sources):
            values = [record.value("name") for record in corpus.records
                      if record.source in sources and record.value("name")]
            return np.mean(["." in value for value in values]) if values else 0.0

        seen_rate = abbreviation_rate(set(MUSIC_SEEN_SOURCES))
        unseen_rate = abbreviation_rate(set(corpus.sources) - set(MUSIC_SEEN_SOURCES))
        assert unseen_rate > seen_rate

    def test_gender_rare_in_seen_sources(self, tiny_music_corpus):
        """Challenge C2: `gender` is rarely populated on the seen websites."""
        seen_records = [record for record in tiny_music_corpus.records
                        if record.source in MUSIC_SEEN_SOURCES]
        rate = np.mean([record.has_value("gender") for record in seen_records])
        assert rate < 0.5

    def test_weak_labels_flip_some_pairs(self):
        config_clean = MusicGeneratorConfig(num_entities=40, weakly_labeled=False)
        config_weak = MusicGeneratorConfig(num_entities=40, weakly_labeled=True,
                                           label_noise_rate=0.3)
        clean = MusicCorpusGenerator("artist", config_clean, seed=5).generate()
        weak = MusicCorpusGenerator("artist", config_weak, seed=5).generate()
        clean_labels = {pair.pair_id: pair.label for pair in clean.pairs}
        flipped = sum(1 for pair in weak.pairs
                      if pair.pair_id in clean_labels and pair.label != clean_labels[pair.pair_id])
        assert flipped > 0

    def test_build_scenario_modes(self, tiny_music_corpus):
        overlapping = tiny_music_corpus.build_scenario(MUSIC_SEEN_SOURCES, mode="overlapping",
                                                       support_size=10, seed=1)
        disjoint = tiny_music_corpus.build_scenario(MUSIC_SEEN_SOURCES, mode="disjoint",
                                                    support_size=10, seed=1)
        seen = set(MUSIC_SEEN_SOURCES)
        assert all(pair.source_set() <= seen for pair in overlapping.source)
        assert all(pair.source_set() - seen for pair in overlapping.target)
        assert all(not (pair.source_set() & seen) for pair in disjoint.target)

    def test_build_scenario_invalid_inputs(self, tiny_music_corpus):
        with pytest.raises(ValueError):
            tiny_music_corpus.build_scenario(["nonexistent.com"])
        with pytest.raises(ValueError):
            tiny_music_corpus.build_scenario(MUSIC_SEEN_SOURCES, mode="sideways")


class TestMonitorGenerator:
    def test_schema_and_sources(self, tiny_monitor_corpus):
        assert tiny_monitor_corpus.schema == MONITOR_SCHEMA
        assert len(tiny_monitor_corpus.sources) == 10
        assert set(MONITOR_SEEN_SOURCES) <= set(tiny_monitor_corpus.sources)

    def test_imbalance(self, tiny_monitor_corpus):
        assert tiny_monitor_corpus.positive_rate() < 0.3

    def test_target_only_attributes_missing_in_seen(self, tiny_monitor_corpus):
        seen = set(MONITOR_SEEN_SOURCES)
        for record in tiny_monitor_corpus.records:
            if record.source in seen:
                for attribute in TARGET_ONLY_ATTRIBUTES:
                    assert not record.has_value(attribute)

    def test_page_title_mostly_present(self, tiny_monitor_corpus):
        rate = np.mean([record.has_value("page_title") for record in tiny_monitor_corpus.records])
        assert rate > 0.9

    def test_prod_type_vocabulary_shift(self, tiny_monitor_corpus):
        seen = set(MONITOR_SEEN_SOURCES)
        seen_values = {record.value("prod_type") for record in tiny_monitor_corpus.records
                       if record.source in seen and record.has_value("prod_type")}
        target_values = {record.value("prod_type") for record in tiny_monitor_corpus.records
                         if record.source not in seen and record.has_value("prod_type")}
        assert seen_values != target_values

    def test_invalid_num_sources(self):
        with pytest.raises(ValueError):
            MonitorCorpusGenerator(num_sources=2)


class TestBenchmarkGenerator:
    def test_profiles_cover_structured_and_dirty(self):
        variants = {profile.variant for profile in BENCHMARK_PROFILES.values()}
        assert variants == {"structured", "dirty"}

    def test_load_benchmark_two_sources(self):
        corpus = load_benchmark("beer", seed=1)
        assert len(corpus.sources) == 2
        assert len(corpus.pairs) > 0

    def test_dirty_variant_swaps_attribute_values(self):
        clean = load_benchmark("dblp-acm", seed=4)
        dirty = load_benchmark("dirty-dblp-acm", seed=4)
        assert clean.positive_rate() > 0
        assert dirty.positive_rate() > 0

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            load_benchmark("nonexistent-dataset")
