"""Tests for the blocking front end (caps, dedupe, reusable recall stats)."""

from __future__ import annotations

import pytest

from repro.data import (
    AttributeEqualityBlocker,
    BlockingStats,
    CandidateGenerator,
    CandidateSet,
    TokenBlocker,
)
from repro.data.records import EntityPair, Record


def _record(record_id, source, name, entity_id=None):
    return Record(record_id=record_id, source=source,
                  attributes={"name": name}, entity_id=entity_id)


class TestAttributeEqualityBlocker:
    def test_equal_values_pair_up(self):
        records = [_record("a", "s1", "Neil Diamond"),
                   _record("b", "s2", "neil  DIAMOND"),
                   _record("c", "s3", "Neil Young")]
        pairs = AttributeEqualityBlocker("name").candidate_pairs(records)
        assert [(left.record_id, right.record_id) for left, right in pairs] == [("a", "b")]

    def test_max_block_size_caps_giant_equality_blocks(self):
        # One degenerate value shared by everything must not emit O(n^2) pairs.
        records = [_record(f"r{i}", f"s{i}", "the same value") for i in range(40)]
        blocker = AttributeEqualityBlocker("name")
        assert blocker.candidate_pairs(records, max_block_size=10) == []
        assert len(blocker.candidate_pairs(records, max_block_size=64)) == 40 * 39 // 2

    def test_pairs_are_deduplicated_by_record_id(self):
        records = [_record("a", "s1", "same"), _record("b", "s2", "same"),
                   _record("a", "s1", "same")]
        pairs = AttributeEqualityBlocker("name").candidate_pairs(records)
        keys = [tuple(sorted((left.record_id, right.record_id))) for left, right in pairs]
        assert len(keys) == len(set(keys))


class TestTokenBlockerDelegation:
    def test_degenerate_max_block_size_returns_no_pairs(self):
        records = [_record("a", "s1", "shared token"), _record("b", "s2", "shared token")]
        assert TokenBlocker("name").candidate_pairs(records, max_block_size=1) == []

    def test_min_token_length_zero_still_works(self):
        # Seed behavior: 0 means "keep every token" (identical to 1).
        records = [_record("a", "s1", "x y"), _record("b", "s2", "x z")]
        pairs = TokenBlocker("name", min_token_length=0).candidate_pairs(records)
        assert [(left.record_id, right.record_id) for left, right in pairs] == [("a", "b")]

    def test_matches_block_semantics(self, tiny_music_corpus):
        records = tiny_music_corpus.records
        blocker = TokenBlocker("name")
        pairs = blocker.candidate_pairs(records, max_block_size=50)
        keys = {tuple(sorted((left.record_id, right.record_id))) for left, right in pairs}
        # Reference: enumerate blocks directly.
        expected = set()
        for block in blocker.blocks(records).values():
            if len(block) > 50:
                continue
            for i in range(len(block)):
                for j in range(i + 1, len(block)):
                    expected.add(tuple(sorted((block[i].record_id, block[j].record_id))))
        assert keys == expected


class TestCandidateGeneratorStats:
    @pytest.fixture()
    def generator(self):
        return CandidateGenerator([TokenBlocker("name")])

    @pytest.fixture()
    def records(self):
        return [
            _record("a1", "s1", "neil diamond", entity_id="e1"),
            _record("a2", "s2", "neil diamond", entity_id="e1"),
            _record("b1", "s1", "aretha franklin", entity_id="e2"),
            _record("b2", "s2", "aretha franklin", entity_id="e2"),
            _record("c1", "s1", "completely unrelated", entity_id="e3"),
            _record("c2", "s2", "something else", entity_id="e3"),
        ]

    def test_precomputed_candidates_avoid_regeneration(self, generator, records):
        candidates = generator.generate(records)
        stats = generator.stats(records, candidates=candidates)
        assert stats == generator.stats(records)
        assert generator.recall(records, candidates=candidates) == stats.recall

    def test_stats_fields(self, generator, records):
        stats = generator.stats(records)
        assert isinstance(stats, BlockingStats)
        # e1 and e2 pairs are found, e3's is not: recall 2/3.
        assert stats.recall == pytest.approx(2 / 3)
        assert stats.num_true_pairs == 3
        assert stats.num_candidates == 2
        # 3 records per source => 9 cross-source pairs.
        assert stats.possible_pairs == 9
        assert stats.reduction_ratio == pytest.approx(2 / 9)
        assert stats.pair_reduction_factor == pytest.approx(9 / 2)

    def test_recall_keeps_float_contract(self, generator, records):
        assert isinstance(generator.recall(records), float)


class _CountingBlocker(TokenBlocker):
    """A TokenBlocker that counts how often blocking actually runs."""

    def __init__(self, attribute):
        super().__init__(attribute)
        self.calls = 0

    def candidate_pairs(self, records, max_block_size=50):
        self.calls += 1
        return super().candidate_pairs(records, max_block_size=max_block_size)


class TestCandidateSetBundle:
    @pytest.fixture()
    def records(self):
        return [
            _record("a1", "s1", "neil diamond", entity_id="e1"),
            _record("a2", "s2", "neil diamond", entity_id="e1"),
            _record("b1", "s1", "aretha franklin", entity_id="e2"),
            _record("b2", "s2", "aretha franklin", entity_id="e2"),
        ]

    def test_generate_returns_candidate_set_sequence(self, records):
        generator = CandidateGenerator([TokenBlocker("name")])
        candidates = generator.generate(records)
        assert isinstance(candidates, CandidateSet)
        # Sequence contract: len, indexing, iteration over EntityPair.
        assert len(candidates) == 2
        assert all(isinstance(pair, EntityPair) for pair in candidates)
        assert candidates[0] is candidates.pairs[0]
        assert candidates.keys == {("a1", "a2"), ("b1", "b2")}

    def test_blocking_runs_exactly_once_with_precomputed_bundle(self, records):
        # The regression: stats()/recall() used to re-derive every pair key
        # (and, without `candidates=`, re-run blocking) on each call.
        blocker = _CountingBlocker("name")
        generator = CandidateGenerator([blocker])
        candidates = generator.generate(records)
        assert blocker.calls == 1
        stats = generator.stats(records, candidates=candidates)
        recall = generator.recall(records, candidates=candidates)
        assert blocker.calls == 1  # reporting never re-ran blocking
        assert recall == stats.recall == 1.0
        # Without the bundle, blocking legitimately runs one more time.
        generator.stats(records)
        assert blocker.calls == 2

    def test_stats_trusts_bundle_keys(self, records):
        generator = CandidateGenerator([TokenBlocker("name")])
        candidates = generator.generate(records)
        # A bundle with an artificially truncated key set: stats must reflect
        # the bundle's keys, proving it never re-derives them from the pairs.
        truncated = CandidateSet(candidates.pairs, [("a1", "a2")])
        stats = generator.stats(records, candidates=truncated)
        assert stats.num_candidates == 1
        assert stats.recall == pytest.approx(1 / 2)

    def test_legacy_plain_pair_lists_still_accepted(self, records):
        generator = CandidateGenerator([TokenBlocker("name")])
        plain = list(generator.generate(records))
        stats = generator.stats(records, candidates=plain)
        assert stats == generator.stats(records)
        bundle = CandidateSet.from_pairs(plain)
        assert bundle.keys == {("a1", "a2"), ("b1", "b2")}
