"""Tests for the candidate-generation indexes (MinHash-LSH, inverted, initials)."""

from __future__ import annotations

import pytest

from repro.data import TokenBlocker
from repro.data.records import Record
from repro.pipeline import (
    CandidateGenerationStage,
    InitialsKeyIndex,
    InvertedTokenIndex,
    MinHashLSHIndex,
    ground_truth_pairs,
    record_tokens,
)


def _record(record_id, source, name, extra=""):
    return Record(record_id=record_id, source=source,
                  attributes={"name": name, "notes": extra})


def _id_pairs(index, cross_source_only=False):
    ids = index.record_ids
    return {tuple(sorted((ids[left], ids[right])))
            for left, right in index.candidate_pairs(cross_source_only=cross_source_only)}


class TestRecordTokens:
    def test_filters_short_tokens_and_sorts(self):
        record = _record("r1", "s1", "Neil Diamond in NY")
        assert record_tokens(record, min_token_length=3) == ["diamond", "neil"]

    def test_respects_attribute_selection(self):
        record = _record("r1", "s1", "Neil Diamond", extra="remastered")
        assert record_tokens(record, attributes=["notes"]) == ["remastered"]


class TestInvertedTokenIndex:
    def test_shared_token_pairs(self):
        index = InvertedTokenIndex()
        index.add_records([
            _record("a", "s1", "neil diamond"),
            _record("b", "s2", "neil young"),
            _record("c", "s3", "aretha franklin"),
        ])
        assert _id_pairs(index) == {("a", "b")}

    def test_cross_source_only_drops_same_source(self):
        index = InvertedTokenIndex()
        index.add_records([
            _record("a", "s1", "neil diamond"),
            _record("b", "s1", "neil young"),
        ])
        assert _id_pairs(index, cross_source_only=True) == set()
        assert _id_pairs(index) == {("a", "b")}

    def test_stop_word_postings_emit_no_pairs(self):
        index = InvertedTokenIndex(max_postings=3)
        index.add_records([_record(f"r{i}", f"s{i}", "common stopword") for i in range(6)])
        assert _id_pairs(index) == set()
        assert index.stats()["overflowed_tokens"] == 2

    def test_incremental_add_equals_bulk_build(self, tiny_music_corpus):
        records = tiny_music_corpus.records
        bulk = InvertedTokenIndex()
        bulk.add_records(records)
        incremental = InvertedTokenIndex()
        for start in range(0, len(records), 7):
            incremental.add_records(records[start:start + 7])
        assert _id_pairs(incremental) == _id_pairs(bulk)


class TestMinHashLSHIndex:
    def test_near_duplicates_collide(self):
        index = MinHashLSHIndex(num_perm=64, bands=16)
        index.add_records([
            _record("a", "s1", "the dark side of the moon remastered edition"),
            _record("b", "s2", "the dark side of the moon remastered"),
            _record("c", "s3", "completely different words entirely here"),
        ])
        pairs = _id_pairs(index)
        assert ("a", "b") in pairs
        assert ("a", "c") not in pairs and ("b", "c") not in pairs

    def test_incremental_add_equals_bulk_build(self, tiny_music_corpus):
        records = tiny_music_corpus.records
        bulk = MinHashLSHIndex(num_perm=64, bands=16)
        bulk.add_records(records)
        incremental = MinHashLSHIndex(num_perm=64, bands=16)
        for start in range(0, len(records), 5):
            incremental.add_records(records[start:start + 5])
        assert _id_pairs(incremental) == _id_pairs(bulk)

    def test_signatures_deterministic_across_instances(self, tiny_music_corpus):
        records = tiny_music_corpus.records[:10]
        first = MinHashLSHIndex(num_perm=32, bands=8).signatures(records)
        second = MinHashLSHIndex(num_perm=32, bands=8).signatures(records)
        assert (first == second).all()

    def test_empty_records_do_not_collide(self):
        index = MinHashLSHIndex(num_perm=32, bands=8)
        index.add_records([
            Record(record_id="a", source="s1", attributes={"name": ""}),
            Record(record_id="b", source="s2", attributes={"name": ""}),
        ])
        assert _id_pairs(index) == set()

    def test_overflowed_buckets_emit_no_pairs(self):
        index = MinHashLSHIndex(num_perm=32, bands=8, max_bucket_size=3)
        index.add_records([_record(f"r{i}", f"s{i}", "identical text value")
                           for i in range(6)])
        assert _id_pairs(index) == set()

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            MinHashLSHIndex(num_perm=10, bands=3)


class TestInitialsKeyIndex:
    def test_abbreviation_matches_full_form(self):
        index = InitialsKeyIndex()
        index.add_records([
            _record("a", "s1", "Elliott Bianchi"),
            _record("b", "s2", "E. B."),
            _record("c", "s3", "Quincy Zane"),
        ])
        assert _id_pairs(index) == {("a", "b")}

    def test_token_order_is_irrelevant(self):
        index = InitialsKeyIndex()
        index.add_records([
            _record("a", "s1", "B. L."),
            _record("b", "s2", "Louis Bowie"),
        ])
        assert _id_pairs(index) == {("a", "b")}

    def test_trailing_noise_is_tolerated(self):
        index = InitialsKeyIndex()
        index.add_records([
            _record("a", "s1", "F. G. musicien"),
            _record("b", "s2", "Freddie Gaye"),
        ])
        assert _id_pairs(index) == {("a", "b")}


class TestIngestOneAndProbe:
    """The single-record ingestion/probe path the online entity store uses."""

    @pytest.mark.parametrize("make_index", [
        lambda: InvertedTokenIndex(min_token_length=3, max_postings=3),
        lambda: MinHashLSHIndex(num_perm=32, bands=8, max_bucket_size=3, seed=7),
        lambda: InitialsKeyIndex(max_bucket_size=3),
    ], ids=["inverted", "minhash", "initials"])
    def test_ingest_one_matches_bulk_buckets(self, make_index, tiny_music_corpus):
        records = tiny_music_corpus.records
        bulk = make_index()
        bulk.add_records(records)
        streamed = make_index()
        for record in records:
            streamed.ingest_one(record)
        assert streamed._buckets == bulk._buckets
        assert streamed.record_ids == bulk.record_ids
        assert (streamed.candidate_pairs(cross_source_only=True)
                == bulk.candidate_pairs(cross_source_only=True))

    def test_emission_support_mirrors_candidate_pairs(self, tiny_music_corpus):
        # Summing per-bucket emissions minus retractions must recover exactly
        # the live candidate pairs batch emission would produce.
        from collections import Counter
        from itertools import combinations

        index = InvertedTokenIndex(min_token_length=3, max_postings=3)
        support = Counter()
        for record in tiny_music_corpus.records:
            _, emitted, retracted = index.ingest_one(record)
            for left, right in emitted:
                support[tuple(sorted((left, right)))] += 1
            for members in retracted:
                for left, right in combinations(members, 2):
                    support[tuple(sorted((left, right)))] -= 1
        live = {pair for pair, count in support.items() if count > 0}
        assert live == index.candidate_pairs(cross_source_only=False)
        assert all(count >= 0 for count in support.values())

    def test_probe_is_read_only_and_finds_co_bucketed_records(self):
        index = InvertedTokenIndex(min_token_length=3, max_postings=4)
        index.add_records([
            _record("r1", "s1", "Neil Diamond"),
            _record("r2", "s2", "neil diamond live"),
            _record("r3", "s3", "Johnny Cash"),
        ])
        probe = _record("px", "s9", "diamond anthology")
        assert index.probe(probe) == {0, 1}
        assert len(index) == 3  # probing never registers the record

    def test_probe_skips_overflowed_buckets(self):
        index = InvertedTokenIndex(min_token_length=3, max_postings=2)
        index.add_records([_record(f"r{i}", f"s{i}", "diamond") for i in range(4)])
        assert index.probe(_record("px", "s9", "diamond")) == set()


class TestLSHRecallVsTokenBlocker:
    def test_index_union_beats_token_blocker_at_equal_budget(self, tiny_music_corpus):
        """The index union must dominate single-attribute token blocking:
        at least as much recall from at most as many candidates."""
        records = tiny_music_corpus.records
        truth = ground_truth_pairs(records)
        assert truth

        blocker = TokenBlocker("name")
        blocker_pairs = {
            tuple(sorted((left.record_id, right.record_id)))
            for left, right in blocker.candidate_pairs(records, max_block_size=50)
            if left.source != right.source
        }

        stage = CandidateGenerationStage()
        stage.add_records(records)
        result = stage.generate()
        stage_pairs = {tuple(sorted((pair.left.record_id, pair.right.record_id)))
                       for pair in result.pairs}

        stage_recall = len(truth & stage_pairs) / len(truth)
        blocker_recall = len(truth & blocker_pairs) / len(truth)
        assert stage_recall >= blocker_recall
        assert stage_recall >= 0.95
