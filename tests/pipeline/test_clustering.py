"""Tests for union-find entity resolution and cluster quality metrics."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.data.records import EntityPair, Record
from repro.pipeline import ClusteringStage, UnionFind, pairwise_cluster_metrics
from repro.pipeline.scoring import ScoredCandidates


def _record(record_id, source, entity_id=None):
    return Record(record_id=record_id, source=source,
                  attributes={"name": record_id}, entity_id=entity_id)


def _scored(records, edges):
    """Build ScoredCandidates from (left_id, right_id, score) triples."""
    by_id = {record.record_id: record for record in records}
    pairs = [EntityPair(left=by_id[left], right=by_id[right], label=None)
             for left, right, _ in edges]
    scores = np.array([score for _, _, score in edges], dtype=np.float64)
    return ScoredCandidates(pairs=pairs, scores=scores)


class TestUnionFind:
    def test_groups_are_connected_components(self):
        union_find = UnionFind(["a", "b", "c", "d", "e"])
        union_find.union("a", "b")
        union_find.union("b", "c")
        assert union_find.groups() == [["a", "b", "c"], ["d"], ["e"]]
        assert union_find.connected("a", "c")
        assert not union_find.connected("a", "d")

    def test_union_returns_whether_components_merged(self):
        union_find = UnionFind()
        assert union_find.union("a", "b") is True
        assert union_find.union("a", "b") is False

    def test_order_invariance(self):
        """The canonical groups never depend on item or edge ordering."""
        items = [f"r{i}" for i in range(30)]
        edges = [(f"r{i}", f"r{i + 1}") for i in range(0, 28, 3)]
        edges += [(f"r{i}", f"r{i + 2}") for i in range(0, 27, 9)]
        reference = None
        rng = random.Random(0)
        for _ in range(5):
            shuffled_items = items[:]
            shuffled_edges = edges[:]
            rng.shuffle(shuffled_items)
            rng.shuffle(shuffled_edges)
            union_find = UnionFind(shuffled_items)
            for left, right in shuffled_edges:
                union_find.union(left, right)
            groups = union_find.groups()
            if reference is None:
                reference = groups
            assert groups == reference


class TestPairwiseClusterMetrics:
    def test_perfect_clustering(self):
        assignments = {"a": 0, "b": 0, "c": 1, "d": 1}
        truth = {"a": "x", "b": "x", "c": "y", "d": "y"}
        metrics = pairwise_cluster_metrics(assignments, truth)
        assert metrics["pairwise_precision"] == 1.0
        assert metrics["pairwise_recall"] == 1.0
        assert metrics["pairwise_f1"] == 1.0

    def test_one_merge_error(self):
        # Everything in one cluster: recall perfect, precision 2/6.
        assignments = {"a": 0, "b": 0, "c": 0, "d": 0}
        truth = {"a": "x", "b": "x", "c": "y", "d": "y"}
        metrics = pairwise_cluster_metrics(assignments, truth)
        assert metrics["pairwise_recall"] == 1.0
        assert metrics["pairwise_precision"] == pytest.approx(2 / 6)

    def test_records_without_truth_are_ignored(self):
        assignments = {"a": 0, "b": 0, "z": 0}
        truth = {"a": "x", "b": "x"}
        metrics = pairwise_cluster_metrics(assignments, truth)
        assert metrics["evaluated_records"] == 2.0
        assert metrics["pairwise_precision"] == 1.0


class TestClusteringStage:
    def test_thresholded_connected_components(self):
        records = [_record("a", "s1"), _record("b", "s2"),
                   _record("c", "s3"), _record("d", "s4")]
        scored = _scored(records, [("a", "b", 0.9), ("b", "c", 0.8), ("c", "d", 0.2)])
        result = ClusteringStage(threshold=0.5).run(records, scored)
        assert result.clusters == [["a", "b", "c"], ["d"]]
        assert result.stats["num_singletons"] == 1.0

    def test_transitivity_violations_reported(self):
        records = [_record("a", "s1"), _record("b", "s2"), _record("c", "s3")]
        # a-b and b-c merge, but the model rejected a-c: one violation.
        scored = _scored(records, [("a", "b", 0.9), ("b", "c", 0.8), ("a", "c", 0.1)])
        result = ClusteringStage(threshold=0.5).run(records, scored)
        assert result.clusters == [["a", "b", "c"]]
        assert result.violations == [("a", "c", 0.1)]
        assert result.stats["transitivity_violations"] == 1.0
        assert result.stats["transitivity_violation_rate"] == 1.0

    def test_source_consistency_vetoes_same_source_merges(self):
        records = [_record("a", "s1"), _record("b", "s2"), _record("c", "s1")]
        # b matches both a and c, but a and c share a source; the higher
        # scoring edge wins and the weaker merge is vetoed.
        scored = _scored(records, [("a", "b", 0.9), ("b", "c", 0.8)])
        result = ClusteringStage(threshold=0.5).run(records, scored)
        assert result.clusters == [["a", "b"], ["c"]]
        assert result.stats["source_conflicts"] == 1.0
        relaxed = ClusteringStage(threshold=0.5, source_consistent=False).run(records, scored)
        assert relaxed.clusters == [["a", "b", "c"]]

    def test_edge_order_invariance(self):
        records = [_record(f"r{i}", f"s{i}") for i in range(8)]
        edges = [("r0", "r1", 0.95), ("r1", "r2", 0.8), ("r3", "r4", 0.7),
                 ("r4", "r5", 0.9), ("r6", "r7", 0.3), ("r2", "r3", 0.4)]
        reference = None
        rng = random.Random(1)
        for _ in range(5):
            shuffled = edges[:]
            rng.shuffle(shuffled)
            result = ClusteringStage(threshold=0.5).run(records, _scored(records, shuffled))
            if reference is None:
                reference = result.clusters
            assert result.clusters == reference

    def test_ground_truth_metrics_when_entity_ids_present(self):
        records = [_record("a", "s1", "x"), _record("b", "s2", "x"),
                   _record("c", "s3", "y"), _record("d", "s4", "y")]
        scored = _scored(records, [("a", "b", 0.9), ("c", "d", 0.9)])
        result = ClusteringStage(threshold=0.5).run(records, scored)
        assert result.stats["pairwise_f1"] == 1.0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            ClusteringStage(threshold=1.5)

    def test_scored_pairs_outside_record_set_rejected(self):
        records = [_record("a", "s1"), _record("b", "s2")]
        stranger = _record("z", "s3")
        scored = _scored(records + [stranger], [("a", "z", 0.9)])
        with pytest.raises(ValueError, match="not in `records`"):
            ClusteringStage().run(records, scored)
