"""End-to-end tests for the linkage pipeline, its stages and the CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import AdaMELHybrid
from repro.data.storage import write_records_csv
from repro.infer import BatchedPredictor, save_model
from repro.pipeline import (
    CandidateGenerationStage,
    LinkagePipeline,
    PipelineConfig,
    ScoringStage,
)
from repro.pipeline.__main__ import main as pipeline_main


@pytest.fixture(scope="module")
def predictor(music_scenario, fast_config):
    trainer = AdaMELHybrid(fast_config)
    trainer.fit(music_scenario)
    return BatchedPredictor.from_trainer(trainer)


@pytest.fixture(scope="module")
def pipeline_result(predictor, tiny_music_corpus):
    pipeline = LinkagePipeline(predictor)
    return pipeline.run(tiny_music_corpus.records)


class TestCandidateGeneration:
    def test_candidates_are_cross_source_and_deduplicated(self, tiny_music_corpus):
        stage = CandidateGenerationStage()
        stage.add_records(tiny_music_corpus.records)
        result = stage.generate()
        keys = [tuple(sorted((pair.left.record_id, pair.right.record_id)))
                for pair in result.pairs]
        assert len(keys) == len(set(keys))
        assert all(pair.left.source != pair.right.source for pair in result.pairs)

    def test_stats_report_recall_and_reduction(self, tiny_music_corpus):
        stage = CandidateGenerationStage()
        stage.add_records(tiny_music_corpus.records)
        stats = stage.generate().stats
        assert stats["recall"] >= 0.95
        assert stats["pair_reduction_factor"] >= 5.0
        assert 0.0 < stats["reduction_ratio"] < 1.0

    def test_no_candidates_keeps_stats_finite(self):
        import math

        from repro.data.records import Record

        # A single-source corpus has no cross-source pairs to propose.
        stage = CandidateGenerationStage()
        stage.add_records([Record(record_id=f"r{i}", source="only",
                                  attributes={"name": f"value {i}"})
                           for i in range(4)])
        stats = stage.generate().stats
        assert stats["num_candidates"] == 0.0
        assert all(math.isfinite(value) for value in stats.values())
        assert json.dumps(stats)  # JSON-serialisable, no Infinity tokens

    def test_streaming_ingestion_equals_bulk(self, tiny_music_corpus):
        records = tiny_music_corpus.records
        bulk = CandidateGenerationStage()
        bulk.add_records(records)
        streamed = CandidateGenerationStage()
        for start in range(0, len(records), 13):
            streamed.add_records(records[start:start + 13])
        bulk_keys = {pair.pair_id for pair in bulk.generate().pairs}
        streamed_keys = {pair.pair_id for pair in streamed.generate().pairs}
        assert bulk_keys == streamed_keys


class TestScoringStage:
    def test_chunked_scores_equal_single_call(self, predictor, tiny_music_corpus):
        stage = CandidateGenerationStage()
        stage.add_records(tiny_music_corpus.records)
        pairs = stage.generate().pairs
        chunked = ScoringStage(predictor, chunk_size=7).run(pairs)
        bulk = predictor.predict_proba(pairs)
        # Chunking changes matmul shapes, so only low-order float bits may move.
        np.testing.assert_allclose(chunked.scores, bulk, rtol=1e-9, atol=1e-12)
        assert chunked.stats["chunks"] == float(-(-len(pairs) // 7))


class TestLinkagePipeline:
    def test_every_record_is_clustered_exactly_once(self, pipeline_result,
                                                    tiny_music_corpus):
        clustered = [record_id for members in pipeline_result.clusters.clusters
                     for record_id in members]
        assert sorted(clustered) == sorted(r.record_id for r in tiny_music_corpus.records)

    def test_deterministic_under_fixed_seed(self, predictor, tiny_music_corpus,
                                            pipeline_result):
        rerun = LinkagePipeline(predictor).run(tiny_music_corpus.records)
        assert rerun.clusters.clusters == pipeline_result.clusters.clusters
        assert np.array_equal(rerun.scored.scores, pipeline_result.scored.scores)
        assert rerun.candidates.stats == pipeline_result.candidates.stats

    def test_streaming_iterator_input_matches_list_input(self, predictor,
                                                         tiny_music_corpus,
                                                         pipeline_result):
        config = PipelineConfig(ingest_chunk_size=9)
        streamed = LinkagePipeline(predictor, config=config).run(
            iter(tiny_music_corpus.records))
        assert streamed.clusters.clusters == pipeline_result.clusters.clusters

    def test_summary_covers_all_stages(self, pipeline_result):
        summary = pipeline_result.summary()
        assert set(summary["stages"]) == {"ingest", "block", "pair", "score", "cluster"}
        assert summary["stages"]["pair"]["recall"] >= 0.95
        assert "pairwise_f1" in summary["stages"]["cluster"]
        # Index diagnostics (bucket/overflow counters) surface under "block".
        assert summary["stages"]["block"]["MinHashLSHIndex_buckets"] > 0
        assert "InvertedTokenIndex_overflowed_tokens" in summary["stages"]["block"]

    def test_blocking_runs_exactly_once_per_run(self, predictor, tiny_music_corpus,
                                                monkeypatch):
        # Regression guard for double-blocking: one pipeline run must call
        # candidate generation once and each index's pair enumeration once —
        # stats/reporting paths may not silently re-run blocking.
        from repro.pipeline import candidates as candidates_module
        from repro.pipeline.index import _BucketedIndex

        generate_calls = []
        original_generate = candidates_module.CandidateGenerationStage.generate
        monkeypatch.setattr(
            candidates_module.CandidateGenerationStage, "generate",
            lambda self: generate_calls.append(1) or original_generate(self))
        pair_calls = []
        original_pairs = _BucketedIndex.candidate_pairs
        monkeypatch.setattr(
            _BucketedIndex, "candidate_pairs",
            lambda self, cross_source_only=False: pair_calls.append(1)
            or original_pairs(self, cross_source_only=cross_source_only))

        result = LinkagePipeline(predictor).run(tiny_music_corpus.records)
        assert sum(generate_calls) == 1
        assert sum(pair_calls) == 3  # one enumeration per blocking index
        assert result.candidates.stats["num_candidates"] > 0

    def test_write_outputs(self, pipeline_result, tmp_path):
        output_dir = pipeline_result.write(tmp_path / "out")
        clusters = [json.loads(line)
                    for line in (output_dir / "clusters.jsonl").read_text().splitlines()]
        assert len(clusters) == len(pipeline_result.clusters.clusters)
        assert all(cluster["size"] == len(cluster["record_ids"]) for cluster in clusters)
        matches = [json.loads(line)
                   for line in (output_dir / "matches.jsonl").read_text().splitlines()]
        threshold = pipeline_result.config.score_threshold
        assert len(matches) == int((pipeline_result.scored.scores >= threshold).sum())
        stats = json.loads((output_dir / "stats.json").read_text())
        assert stats["stages"]["cluster"]["num_clusters"] == len(clusters)


class TestPipelineCLI:
    @pytest.mark.slow
    def test_cli_links_saved_model_against_csv(self, predictor, music_scenario,
                                               tiny_music_corpus, fast_config, tmp_path):
        trainer = AdaMELHybrid(fast_config)
        trainer.fit(music_scenario)
        bundle = save_model(trainer, tmp_path / "bundle")
        records_csv = write_records_csv(tiny_music_corpus.records, tmp_path / "records.csv")
        exit_code = pipeline_main([
            "--records", str(records_csv),
            "--model", str(bundle),
            "--output-dir", str(tmp_path / "out"),
        ])
        assert exit_code == 0
        assert (tmp_path / "out" / "clusters.jsonl").exists()
        assert (tmp_path / "out" / "stats.json").exists()

    def test_records_without_model_is_an_error(self, tmp_path, capsys):
        exit_code = pipeline_main(["--records", str(tmp_path / "nope.csv")])
        assert exit_code == 2
        assert "--model" in capsys.readouterr().err
