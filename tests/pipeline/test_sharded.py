"""Tests for the sharded pipeline: parity, hot-bucket splits, the router."""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.core import AdaMELHybrid
from repro.data.records import Record
from repro.data.storage import write_records_csv
from repro.infer import BatchedPredictor, save_model
from repro.pipeline import (
    LinkagePipeline,
    PipelineConfig,
    ShardConfig,
    ShardedPipeline,
    ShardRouter,
    shard_of_key,
)
from repro.pipeline.__main__ import main as pipeline_main


@pytest.fixture(scope="module")
def predictor(music_scenario, fast_config):
    trainer = AdaMELHybrid(fast_config)
    trainer.fit(music_scenario)
    return BatchedPredictor.from_trainer(trainer)


def _pair_keys(result):
    return [(pair.left.record_id, pair.right.record_id)
            for pair in result.scored.pairs]


class TestSingleWorkerParity:
    """ShardedPipeline(workers=1, one shard) must be bit-identical to batch."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_on_shuffled_inputs(self, predictor, tiny_music_corpus,
                                              seed):
        records = list(tiny_music_corpus.records)
        random.Random(seed).shuffle(records)
        batch = LinkagePipeline(predictor).run(list(records))
        sharded = ShardedPipeline(
            predictor, shards=ShardConfig(workers=1, num_shards=1)).run(list(records))
        assert _pair_keys(sharded) == _pair_keys(batch)
        assert np.array_equal(sharded.scored.scores, batch.scored.scores)
        assert sharded.clusters.clusters == batch.clusters.clusters
        assert sharded.clusters.assignments == batch.clusters.assignments
        assert sharded.index_stats == batch.index_stats

    def test_pair_stats_match_batch_core_keys(self, predictor, tiny_music_corpus):
        records = list(tiny_music_corpus.records)
        batch = LinkagePipeline(predictor).run(list(records))
        sharded = ShardedPipeline(
            predictor, shards=ShardConfig(workers=1, num_shards=1)).run(list(records))
        for key in ("num_records", "num_candidates", "possible_pairs",
                    "reduction_ratio", "pair_reduction_factor", "recall",
                    "num_true_pairs"):
            assert sharded.candidates.stats[key] == batch.candidates.stats[key]


class TestMultiShardParity:
    """Any shard count must reproduce the batch pair set and clusters."""

    @pytest.mark.parametrize("num_shards", [2, 4, 7])
    def test_in_process_shards_match_batch(self, predictor, tiny_music_corpus,
                                           num_shards):
        records = list(tiny_music_corpus.records)
        batch = LinkagePipeline(predictor).run(list(records))
        sharded = ShardedPipeline(
            predictor,
            shards=ShardConfig(workers=1, num_shards=num_shards)).run(list(records))
        assert _pair_keys(sharded) == _pair_keys(batch)
        assert sharded.clusters.clusters == batch.clusters.clusters
        assert sharded.index_stats == batch.index_stats
        assert sharded.shard_report.num_shards == num_shards
        assert not sharded.shard_report.used_processes

    @pytest.mark.skipif(not ShardedPipeline.fork_available(),
                        reason="fork start method unavailable")
    def test_process_pool_matches_batch(self, predictor, tiny_music_corpus):
        records = list(tiny_music_corpus.records)
        batch = LinkagePipeline(predictor).run(list(records))
        sharded = ShardedPipeline(
            predictor, shards=ShardConfig(workers=2)).run(list(records))
        assert sharded.shard_report.used_processes
        assert _pair_keys(sharded) == _pair_keys(batch)
        assert sharded.clusters.clusters == batch.clusters.clusters
        # Cross-shard duplicates were deduped, not double-counted.
        assert len(sharded.scored.pairs) == len(batch.scored.pairs)

    def test_sharded_run_is_deterministic(self, predictor, tiny_music_corpus):
        records = list(tiny_music_corpus.records)
        config = ShardConfig(workers=1, num_shards=3)
        first = ShardedPipeline(predictor, shards=config).run(list(records))
        second = ShardedPipeline(predictor, shards=config).run(list(records))
        assert np.array_equal(first.scored.scores, second.scored.scores)
        assert first.clusters.clusters == second.clusters.clusters
        assert first.shard_report.shard_loads == second.shard_report.shard_loads


class TestHotBucketSplit:
    """An adversarially hot bucket is split across shards without changing output."""

    @pytest.fixture()
    def skewed_records(self, tiny_music_corpus):
        # Inject one stop-word-like token into the name of many records, so a
        # single posting list dominates the pair load.
        records = []
        for i, record in enumerate(tiny_music_corpus.records):
            if i < 40:
                attributes = dict(record.attributes)
                attributes["name"] = f"{attributes.get('name', '')} zzhotkey"
                records.append(Record(record_id=record.record_id,
                                      source=record.source,
                                      attributes=attributes,
                                      entity_id=record.entity_id))
            else:
                records.append(record)
        return records

    def test_hot_bucket_is_split_and_output_unchanged(self, predictor,
                                                      skewed_records):
        # Raise the posting cap so the hot bucket stays live (40 <= 64).
        config = PipelineConfig(max_postings=64)
        batch = LinkagePipeline(predictor, config=config).run(list(skewed_records))
        shard_config = ShardConfig(workers=1, num_shards=4,
                                   hot_bucket_factor=0.5, min_split_pairs=32)
        sharded = ShardedPipeline(predictor, config=config,
                                  shards=shard_config).run(list(skewed_records))
        report = sharded.shard_report
        assert report.hot_buckets_split >= 1
        assert report.slices_created >= 2
        # The split partitions enumeration; the merged output is unchanged.
        assert _pair_keys(sharded) == _pair_keys(batch)
        assert sharded.clusters.clusters == batch.clusters.clusters
        # Least-loaded slice placement never increases skew over pure hashing.
        assert report.gini_balanced <= report.gini_hashed + 1e-9

    def test_split_disabled_on_single_shard(self, predictor, skewed_records):
        config = PipelineConfig(max_postings=64)
        sharded = ShardedPipeline(
            predictor, config=config,
            shards=ShardConfig(workers=1, num_shards=1,
                               hot_bucket_factor=0.5,
                               min_split_pairs=32)).run(list(skewed_records))
        assert sharded.shard_report.hot_buckets_split == 0


class TestShardRouter:
    def _buckets(self):
        # index 1 (token index) holds one giant bucket plus a spread of small
        # ones; indexes 0/2 stay empty.
        small = {f"tok{i}": [2 * i, 2 * i + 1] for i in range(20)}
        small["giant"] = list(range(40, 80))
        return [{}, small, {}]

    def test_plan_is_deterministic(self):
        router = ShardRouter(4, min_split_pairs=32, hot_bucket_factor=1.5)
        caps = (8, 64, 16)
        first = router.plan(self._buckets(), caps)
        second = router.plan(self._buckets(), caps)
        assert first.tasks == second.tasks
        assert first.loads == second.loads

    def test_hot_bucket_slices_partition_enumeration(self):
        router = ShardRouter(4, min_split_pairs=32, hot_bucket_factor=1.5)
        plan = router.plan(self._buckets(), (8, 64, 16))
        assert plan.report.hot_buckets_split == 1
        slices = [task for tasks in plan.tasks for task in tasks if task[3] > 1]
        assert len(slices) == plan.report.slices_created
        # Slices cover the same bucket with distinct slice indexes.
        members = {task[1] for task in slices}
        assert members == {tuple(range(40, 80))}
        assert sorted(task[2] for task in slices) == list(range(len(slices)))

    def test_dead_and_trivial_buckets_emit_no_tasks(self):
        router = ShardRouter(2)
        buckets = [{}, {"dead": list(range(70)), "single": [3],
                        "live": [0, 1]}, {}]
        plan = router.plan(buckets, (8, 64, 16))
        assert plan.report.dead_buckets == 1
        assert plan.report.trivial_buckets == 1
        assert plan.report.routed_buckets == 1
        all_tasks = [task for tasks in plan.tasks for task in tasks]
        assert len(all_tasks) == 1
        assert all_tasks[0][1] == (0, 1)

    def test_rebalance_fallback_reduces_skew(self):
        # rebalance_gini=0 forces the greedy repack whenever hashing is uneven.
        balanced = ShardRouter(4, rebalance_gini=0.0, min_split_pairs=10 ** 6)
        hashed = ShardRouter(4, rebalance_gini=1.0, min_split_pairs=10 ** 6)
        caps = (8, 64, 16)
        buckets = [{}, {f"tok{i}": list(range(5 * i, 5 * i + i % 6 + 2))
                        for i in range(25)}, {}]
        plan_balanced = balanced.plan(buckets, caps)
        plan_hashed = hashed.plan(buckets, caps)
        if plan_hashed.report.gini_balanced > 0.0:
            assert plan_balanced.report.rebalanced
            assert (plan_balanced.report.gini_balanced
                    <= plan_hashed.report.gini_balanced)
        # Both plans carry every task exactly once.
        for plan in (plan_balanced, plan_hashed):
            tasks = sorted(task for shard in plan.tasks for task in shard)
            assert len(tasks) == plan.report.routed_buckets

    def test_shard_of_key_is_stable_and_in_range(self):
        keys = ["token", ("band", 17), "zz", (0, 123456789)]
        for key in keys:
            for shards in (1, 2, 7):
                shard = shard_of_key(1, key, shards)
                assert 0 <= shard < shards
                assert shard == shard_of_key(1, key, shards)


class TestShardedTelemetry:
    def test_run_records_convention_valid_metrics(self, predictor,
                                                  tiny_music_corpus):
        import repro.obs as obs
        from repro.obs.metrics import valid_metric_name

        with obs.telemetry() as session:
            ShardedPipeline(
                predictor,
                shards=ShardConfig(workers=1, num_shards=2)).run(
                list(tiny_music_corpus.records))
        names = {entry["name"] for entry in session.registry.snapshot()}
        expected = {"pipeline_sharded_runs_total",
                    "pipeline_sharded_workers_count",
                    "pipeline_sharded_gini_ratio",
                    "pipeline_sharded_load_pairs",
                    "pipeline_sharded_shard_seconds"}
        assert expected <= names
        offenders = [name for name in names if not valid_metric_name(name)]
        assert offenders == []

    @staticmethod
    def _span_shape(span):
        """(name, sorted child shapes) — attribute- and timing-free."""
        return (span.name,
                tuple(sorted(TestShardedTelemetry._span_shape(child)
                             for child in span.children)))

    def _run_with_telemetry(self, predictor, records, workers, num_shards=4):
        import repro.obs as obs

        with obs.telemetry() as session:
            result = ShardedPipeline(
                predictor,
                shards=ShardConfig(workers=workers,
                                   num_shards=num_shards)).run(list(records))
        return result, session

    def test_worker_spans_merge_into_one_driver_tree(self, predictor,
                                                     tiny_music_corpus):
        result, session = self._run_with_telemetry(
            predictor, tiny_music_corpus.records, workers=1)
        (root,) = [span for span in session.collector.roots()
                   if span.name == "sharded.run"]
        (score,) = [span for span in root.children
                    if span.name == "sharded.score"]
        workers = [span for span in score.children
                   if span.name == "sharded.worker"]
        expected = len(result.shard_report.shard_emit_seconds)
        assert len(workers) == expected > 0
        assert sorted(span.attributes["shard"] for span in workers) == \
            sorted(range(expected))
        for span in workers:
            phases = [child.name for child in span.children]
            assert phases == ["emit", "score"]
        # In-process workers run back to back inside sharded.score, so
        # their wall time accounts for most of it (soft bound: the driver
        # also merges payloads inside the span).
        assert sum(span.seconds for span in workers) >= 0.5 * score.seconds

    def test_shard_seconds_observed_once_per_shard_per_phase(self, predictor,
                                                             tiny_music_corpus):
        """Regression: the driver must not re-observe what the workers
        already shipped — one observation per shard per phase, exactly."""
        result, session = self._run_with_telemetry(
            predictor, tiny_music_corpus.records, workers=1)
        expected = len(result.shard_report.shard_emit_seconds)
        counts = {entry["labels"]["phase"]: entry["count"]
                  for entry in session.registry.snapshot()
                  if entry["name"] == "pipeline_sharded_shard_seconds"}
        assert counts == {"emit": expected, "score": expected}

    @pytest.mark.skipif(not ShardedPipeline.fork_available(),
                        reason="fork start method unavailable")
    def test_forked_run_has_identical_span_structure(self, predictor,
                                                     tiny_music_corpus):
        """A 4-worker forked export must be span-identical (same tree shape)
        to the in-process 1-worker run — worker payloads ship across the
        pipe instead of the call stack, but the story reads the same."""
        _, inline = self._run_with_telemetry(
            predictor, tiny_music_corpus.records, workers=1)
        _, forked = self._run_with_telemetry(
            predictor, tiny_music_corpus.records, workers=4)
        shape = [self._span_shape(span) for span in inline.collector.roots()]
        assert [self._span_shape(span)
                for span in forked.collector.roots()] == shape

    @pytest.mark.skipif(not ShardedPipeline.fork_available(),
                        reason="fork start method unavailable")
    def test_forked_metrics_match_inline(self, predictor, tiny_music_corpus):
        result, session = self._run_with_telemetry(
            predictor, tiny_music_corpus.records, workers=4)
        expected = len(result.shard_report.shard_emit_seconds)
        counts = {entry["labels"]["phase"]: entry["count"]
                  for entry in session.registry.snapshot()
                  if entry["name"] == "pipeline_sharded_shard_seconds"}
        assert counts == {"emit": expected, "score": expected}


class TestShardedCLI:
    @pytest.mark.slow
    def test_cli_workers_flag_runs_sharded(self, predictor, music_scenario,
                                           fast_config, tiny_music_corpus,
                                           tmp_path):
        trainer = AdaMELHybrid(fast_config)
        trainer.fit(music_scenario)
        bundle = save_model(trainer, tmp_path / "bundle")
        records_csv = write_records_csv(tiny_music_corpus.records,
                                        tmp_path / "records.csv")
        exit_code = pipeline_main([
            "--records", str(records_csv),
            "--model", str(bundle),
            "--workers", "2",
            "--output-dir", str(tmp_path / "out"),
        ])
        assert exit_code == 0
        stats = json.loads((tmp_path / "out" / "stats.json").read_text())
        assert stats["sharding"]["num_shards"] == 2
        assert stats["sharding"]["workers"] == 2
