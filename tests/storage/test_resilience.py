"""Storage resilience: the directory lock and read-only degradation."""

from __future__ import annotations

import os

import pytest

import _crash_child as child
from repro.resilience import faults
from repro.resilience.faults import FaultSpec
from repro.storage import (Storage, StorageConfig, StorageLocked,
                           StorageReadOnly)
from repro.storage.locks import LOCK_FILENAME, DirectoryLock


@pytest.fixture(scope="module")
def records():
    return child.build_records()


def fresh_storage(data_dir, **overrides) -> Storage:
    defaults = dict(snapshot_every=child.SNAPSHOT_EVERY,
                    wal_segment_max_entries=child.SEGMENT_MAX_ENTRIES)
    defaults.update(overrides)
    return Storage(data_dir, score_fn=child.score_fn,
                   store_config=child.store_config(),
                   config=StorageConfig(**defaults))


class TestDirectoryLock:
    def test_second_acquire_raises_with_owner_pid(self, tmp_path):
        lock = DirectoryLock.acquire(tmp_path)
        try:
            with pytest.raises(StorageLocked, match=str(os.getpid())):
                DirectoryLock.acquire(tmp_path)
        finally:
            lock.release()

    def test_release_frees_the_directory(self, tmp_path):
        DirectoryLock.acquire(tmp_path).release()
        second = DirectoryLock.acquire(tmp_path)
        second.release()

    def test_release_is_idempotent_and_context_manager_works(self, tmp_path):
        with DirectoryLock.acquire(tmp_path) as lock:
            assert (tmp_path / LOCK_FILENAME).exists()
        lock.release()  # second release: no-op

    def test_pidfile_fallback_reclaims_a_stale_owner(self, tmp_path):
        # A pidfile left by a dead process must not brick the directory.
        lock_path = tmp_path / LOCK_FILENAME
        lock_path.write_text("999999999")  # no such pid
        lock = DirectoryLock._acquire_pidfile(lock_path)
        try:
            assert lock_path.read_text() == str(os.getpid())
        finally:
            lock.release()


class TestStorageLocking:
    def test_second_open_of_a_live_directory_raises_storage_locked(
            self, tmp_path, records):
        storage = fresh_storage(tmp_path)
        try:
            storage.upsert(records[0])
            with pytest.raises(StorageLocked):
                fresh_storage(tmp_path)
            with pytest.raises(StorageLocked):
                Storage.recover(tmp_path, score_fn=child.score_fn)
        finally:
            storage.close()

    def test_close_releases_the_lock_for_recover(self, tmp_path, records):
        storage = fresh_storage(tmp_path)
        for record in records[:3]:
            storage.upsert(record)
        storage.close()
        recovered = Storage.recover(tmp_path, score_fn=child.score_fn)
        try:
            assert len(recovered.store) == 3
        finally:
            recovered.close()

    def test_failed_construction_does_not_leak_the_lock(self, tmp_path,
                                                        records):
        storage = fresh_storage(tmp_path)
        for record in records[:2]:
            storage.upsert(record)
        storage.close()
        # Constructing over a populated directory refuses (use recover) —
        # and must release the lock it briefly held while refusing.
        with pytest.raises(Exception, match="recover"):
            fresh_storage(tmp_path)
        recovered = Storage.recover(tmp_path, score_fn=child.score_fn)
        recovered.close()


class TestReadOnlyDegradation:
    @pytest.fixture(autouse=True)
    def clean_plan(self):
        faults.clear_plan()
        yield
        faults.clear_plan()

    def test_wal_append_failure_flips_storage_read_only(self, tmp_path,
                                                        records):
        storage = fresh_storage(tmp_path)
        try:
            for record in records[:4]:
                storage.upsert(record)
            stored = len(storage.store)
            with faults.plan_scope([FaultSpec(site="storage.wal_append",
                                              kind="raise")]):
                with pytest.raises(StorageReadOnly):
                    storage.upsert(records[4])
            # The failed upsert never mutated the store: the WAL hook runs
            # before the in-memory commit, so memory matches the durable log.
            assert len(storage.store) == stored
            assert storage.read_only
            assert storage.stats()["read_only"] == 1.0
            # Reads keep serving from the committed prefix.
            matches = storage.store.query(records[0], top_k=3)
            assert isinstance(matches, list)
            # Later writes fail fast without touching the (unarmed) WAL.
            with pytest.raises(StorageReadOnly):
                storage.upsert(records[5])
            assert len(storage.store) == stored
        finally:
            storage.close()

    def test_read_only_storage_recovers_to_the_committed_prefix(
            self, tmp_path, records):
        storage = fresh_storage(tmp_path)
        for record in records[:4]:
            storage.upsert(record)
        with faults.plan_scope([FaultSpec(site="storage.wal_append",
                                          kind="raise")]):
            with pytest.raises(StorageReadOnly):
                storage.upsert(records[4])
        storage.close()
        recovered = Storage.recover(tmp_path, score_fn=child.score_fn)
        try:
            assert len(recovered.store) == 4
            assert not recovered.read_only
        finally:
            recovered.close()
