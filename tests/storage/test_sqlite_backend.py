"""SQLiteIndexBackend: bit-exact parity with the in-memory bucket stores.

The backend must be indistinguishable from :class:`MemoryBucketStore`
through the whole posting-list interface — adds under a cap, probes that
skip overflowed buckets, deterministic pair emission, sizes/overflow
accounting, and state round-trips — and, one level up, an
``EntityStore(backend="sqlite")`` must stream to the same clusters and the
same index state as a memory-backed store.
"""

from __future__ import annotations

import numpy as np
import pytest

import _crash_child as child
from repro.pipeline.index import MemoryBucketStore
from repro.serve.store import EntityStore, StoreConfig
from repro.storage.backends import SQLiteIndexBackend


@pytest.fixture()
def backend():
    with_backend = SQLiteIndexBackend()
    yield with_backend
    with_backend.close()


def random_ops(seed, num_ops=300, num_keys=12, num_positions=40):
    """A deterministic op stream hitting tuple keys, caps and repeats."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(num_ops):
        which = int(rng.integers(num_keys))
        # Half the keys are strings (token index), half tuples (LSH bands).
        key = (f"token{which}" if which % 2
               else (which, int(rng.integers(3))))
        ops.append((key, int(rng.integers(num_positions))))
    return ops


class TestBucketStoreParity:
    @pytest.mark.parametrize("cap", [1, 2, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_full_interface_parity_under_a_cap(self, backend, cap, seed):
        memory = MemoryBucketStore()
        sqlite = backend.bucket_store()
        for key, position in random_ops(seed):
            memory.add(key, position, cap)
            sqlite.add(key, position, cap)
            assert list(sqlite.members(key)) == list(memory.members(key))
        assert dict(sqlite.sizes()) == dict(memory.sizes())
        assert sqlite.overflowed(cap) == memory.overflowed(cap)
        assert len(sqlite) == len(memory)
        assert sorted(sqlite.emit_pairs(cap)) == sorted(memory.emit_pairs(cap))
        assert {key: list(positions) for key, positions in sqlite.entries()} \
            == {key: list(positions) for key, positions in memory.entries()}

    @pytest.mark.parametrize("cap", [2, 3])
    def test_probe_parity_skips_overflowed_buckets(self, backend, cap):
        memory = MemoryBucketStore()
        sqlite = backend.bucket_store()
        ops = random_ops(seed=7)
        keys = sorted({key for key, _ in ops}, key=repr)
        for key, position in ops:
            memory.add(key, position, cap)
            sqlite.add(key, position, cap)
        for probe_keys in (keys, keys[:3], [("nope", 0)], []):
            assert sqlite.probe(probe_keys, cap) == memory.probe(probe_keys, cap)

    def test_add_stops_growing_past_overflow(self, backend):
        sqlite = backend.bucket_store()
        for position in range(10):
            sqlite.add("hot", position, cap=2)
        # Overflow is recorded (cap + 1 members mark it), not unbounded.
        assert len(sqlite.members("hot")) == 3
        assert sqlite.overflowed(2) == 1
        assert sqlite.probe(["hot"], cap=2) == set()

    def test_load_replaces_prior_state(self, backend):
        sqlite = backend.bucket_store()
        sqlite.add("stale", 1, cap=8)
        sqlite.load([("fresh", [0, 2]), ((1, 2), [3])])
        assert {key for key, _ in sqlite.entries()} == {"fresh", (1, 2)}
        assert list(sqlite.members("fresh")) == [0, 2]

    def test_stores_are_isolated_from_each_other(self, backend):
        first, second = backend.bucket_stores(2)
        first.add("shared", 1, cap=8)
        assert list(second.members("shared")) == []
        assert len(second) == 0


def stream_store(config: StoreConfig, records) -> EntityStore:
    store = EntityStore(score_fn=child.score_fn, config=config)
    for record in records:
        store.upsert(record)
    return store


class TestEntityStoreOnSQLite:
    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            EntityStore(config=StoreConfig(backend="rocksdb"))

    def test_sqlite_store_matches_memory_store_bit_exactly(
            self, tiny_music_corpus):
        records = tiny_music_corpus.records
        memory = stream_store(child.store_config(), records)
        sqlite = stream_store(
            StoreConfig(**{**child.store_config().as_dict(),
                           "backend": "sqlite"}), records)
        try:
            # The tight caps exercised retraction; parity must survive it.
            assert memory.counters.pairs_retracted > 0
            assert sqlite.clusters() == memory.clusters()
            assert sqlite.counters == memory.counters
            sqlite_state = sqlite.state_dict()
            memory_state = memory.state_dict()
            assert sqlite_state["indexes"] == memory_state["indexes"]
            # The whole state matches modulo the backend config fields.
            for state in (sqlite_state, memory_state):
                state["config"].pop("backend")
                state["config"].pop("backend_path")
            assert sqlite_state == memory_state
        finally:
            sqlite.close()

    def test_on_disk_database_starts_clean_per_store(self, tiny_music_corpus,
                                                     tmp_path):
        """The WAL + snapshots are the source of truth; the SQLite file is a
        paging layer a fresh store may reuse without inheriting stale rows."""
        path = str(tmp_path / "postings.db")
        config = StoreConfig(**{**child.store_config().as_dict(),
                                "backend": "sqlite", "backend_path": path})
        records = tiny_music_corpus.records[:15]
        first = stream_store(config, records)
        clusters = first.clusters()
        first.close()
        second = stream_store(config, records)
        try:
            assert second.clusters() == clusters
            assert len(second) == len(records)
        finally:
            second.close()

    def test_backend_fields_round_trip_config_but_not_pipeline(self):
        config = StoreConfig(backend="sqlite")
        assert StoreConfig.from_dict(config.as_dict()) == config
        pipeline_config = config.to_pipeline_config()
        assert not hasattr(pipeline_config, "backend")
