"""SnapshotManager protocol + the legacy EntityStore snapshot fixes.

The second half regression-tests the serve-layer satellite work: the legacy
directory snapshot no longer holds the store lock while serializing (a
concurrent upsert completes while a snapshot is mid-write), both its files
are published atomically, and restore tolerates older format versions and
counter-schema drift.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

import _crash_child as child
from repro.serve import store as store_module
from repro.serve.store import (SNAPSHOT_FORMAT_VERSION,
                               SUPPORTED_SNAPSHOT_VERSIONS, EntityStore)
from repro.storage.snapshots import SnapshotManager


class TestSnapshotManager:
    def test_take_and_load_latest_round_trip(self, tmp_path):
        manager = SnapshotManager(tmp_path)
        manager.take({"value": 1}, lsn=10)
        manager.take({"value": 2}, lsn=25)
        lsn, payload = manager.load_latest()
        assert (lsn, payload) == (25, {"value": 2})

    def test_list_is_sorted_by_lsn(self, tmp_path):
        manager = SnapshotManager(tmp_path, keep=5)
        for lsn in (30, 10, 20):
            manager.take({"lsn_was": lsn}, lsn=lsn)
        assert [lsn for lsn, _ in manager.list()] == [10, 20, 30]

    def test_retention_prunes_oldest(self, tmp_path):
        manager = SnapshotManager(tmp_path, keep=2)
        for lsn in (10, 20, 30):
            manager.take({}, lsn=lsn)
        assert [lsn for lsn, _ in manager.list()] == [20, 30]

    def test_no_temp_files_survive_publication(self, tmp_path):
        SnapshotManager(tmp_path).take({"value": 1}, lsn=1)
        assert [p.name for p in tmp_path.iterdir()] == \
            [f"snapshot-{1:016d}.json"]

    def test_cleanup_removes_stale_temp_files_only(self, tmp_path):
        manager = SnapshotManager(tmp_path)
        manager.take({}, lsn=5)
        stale = tmp_path / ".snapshot-0000000000000009.json.tmp"
        stale.write_text("{", encoding="utf-8")
        assert manager.cleanup() == 1
        assert not stale.exists()
        assert manager.latest()[0] == 5

    def test_damaged_newest_degrades_to_previous(self, tmp_path):
        manager = SnapshotManager(tmp_path)
        manager.take({"value": 1}, lsn=10)
        manager.take({"value": 2}, lsn=20)
        newest = manager.latest()[1]
        newest.write_text("not json", encoding="utf-8")
        assert manager.load_latest() == (10, {"value": 1})

    def test_empty_directory_has_nothing_to_load(self, tmp_path):
        manager = SnapshotManager(tmp_path)
        assert manager.latest() is None
        assert manager.load_latest() is None

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            SnapshotManager(tmp_path, keep=0)


@pytest.fixture()
def streamed_store(tiny_music_corpus):
    store = EntityStore(score_fn=child.score_fn, config=child.store_config())
    for record in tiny_music_corpus.records[:20]:
        store.upsert(record)
    return store


class TestLegacySnapshotLocking:
    def test_concurrent_upsert_completes_while_snapshot_is_mid_write(
            self, streamed_store, tiny_music_corpus, tmp_path, monkeypatch):
        """Serialization happens outside the store lock: park the snapshot
        thread inside its file-writing phase and prove an upsert still
        goes through before the snapshot finishes."""
        mid_write = threading.Event()
        release = threading.Event()
        real_save_json = store_module.save_json

        def parked_save_json(payload, path):
            mid_write.set()
            assert release.wait(timeout=10.0)
            return real_save_json(payload, path)

        monkeypatch.setattr(store_module, "save_json", parked_save_json)
        snapshotter = threading.Thread(
            target=streamed_store.snapshot, args=(tmp_path / "snap",))
        snapshotter.start()
        try:
            assert mid_write.wait(timeout=10.0)
            upserted = threading.Event()

            def upsert():
                streamed_store.upsert(tiny_music_corpus.records[20])
                upserted.set()

            writer = threading.Thread(target=upsert)
            writer.start()
            finished = upserted.wait(timeout=10.0)
            writer.join(timeout=10.0)
            assert finished, "upsert blocked behind a mid-write snapshot"
        finally:
            release.set()
            snapshotter.join(timeout=10.0)
        # The snapshot captured the pre-upsert state it froze under the lock.
        restored = EntityStore.restore(tmp_path / "snap")
        assert len(restored) == 20
        assert len(streamed_store) == 21

    def test_snapshot_publishes_atomically(self, streamed_store, tmp_path):
        out = streamed_store.snapshot(tmp_path / "snap")
        assert sorted(p.name for p in out.iterdir()) == \
            ["records.jsonl", "store.json"]  # no .tmp leftovers
        state = json.loads((out / "store.json").read_text(encoding="utf-8"))
        assert state["format_version"] == SNAPSHOT_FORMAT_VERSION


class TestLegacyRestoreTolerance:
    def rewrite_state(self, path, mutate):
        store_json = path / "store.json"
        state = json.loads(store_json.read_text(encoding="utf-8"))
        mutate(state)
        store_json.write_text(json.dumps(state), encoding="utf-8")

    def test_older_format_version_still_loads(self, streamed_store, tmp_path):
        out = streamed_store.snapshot(tmp_path / "snap")
        assert 1 in SUPPORTED_SNAPSHOT_VERSIONS
        self.rewrite_state(out, lambda s: s.update(format_version=1))
        restored = EntityStore.restore(out, score_fn=child.score_fn)
        assert restored.clusters() == streamed_store.clusters()

    def test_unknown_format_version_is_rejected(self, streamed_store, tmp_path):
        out = streamed_store.snapshot(tmp_path / "snap")
        self.rewrite_state(out, lambda s: s.update(format_version=99))
        with pytest.raises(ValueError, match="format version"):
            EntityStore.restore(out)

    def test_counter_schema_drift_is_tolerated(self, streamed_store, tmp_path):
        out = streamed_store.snapshot(tmp_path / "snap")

        def drift(state):
            state["counters"].pop("pairs_scored")       # older snapshot
            state["counters"]["counter_from_the_future"] = 7

        self.rewrite_state(out, drift)
        restored = EntityStore.restore(out)
        assert restored.clusters() == streamed_store.clusters()
        # The missing key keeps its replayed value; the unknown key is dropped.
        assert restored.counters.pairs_scored == \
            streamed_store.counters.pairs_scored
        assert not hasattr(restored.counters, "counter_from_the_future")
