"""WriteAheadLog: framing, rotation, torn-tail truncation, pruning."""

from __future__ import annotations

import json

import pytest

from repro.storage.wal import (SEGMENT_PREFIX, WALError, WriteAheadLog,
                               _HEADER)


def open_log(directory, **kwargs):
    kwargs.setdefault("fsync", False)  # tests don't need durability
    return WriteAheadLog(directory, **kwargs)


def fill(log, count, start=1):
    return [log.append({"value": index})
            for index in range(start, start + count)]


def segment_files(directory):
    return sorted(directory.glob(SEGMENT_PREFIX + "*.log"))


class TestAppendReplay:
    def test_lsns_are_dense_and_one_based(self, tmp_path):
        log = open_log(tmp_path)
        appends = fill(log, 5)
        assert [a.lsn for a in appends] == [1, 2, 3, 4, 5]
        assert log.last_lsn == 5

    def test_replay_round_trips_payloads_in_order(self, tmp_path):
        log = open_log(tmp_path)
        fill(log, 5)
        entries = list(log.replay())
        assert [e["lsn"] for e in entries] == [1, 2, 3, 4, 5]
        assert [e["value"] for e in entries] == [1, 2, 3, 4, 5]

    def test_replay_after_lsn_skips_the_prefix(self, tmp_path):
        log = open_log(tmp_path, segment_max_entries=2)
        fill(log, 7)
        assert [e["lsn"] for e in log.replay(after_lsn=3)] == [4, 5, 6, 7]

    def test_payload_must_not_carry_lsn(self, tmp_path):
        log = open_log(tmp_path)
        with pytest.raises(ValueError, match="lsn"):
            log.append({"lsn": 9})

    def test_append_reports_bytes_written(self, tmp_path):
        log = open_log(tmp_path)
        result = log.append({"value": 1})
        blob = json.dumps({"lsn": 1, "value": 1}, sort_keys=True).encode()
        assert result.nbytes == _HEADER.size + len(blob)

    def test_fsync_enabled_reports_a_latency(self, tmp_path):
        log = WriteAheadLog(tmp_path, fsync=True)
        assert log.append({"value": 1}).fsync_seconds > 0.0


class TestRotation:
    def test_segments_rotate_and_are_named_by_first_lsn(self, tmp_path):
        log = open_log(tmp_path, segment_max_entries=3)
        fill(log, 8)
        names = [path.name for path in log.segments()]
        assert names == [f"wal-{lsn:016d}.log" for lsn in (1, 4, 7)]

    def test_reopen_preserves_the_log(self, tmp_path):
        log = open_log(tmp_path, segment_max_entries=3)
        fill(log, 8)
        log.close()
        reopened = open_log(tmp_path, segment_max_entries=3)
        assert reopened.last_lsn == 8
        assert [e["value"] for e in reopened.replay()] == list(range(1, 9))
        # Appends continue exactly where the log left off.
        assert reopened.append({"value": 9}).lsn == 9


class TestTornTail:
    def test_truncated_final_entry_is_discarded(self, tmp_path):
        log = open_log(tmp_path)
        fill(log, 5)
        log.close()
        path = segment_files(tmp_path)[-1]
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])  # tear the last entry mid-payload
        reopened = open_log(tmp_path)
        assert reopened.last_lsn == 4
        assert [e["lsn"] for e in reopened.replay()] == [1, 2, 3, 4]
        # The torn bytes are gone from disk, not just skipped.
        assert len(path.read_bytes()) < len(blob) - 3

    def test_header_only_tail_is_discarded(self, tmp_path):
        # What a crash inside append leaves: header durable, payload absent.
        log = open_log(tmp_path)
        fill(log, 3)
        log.close()
        path = segment_files(tmp_path)[-1]
        with path.open("ab") as handle:
            handle.write(_HEADER.pack(1000, 0))
        assert open_log(tmp_path).last_lsn == 3

    def test_checksum_failure_at_tail_is_discarded(self, tmp_path):
        log = open_log(tmp_path)
        fill(log, 3)
        log.close()
        path = segment_files(tmp_path)[-1]
        blob = bytearray(path.read_bytes())
        blob[-2] ^= 0xFF  # flip a byte inside the final payload
        path.write_bytes(bytes(blob))
        reopened = open_log(tmp_path)
        assert reopened.last_lsn == 2
        # The next append reuses the truncated lsn.
        assert reopened.append({"value": 3}).lsn == 3

    def test_corruption_before_the_final_segment_refuses_to_open(self, tmp_path):
        log = open_log(tmp_path, segment_max_entries=2)
        fill(log, 6)
        log.close()
        first = segment_files(tmp_path)[0]
        first.write_bytes(first.read_bytes()[:-3])
        with pytest.raises(WALError, match="tear at the tail"):
            open_log(tmp_path, segment_max_entries=2)

    def test_missing_middle_segment_is_an_lsn_gap(self, tmp_path):
        log = open_log(tmp_path, segment_max_entries=2)
        fill(log, 6)
        log.close()
        segment_files(tmp_path)[1].unlink()
        with pytest.raises(WALError, match="gap"):
            open_log(tmp_path, segment_max_entries=2)


class TestPrune:
    def test_prune_deletes_only_fully_covered_segments(self, tmp_path):
        log = open_log(tmp_path, segment_max_entries=2)
        fill(log, 6)  # segments starting at 1, 3, 5
        assert log.prune(up_to_lsn=3) == 1  # lsn 4 lives in segment 3
        assert [p.name for p in log.segments()] == \
            [f"wal-{lsn:016d}.log" for lsn in (3, 5)]
        assert [e["lsn"] for e in log.replay(after_lsn=3)] == [4, 5, 6]

    def test_prune_never_deletes_the_active_segment(self, tmp_path):
        log = open_log(tmp_path, segment_max_entries=2)
        fill(log, 6)
        assert log.prune(up_to_lsn=100) == 2
        assert len(log.segments()) == 1
        assert log.last_lsn == 6

    def test_reopen_after_prune_starts_mid_sequence(self, tmp_path):
        log = open_log(tmp_path, segment_max_entries=2)
        fill(log, 6)
        log.prune(up_to_lsn=4)
        log.close()
        reopened = open_log(tmp_path, segment_max_entries=2)
        assert reopened.last_lsn == 6
        assert [e["lsn"] for e in reopened.replay()] == [5, 6]
        assert reopened.append({"value": 7}).lsn == 7


class TestStats:
    def test_stats_track_segments_entries_and_bytes(self, tmp_path):
        log = open_log(tmp_path, segment_max_entries=2)
        fill(log, 5)
        stats = log.stats()
        assert stats["last_lsn"] == 5
        assert stats["segments"] == 3
        assert stats["entries"] == 5
        assert stats["bytes"] == sum(p.stat().st_size
                                     for p in segment_files(tmp_path))

    def test_segment_max_entries_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="segment_max_entries"):
            WriteAheadLog(tmp_path, segment_max_entries=0)
