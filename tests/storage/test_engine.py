"""Storage engine: meta, auto-snapshot cadence, open/recover guards, and
the durable-service wiring (WAL fsync SLO, storage stats)."""

from __future__ import annotations

import json

import pytest

import _crash_child as child
from repro.serve.service import LinkageService, ServiceConfig
from repro.serve.store import EntityStore, StoreConfig
from repro.storage import (META_FILENAME, STORAGE_FORMAT_VERSION, Storage,
                           StorageConfig, StorageError)


@pytest.fixture(scope="module")
def records():
    return child.build_records()


def fresh_storage(data_dir, **overrides) -> Storage:
    defaults = dict(snapshot_every=child.SNAPSHOT_EVERY,
                    wal_segment_max_entries=child.SEGMENT_MAX_ENTRIES)
    defaults.update(overrides)
    return Storage(data_dir, score_fn=child.score_fn,
                   store_config=child.store_config(),
                   config=StorageConfig(**defaults))


class TestLifecycle:
    def test_meta_file_pins_the_store_config(self, tmp_path, records):
        storage = fresh_storage(tmp_path)
        storage.close()
        meta = json.loads((tmp_path / META_FILENAME).read_text(encoding="utf-8"))
        assert meta["format_version"] == STORAGE_FORMAT_VERSION
        assert StoreConfig.from_dict(meta["store_config"]) == \
            child.store_config()

    def test_recover_uses_the_meta_config_without_being_told(self, tmp_path,
                                                             records):
        storage = fresh_storage(tmp_path)
        for record in records[:5]:
            storage.upsert(record)
        storage.close()
        recovered = Storage.recover(tmp_path, score_fn=child.score_fn)
        try:
            assert recovered.store.config == child.store_config()
            assert len(recovered.store) == 5
        finally:
            recovered.close()

    def test_constructing_over_a_populated_directory_refuses(self, tmp_path,
                                                             records):
        storage = fresh_storage(tmp_path)
        for record in records[:3]:
            storage.upsert(record)
        storage.close()
        with pytest.raises(StorageError, match="recover"):
            Storage(tmp_path, score_fn=child.score_fn,
                    store_config=child.store_config())

    def test_open_dispatches_fresh_vs_recover(self, tmp_path, records):
        first = Storage.open(tmp_path / "data", score_fn=child.score_fn,
                             store_config=child.store_config())
        for record in records[:4]:
            first.upsert(record)
        first.close()
        second = Storage.open(tmp_path / "data", score_fn=child.score_fn)
        try:
            assert second.last_recovery is not None
            assert len(second.store) == 4
        finally:
            second.close()

    def test_wal_holds_one_entry_per_upsert(self, tmp_path, records):
        storage = fresh_storage(tmp_path, snapshot_every=None)
        for record in records[:6]:
            storage.upsert(record)
        # Idempotent re-upserts commit nothing and must not be logged.
        storage.upsert(records[0])
        assert storage.wal.last_lsn == 6
        assert len(storage.fsync_latency_samples()) == 6
        storage.close()


class TestCompaction:
    def test_auto_snapshot_cadence_and_wal_pruning(self, tmp_path, records):
        storage = fresh_storage(tmp_path)
        for record in records[:25]:
            storage.upsert(record)
        try:
            lsns = [lsn for lsn, _ in storage.snapshots.list()]
            assert lsns == [10, 20]  # keep=2 of the cadence snapshots
            stats = storage.stats()
            assert stats["snapshot_lsn"] == 20.0
            assert stats["wal_tail_entries"] == 5.0
            # Pruning dropped every segment fully covered by the snapshot.
            assert stats["wal_entries"] < 25
        finally:
            storage.close()

    def test_recovery_replays_only_the_tail(self, tmp_path, records):
        storage = fresh_storage(tmp_path)
        for record in records[:25]:
            storage.upsert(record)
        storage.close()
        recovered = Storage.recover(tmp_path, score_fn=child.score_fn,
                                    config=child.storage_config())
        try:
            report = recovered.last_recovery
            assert report.snapshot_lsn == 20
            assert report.replayed_entries == 5
            assert report.records == 25
        finally:
            recovered.close()

    def test_manual_snapshot_without_cadence(self, tmp_path, records):
        storage = fresh_storage(tmp_path, snapshot_every=None)
        for record in records[:7]:
            storage.upsert(record)
        path = storage.snapshot()
        try:
            assert path.exists()
            assert storage.stats()["wal_tail_entries"] == 0.0
            payload = json.loads(path.read_text(encoding="utf-8"))
            assert payload["lsn"] == 7
            assert EntityStore.from_state_dict(payload["store"]).clusters() \
                == storage.store.clusters()
        finally:
            storage.close()


class TestRecoveryGuards:
    def test_snapshot_ahead_of_wal_is_an_error(self, tmp_path, records):
        storage = fresh_storage(tmp_path)
        for record in records[:12]:
            storage.upsert(record)
        storage.close()
        for segment in list(tmp_path.glob("wal-*.log")):
            segment.unlink()
        with pytest.raises(StorageError, match="missing"):
            Storage.recover(tmp_path, score_fn=child.score_fn)

    def test_tampered_scores_fail_replay_loudly(self, tmp_path, records):
        storage = fresh_storage(tmp_path, snapshot_every=None)
        for record in records[:6]:
            storage.upsert(record)
        storage.close()
        # Drop a score from some WAL entry that recorded one: replay must
        # refuse to guess.
        segment = sorted(tmp_path.glob("wal-*.log"))[0]
        lines = []
        tampered = False
        import struct
        from zlib import crc32
        blob = segment.read_bytes()
        offset, out = 0, b""
        header = struct.Struct(">II")
        while offset < len(blob):
            length, _ = header.unpack_from(blob, offset)
            start = offset + header.size
            payload = json.loads(blob[start:start + length])
            if not tampered and payload["scores"]:
                payload["scores"].popitem()
                tampered = True
            raw = json.dumps(payload, sort_keys=True).encode("utf-8")
            out += header.pack(len(raw), crc32(raw)) + raw
            offset = start + length
        assert tampered
        segment.write_bytes(out)
        with pytest.raises(StorageError):
            Storage.recover(tmp_path, score_fn=child.score_fn)


class TestDurableService:
    def test_storage_is_mutually_exclusive_with_store_config(self, tmp_path):
        storage = fresh_storage(tmp_path)
        try:
            with pytest.raises(ValueError, match="storage"):
                LinkageService(child.HashPredictor(), storage=storage,
                               store_config=child.store_config())
        finally:
            storage.close()

    def test_durable_service_feeds_the_wal_fsync_slo(self, tmp_path, records):
        storage = fresh_storage(tmp_path, snapshot_every=None)
        config = ServiceConfig(max_wait_ms=0.5, request_timeout=30.0)
        with LinkageService(child.HashPredictor(), storage=storage,
                            service_config=config) as service:
            for record in records[:8]:
                service.upsert(record)
            assert storage.wal.last_lsn == 8
            report = service.health()
            by_name = {o["name"]: o for o in report["objectives"]}
            fsync = by_name["wal_fsync_latency"]
            assert fsync["status"] != "no_data"
            assert fsync["windows"]["600s"]["total"] == 8.0
            stats = service.stats()
            assert stats["storage"]["wal_last_lsn"] == 8.0
            out = service.snapshot()  # no path: compacted engine snapshot
            assert out.name.startswith("snapshot-")
        storage.close()
