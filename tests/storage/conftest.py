"""tests/storage fixtures: make the crash-child workload importable.

The crash harness runs ``_crash_child.py`` as a subprocess; the parent
tests import the *same module* for the corpus, configs and score function,
so both sides agree bit-for-bit on the workload.
"""

from __future__ import annotations

import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
if str(HERE) not in sys.path:
    sys.path.insert(0, str(HERE))
