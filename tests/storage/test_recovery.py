"""Crash-point harness: kill a child at every injected point, recover,
assert bit-exactness with a store that never crashed.

The child (``_crash_child.py``) streams a deterministic shuffled corpus
through a :class:`repro.storage.Storage` with tight bucket caps (so the
overflow/retraction machinery is live) and a small snapshot cadence (so
crashes land before, between, and after compactions).  The parent arms one
crash point per case, asserts the child died with the crash exit code, then
recovers the data directory and checks three things:

* the restored store's ``state_dict()`` — records, scores, support,
  entities, counters, *and index bucket state* — equals a reference store
  that upserted exactly the surviving prefix;
* the restored clusters equal one batch ``LinkagePipeline.run`` over that
  prefix (the store's core parity contract survives a crash);
* the recovered engine keeps serving: streaming the rest of the corpus
  through it lands on the same state as an uninterrupted run.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import _crash_child as child
from repro.pipeline import LinkagePipeline
from repro.serve.store import EntityStore
from repro.storage import CRASH_EXIT_CODE, Storage
from repro.storage.crashpoints import (CRASH_HITS_ENV, CRASH_POINT_ENV,
                                       CRASH_POINTS)

CHILD = Path(child.__file__).resolve()

# (crash point, hit number that kills, committed upserts that must survive).
# The WAL append is the commit point: dying before (or inside) append N
# leaves N-1 upserts, dying after it leaves N — even when the in-memory
# commit never ran.  Snapshot-point crashes happen *after* the triggering
# upsert committed, at lsn = hits * snapshot_every.
CASES = [
    ("before_wal_append", 3, 2),
    ("before_wal_append", 14, 13),   # crosses the lsn-10 snapshot
    ("mid_wal_append", 3, 2),        # torn tail: header durable, payload not
    ("after_wal_append", 3, 3),      # WAL ahead of the in-memory store
    ("after_wal_append", 14, 14),
    ("after_commit", 3, 3),
    ("before_snapshot_rename", 2, 2 * child.SNAPSHOT_EVERY),
    ("after_snapshot_rename", 2, 2 * child.SNAPSHOT_EVERY),
]


def run_child(data_dir: Path, point=None, hits=1) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env.pop(CRASH_POINT_ENV, None)
    env.pop(CRASH_HITS_ENV, None)
    if point is not None:
        env[CRASH_POINT_ENV] = point
        env[CRASH_HITS_ENV] = str(hits)
    return subprocess.run([sys.executable, str(CHILD), str(data_dir)],
                         env=env, capture_output=True, text=True)


@pytest.fixture(scope="module")
def records():
    stream = child.build_records()
    # Every case needs a strict prefix to survive AND a remainder to
    # continue with; the snapshot cases survive 2 * SNAPSHOT_EVERY records.
    assert len(stream) > 2 * child.SNAPSHOT_EVERY + 1
    return stream


@pytest.fixture(scope="module")
def reference(records):
    """One uninterrupted reference stream, with its state captured at every
    prefix length a crash case can leave behind."""
    needed = {expected for _, _, expected in CASES}
    store = EntityStore(score_fn=child.score_fn, config=child.store_config())
    states = {}
    for count, record in enumerate(records, start=1):
        store.upsert(record)
        if count in needed:
            states[count] = (store.state_dict(), store.clusters())
    return {"prefix": states, "full_state": store.state_dict(),
            "full_clusters": store.clusters()}


@pytest.fixture(scope="module")
def batch_clusters(records):
    """Batch-pipeline clusters over every surviving-prefix length."""
    config = child.store_config().to_pipeline_config()
    return {n: LinkagePipeline(child.HashPredictor(),
                               config=config).run(records[:n]).clusters.clusters
            for n in {expected for _, _, expected in CASES}}


def test_case_table_covers_every_crash_point():
    assert {point for point, _, _ in CASES} == set(CRASH_POINTS)


@pytest.mark.parametrize("point,hits,expected",
                         CASES, ids=[f"{p}-hit{h}" for p, h, _ in CASES])
def test_recovery_is_bit_exact_at_every_crash_point(tmp_path, records,
                                                    reference, batch_clusters,
                                                    point, hits, expected):
    data_dir = tmp_path / "data"
    proc = run_child(data_dir, point=point, hits=hits)
    assert proc.returncode == CRASH_EXIT_CODE, (proc.stdout, proc.stderr)

    storage = Storage.recover(data_dir, score_fn=child.score_fn,
                              config=child.storage_config())
    try:
        assert len(storage.store) == expected

        ref_state, ref_clusters = reference["prefix"][expected]
        assert storage.store.state_dict() == ref_state
        assert storage.store.clusters() == ref_clusters
        assert storage.store.clusters() == batch_clusters[expected]
        assert storage.wal.last_lsn == expected

        # The recovered engine is live: finish the stream through it and
        # land exactly where the uninterrupted run did.
        for record in records[expected:]:
            storage.upsert(record)
        assert storage.store.state_dict() == reference["full_state"]
        assert storage.store.clusters() == reference["full_clusters"]
    finally:
        storage.close()


def test_clean_run_recovers_fully(tmp_path, reference):
    data_dir = tmp_path / "data"
    proc = run_child(data_dir)
    assert proc.returncode == 0, (proc.stdout, proc.stderr)
    storage = Storage.recover(data_dir, score_fn=child.score_fn,
                              config=child.storage_config())
    try:
        assert storage.store.state_dict() == reference["full_state"]
        assert storage.store.clusters() == reference["full_clusters"]
        report = storage.last_recovery
        # The snapshot did its job: the replayed tail is shorter than the log.
        assert report.snapshot_lsn > 0
        assert report.replayed_entries < report.records
    finally:
        storage.close()


def test_double_crash_then_recover(tmp_path, records, reference):
    """A second crash over an already-crashed directory still recovers."""
    data_dir = tmp_path / "data"
    proc = run_child(data_dir, point="after_wal_append", hits=5)
    assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
    # Recover and continue a little, then crash again mid-append.
    storage = Storage.recover(data_dir, score_fn=child.score_fn,
                              config=child.storage_config())
    for record in records[5:8]:
        storage.upsert(record)
    storage.close()
    ref = EntityStore(score_fn=child.score_fn, config=child.store_config())
    for record in records[:8]:
        ref.upsert(record)
    recovered = Storage.recover(data_dir, score_fn=child.score_fn,
                                config=child.storage_config())
    try:
        assert recovered.store.state_dict() == ref.state_dict()
    finally:
        recovered.close()
