"""Workload for the crash-point harness (run as a subprocess, or imported
by the parent test for the *identical* corpus / scoring / configs).

Deterministic across processes by construction: the corpus generator is
seeded, the shuffle rng is seeded, and scoring hashes the pair id with the
process-stable FNV hash (``repro.text.hashing.stable_hash``) — no model, no
``PYTHONHASHSEED`` dependence.  The parent arms a crash point through the
``REPRO_STORAGE_CRASH_POINT`` / ``REPRO_STORAGE_CRASH_HITS`` environment
variables and expects this process to die mid-upsert with
``repro.storage.CRASH_EXIT_CODE``.
"""

from __future__ import annotations

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.data.generators import (MusicCorpusGenerator,  # noqa: E402
                                   MusicGeneratorConfig)
from repro.serve.store import StoreConfig  # noqa: E402
from repro.storage import Storage, StorageConfig  # noqa: E402
from repro.text.hashing import stable_hash  # noqa: E402

SNAPSHOT_EVERY = 10
SEGMENT_MAX_ENTRIES = 8


def build_records(num_entities: int = 12, seed: int = 11):
    corpus = MusicCorpusGenerator(
        "artist", MusicGeneratorConfig(num_entities=num_entities),
        seed=seed).generate()
    records = list(corpus.records)
    np.random.default_rng(3).shuffle(records)
    return records


def score_fn(pairs):
    return np.array([(stable_hash(pair.pair_id) % 1000) / 999.0
                     for pair in pairs])


class HashPredictor:
    """The BatchedPredictor surface LinkagePipeline needs, over score_fn —
    so batch-parity checks run without training a model."""

    micro_batch_size = 64

    class _Encoder:
        cache = None

    encoder = _Encoder()

    def predict_proba(self, pairs):
        return score_fn(pairs)

    def stats(self):
        return {}

    def predict_proba_stream(self, pairs, chunk_size):
        pairs = list(pairs)
        for start in range(0, len(pairs), chunk_size):
            chunk = pairs[start:start + chunk_size]
            yield chunk, score_fn(chunk)


def store_config() -> StoreConfig:
    # Tiny caps put the stream deep into the overflow/retraction regime.
    return StoreConfig(lsh_max_bucket_size=2, max_postings=2,
                       initials_max_bucket_size=2)


def storage_config() -> StorageConfig:
    return StorageConfig(snapshot_every=SNAPSHOT_EVERY,
                         wal_segment_max_entries=SEGMENT_MAX_ENTRIES)


def run(data_dir: str) -> None:
    storage = Storage(Path(data_dir), score_fn=score_fn,
                      store_config=store_config(), config=storage_config())
    for record in build_records():
        storage.upsert(record)
    storage.close()


if __name__ == "__main__":
    run(sys.argv[1])
