"""Tests for the text substrate: tokenisation, hashing, embeddings, similarity."""

import numpy as np
import pytest

from repro.text import (
    HashedEmbedder,
    HashedVectorTable,
    Tokenizer,
    Vocabulary,
    char_ngrams,
    crop_tokens,
    dice_similarity,
    exact_match,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    length_difference,
    levenshtein_distance,
    levenshtein_similarity,
    missing_value_vector,
    monge_elkan_similarity,
    normalize_text,
    overlap_coefficient,
    similarity_vector,
    stable_hash,
    token_cosine_similarity,
    tokenize,
)


class TestTokenizer:
    def test_lowercase_and_split(self):
        assert tokenize("Sweet Caroline") == ["sweet", "caroline"]

    def test_accent_stripping(self):
        assert tokenize("Björk") == ["bjork"]

    def test_empty_and_none(self):
        assert tokenize("") == []
        assert tokenize(None) == []

    def test_punctuation_separated(self):
        tokens = tokenize("rock & roll!")
        assert "rock" in tokens and "roll" in tokens

    def test_abbreviation_tokens(self):
        assert "n." in tokenize("N. D.")

    def test_normalize_collapses_whitespace(self):
        assert normalize_text("  a   b  ") == "a b"

    def test_crop_tokens(self):
        assert crop_tokens(list("abcdefgh"), 3) == ["a", "b", "c"]

    def test_crop_invalid(self):
        with pytest.raises(ValueError):
            crop_tokens(["a"], 0)

    def test_tokenizer_callable_drops_punct(self):
        tok = Tokenizer(crop_size=10)
        assert all(any(c.isalnum() for c in t) for t in tok("hello, world!"))

    def test_tokenizer_crop_applied(self):
        tok = Tokenizer(crop_size=2)
        assert len(tok("one two three four")) == 2


class TestHashing:
    def test_stable_hash_deterministic(self):
        assert stable_hash("adamel") == stable_hash("adamel")
        assert stable_hash("adamel", salt=1) != stable_hash("adamel", salt=2)

    def test_char_ngrams_boundaries(self):
        grams = char_ngrams("cat", min_n=3, max_n=3)
        assert "<ca" in grams and "at>" in grams

    def test_char_ngrams_invalid_range(self):
        with pytest.raises(ValueError):
            char_ngrams("cat", min_n=3, max_n=2)

    def test_vector_table_deterministic(self):
        table_a = HashedVectorTable(dim=8, seed=5)
        table_b = HashedVectorTable(dim=8, seed=5)
        assert np.allclose(table_a.vector("neil"), table_b.vector("neil"))

    def test_vector_table_seed_changes_vectors(self):
        assert not np.allclose(HashedVectorTable(dim=8, seed=1).vector("x"),
                               HashedVectorTable(dim=8, seed=2).vector("x"))

    def test_vectors_stacking(self):
        table = HashedVectorTable(dim=4)
        assert table.vectors(["a", "b", "c"]).shape == (3, 4)
        assert table.vectors([]).shape == (0, 4)


class TestEmbeddings:
    def test_embedding_dim(self):
        emb = HashedEmbedder(dim=12)
        assert emb.embed_token("diamond").shape == (12,)

    def test_determinism_across_instances(self):
        assert np.allclose(HashedEmbedder(dim=16).embed_token("neil"),
                           HashedEmbedder(dim=16).embed_token("neil"))

    def test_empty_tokens_use_missing_vector(self):
        emb = HashedEmbedder(dim=8)
        assert np.allclose(emb.embed_tokens([]), missing_value_vector(8))

    def test_missing_vector_is_unit_norm_nonzero(self):
        vec = missing_value_vector(10)
        assert np.isclose(np.linalg.norm(vec), 1.0)
        assert np.all(vec != 0)

    def test_subword_similarity_property(self):
        """Shared character n-grams make related surface forms more similar."""
        emb = HashedEmbedder(dim=64)
        similar = emb.similarity("diamond", "diamonds")
        unrelated = emb.similarity("diamond", "xylophone")
        assert similar > unrelated

    def test_token_matrix_padding(self):
        emb = HashedEmbedder(dim=8)
        matrix = emb.embed_token_matrix(["a", "b"], length=5)
        assert matrix.shape == (5, 8)
        assert np.allclose(matrix[2:], 0.0)

    def test_embed_text_uses_tokenizer(self):
        emb = HashedEmbedder(dim=8)
        assert emb.embed_text("Neil Diamond").shape == (8,)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            HashedEmbedder(dim=0)


class TestVocabulary:
    def test_build_and_encode(self):
        vocab = Vocabulary.build([["a", "b"], ["a", "c"]])
        ids = vocab.encode(["a", "z"], length=4)
        assert len(ids) == 4
        assert ids[1] == vocab.unk_id
        assert ids[2] == vocab.pad_id

    def test_min_frequency_filtering(self):
        vocab = Vocabulary.build([["rare"], ["common"], ["common"]], min_frequency=2)
        assert "common" in vocab and "rare" not in vocab

    def test_encode_before_finalize_raises(self):
        vocab = Vocabulary()
        with pytest.raises(RuntimeError):
            vocab.encode(["a"], 2)

    def test_update_after_finalize_raises(self):
        vocab = Vocabulary.build([["a"]])
        with pytest.raises(RuntimeError):
            vocab.update(["b"])


class TestSimilarity:
    def test_jaccard(self):
        assert jaccard_similarity("a b c", "a b d") == pytest.approx(0.5)
        assert jaccard_similarity("", "") == 0.0

    def test_overlap_and_dice(self):
        assert overlap_coefficient("a b", "a b c d") == pytest.approx(1.0)
        assert dice_similarity("a b", "a b") == pytest.approx(1.0)

    def test_levenshtein(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("same", "same") == 0
        assert levenshtein_similarity("abc", "abc") == 1.0

    def test_jaro_winkler_prefix_boost(self):
        assert jaro_winkler_similarity("martha", "marhta") >= jaro_similarity("martha", "marhta")

    def test_jaro_edge_cases(self):
        assert jaro_similarity("", "") == 0.0
        assert jaro_similarity("abc", "abc") == 1.0

    def test_monge_elkan_handles_abbreviation(self):
        score = monge_elkan_similarity("Neil Diamond", "Neil D")
        assert score > 0.5

    def test_cosine_identical(self):
        assert token_cosine_similarity("hello world", "hello world") == pytest.approx(1.0)

    def test_exact_match_normalised(self):
        assert exact_match("Hello  World", "hello world") == 1.0
        assert exact_match("", "") == 0.0

    def test_length_difference(self):
        assert length_difference("a b c d", "a b") == pytest.approx(0.5)

    def test_similarity_vector_bounds(self):
        vec = similarity_vector("Sweet Caroline", "Sweet Caroline Neil")
        assert vec.shape[0] == 9
        assert np.all(vec >= 0.0) and np.all(vec <= 1.0)

    def test_similarity_vector_unknown_measure(self):
        with pytest.raises(KeyError):
            similarity_vector("a", "b", measures=["bogus"])
