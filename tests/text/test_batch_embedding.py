"""Bit-exactness of the batched text-layer primitives."""

from __future__ import annotations

import numpy as np

from repro.text import HashedEmbedder, HashedVectorTable, Tokenizer

TOKENS = ["neil", "diamond", "n.", "d.", "ebay.com", "a", "xy",
          "extraordinarily-long-token-value", "1989", "café"]


class TestBatchEmbedding:
    def test_embed_token_batch_matches_embed_token(self):
        reference = HashedEmbedder(dim=24)
        reference._cache.clear()
        expected = np.stack([reference.embed_token(token) for token in TOKENS])
        batch = HashedEmbedder(dim=24)
        batch._cache.clear()
        actual = batch.embed_token_batch(TOKENS)
        assert np.array_equal(expected, actual)

    def test_embed_token_batch_with_partial_cache(self):
        embedder = HashedEmbedder(dim=16)
        embedder._cache.clear()
        expected = np.stack([embedder.embed_token(token) for token in TOKENS[:4]])
        embedder._cache.clear()
        embedder.embed_token(TOKENS[1])  # warm one token only
        actual = embedder.embed_token_batch(TOKENS[:4])
        assert np.array_equal(expected, actual)

    def test_empty_batch(self):
        assert HashedEmbedder(dim=8).embed_token_batch([]).shape == (0, 8)

    def test_shared_token_cache_across_instances(self):
        a = HashedEmbedder(dim=16, seed=29)
        a._cache.clear()
        vec = a.embed_token("sharedtoken")
        b = HashedEmbedder(dim=16, seed=29)
        assert "sharedtoken" in b._cache
        assert np.array_equal(vec, b.embed_token("sharedtoken"))
        different_dim = HashedEmbedder(dim=8, seed=29)
        assert different_dim._cache is not a._cache


class TestVectorTableBatch:
    def test_vectors_match_per_key_lookup(self):
        table = HashedVectorTable(dim=12, seed=7)
        keys = [f"key-{i}" for i in range(20)]
        expected = np.stack([table.vector(key) for key in keys])
        fresh = HashedVectorTable(dim=12, seed=7)
        assert np.array_equal(expected, fresh.vectors(keys))

    def test_buckets_match_bucket(self):
        table = HashedVectorTable(dim=4, seed=3)
        keys = ["alpha", "beta", "gamma"]
        assert table.buckets(keys).tolist() == [table.bucket(key) for key in keys]


class TestTokenizerMemo:
    def test_memo_returns_equal_fresh_lists(self):
        tokenizer = Tokenizer(crop_size=5)
        first = tokenizer("Neil Diamond & The Band play 9 songs tonight")
        second = tokenizer("Neil Diamond & The Band play 9 songs tonight")
        assert first == second
        assert first is not second  # callers may mutate their copy safely
        first.append("mutated")
        assert tokenizer("Neil Diamond & The Band play 9 songs tonight") == second

    def test_fingerprint_distinguishes_configs(self):
        assert Tokenizer(crop_size=5).fingerprint() != Tokenizer(crop_size=6).fingerprint()
        assert (Tokenizer(keep_punctuation=True).fingerprint()
                != Tokenizer(keep_punctuation=False).fingerprint())

    def test_identity_fingerprints_unique_across_lifetimes(self):
        """Regression: the default identity fingerprint must never repeat,
        even when a dead embedder's memory address is reused."""
        from repro.text.embeddings import TokenEmbedder

        class Opaque(TokenEmbedder):  # no fingerprint override
            dim = 4

        seen = set()
        for _ in range(50):
            fp = Opaque().fingerprint()  # object freed each iteration
            assert fp not in seen
            seen.add(fp)
