"""Tests for the baseline matchers (TLER + the four deep baselines)."""

import numpy as np
import pytest

from repro.baselines import (
    TLER,
    BaselineConfig,
    CorDelAttention,
    DeepMatcher,
    Ditto,
    EntityMatcher,
    TLERConfig,
)

FAST_BASELINE_CONFIG = BaselineConfig(embedding_dim=16, hidden_dim=8, classifier_hidden_dim=12,
                                      tokens_per_attribute=4, epochs=2, batch_size=8, seed=0)

DEEP_BASELINES = [
    ("deepmatcher", lambda: DeepMatcher(FAST_BASELINE_CONFIG)),
    ("entitymatcher", lambda: EntityMatcher(FAST_BASELINE_CONFIG)),
    ("ditto", lambda: Ditto(FAST_BASELINE_CONFIG)),
    ("cordel-attention", lambda: CorDelAttention(FAST_BASELINE_CONFIG)),
]


class TestBaselineConfig:
    def test_invalid_values(self):
        with pytest.raises(ValueError):
            BaselineConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            BaselineConfig(learning_rate=-1)


class TestTLER:
    def test_fit_predict_evaluate(self, music_scenario):
        model = TLER()
        losses = model.fit(music_scenario)
        assert losses[-1] <= losses[0]
        scores = model.predict_proba(music_scenario.test.pairs[:10])
        assert scores.shape == (10,)
        assert np.all((scores >= 0) & (scores <= 1))
        report = model.evaluate(music_scenario.test.pairs)
        assert 0.0 <= report.pr_auc <= 1.0

    def test_predict_before_fit(self, music_scenario):
        with pytest.raises(RuntimeError):
            TLER().predict_proba(music_scenario.test.pairs[:2])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TLERConfig(measures=("bogus",))
        with pytest.raises(ValueError):
            TLERConfig(epochs=0)

    def test_num_parameters(self, music_scenario):
        model = TLER()
        model.fit(music_scenario)
        expected = len(music_scenario.aligned_schema()) * len(TLERConfig().measures) + 1
        assert model.num_parameters() == expected

    def test_support_set_reuse_option(self, music_scenario):
        with_support = TLER(TLERConfig(use_support_set=True, epochs=50))
        without_support = TLER(TLERConfig(use_support_set=False, epochs=50))
        with_support.fit(music_scenario)
        without_support.fit(music_scenario)
        pairs = music_scenario.test.pairs[:20]
        assert not np.allclose(with_support.predict_proba(pairs),
                               without_support.predict_proba(pairs))


class TestDeepBaselines:
    @pytest.mark.parametrize("name,factory", DEEP_BASELINES)
    def test_fit_and_predict(self, name, factory, music_scenario):
        model = factory()
        losses = model.fit(music_scenario)
        assert len(losses) == FAST_BASELINE_CONFIG.epochs
        assert np.isfinite(losses[-1])
        scores = model.predict_proba(music_scenario.test.pairs[:8])
        assert scores.shape == (8,)
        assert np.all((scores >= 0) & (scores <= 1))

    @pytest.mark.parametrize("name,factory", DEEP_BASELINES)
    def test_predict_before_fit_raises(self, name, factory, music_scenario):
        with pytest.raises(RuntimeError):
            factory().predict_proba(music_scenario.test.pairs[:2])

    @pytest.mark.parametrize("name,factory", DEEP_BASELINES)
    def test_num_parameters(self, name, factory, music_scenario):
        model = factory()
        model.fit(music_scenario)
        assert model.num_parameters() > 0

    def test_deepmatcher_can_learn_separable_task(self, music_scenario):
        """Training for several epochs lowers the loss on the training data."""
        config = BaselineConfig(embedding_dim=16, hidden_dim=8, classifier_hidden_dim=12,
                                tokens_per_attribute=4, epochs=8, batch_size=8, seed=0)
        model = DeepMatcher(config)
        losses = model.fit(music_scenario)
        assert losses[-1] < losses[0]

    def test_ditto_serialisation_length(self, music_scenario):
        model = Ditto(FAST_BASELINE_CONFIG, tokens_per_value=3)
        model.fit(music_scenario)
        encoded = model._encode_pairs(music_scenario.test.pairs[:2])
        num_attrs = len(music_scenario.aligned_schema())
        assert encoded.shape[1] == 2 * num_attrs * (3 + 3) + 1

    def test_ditto_augmentation_adds_pairs(self, music_scenario):
        model = Ditto(FAST_BASELINE_CONFIG, augmentation_rate=1.0)
        model.fit(music_scenario)
        rng = np.random.default_rng(0)
        augmented = model._augment(music_scenario.source.pairs, rng)
        assert len(augmented) > len(music_scenario.source.pairs)

    def test_ditto_invalid_args(self):
        with pytest.raises(ValueError):
            Ditto(tokens_per_value=0)
        with pytest.raises(ValueError):
            Ditto(augmentation_rate=2.0)

    def test_cordel_contrast_encoding_separates_shared_and_diff(self, music_scenario):
        model = CorDelAttention(FAST_BASELINE_CONFIG)
        model.fit(music_scenario)
        positives = [pair for pair in music_scenario.test.pairs if pair.label == 1][:4]
        encoded = model._encode_pairs(positives)
        assert encoded.shape[2] == 2  # shared / difference groups

    def test_use_support_set_flag(self, music_scenario):
        config = BaselineConfig(embedding_dim=16, hidden_dim=8, classifier_hidden_dim=12,
                                tokens_per_attribute=4, epochs=1, batch_size=8,
                                use_support_set=True)
        model = DeepMatcher(config)
        pairs = model._training_pairs(music_scenario.align())
        assert len(pairs) == len(music_scenario.source) + len(music_scenario.support)


class TestBaselineReplayEngine:
    """Graph-replay fast path in the shared baseline training loop."""

    @pytest.mark.parametrize("cls", [DeepMatcher, EntityMatcher, CorDelAttention])
    def test_replay_is_bit_exact_with_eager(self, cls, music_scenario):
        import dataclasses
        eager_cfg = dataclasses.replace(FAST_BASELINE_CONFIG, execution="eager")
        replay_cfg = dataclasses.replace(FAST_BASELINE_CONFIG, execution="replay")
        eager = cls(eager_cfg)
        eager_history = eager.fit(music_scenario)
        replay = cls(replay_cfg)
        replay_history = replay.fit(music_scenario)
        assert eager_history == replay_history
        for p_eager, p_replay in zip(eager.network.parameters(),
                                     replay.network.parameters()):
            assert np.array_equal(p_eager.data, p_replay.data)

    def test_ditto_stays_eager(self, music_scenario):
        """Ditto's embedding lookups are not capture-safe; it must not opt in."""
        model = Ditto(FAST_BASELINE_CONFIG)
        model.fit(music_scenario)
        assert not getattr(model.network, "replay_safe", False)

    def test_invalid_execution_rejected(self):
        with pytest.raises(ValueError):
            BaselineConfig(execution="jit")
