"""Tests for the AdaMEL network, losses, trainer and variants."""

import numpy as np
import pytest

from repro.core import (
    AdaMELBase,
    AdaMELConfig,
    AdaMELFew,
    AdaMELHybrid,
    AdaMELNetwork,
    AdaMELZero,
    attention_centroids,
    base_loss,
    centroid_mean_distances,
    combine_losses,
    create_variant,
    support_loss,
    target_adaptation_loss,
)
from repro.nn import Tensor


class TestConfig:
    def test_defaults_valid(self):
        config = AdaMELConfig()
        assert config.adaptation_weight == pytest.approx(0.98)
        assert config.support_weight == pytest.approx(1.0)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            AdaMELConfig(embedding_dim=0)
        with pytest.raises(ValueError):
            AdaMELConfig(adaptation_weight=1.5)
        with pytest.raises(ValueError):
            AdaMELConfig(feature_kinds=("bogus",))
        with pytest.raises(ValueError):
            AdaMELConfig(dropout=1.0)

    def test_with_updates(self):
        config = AdaMELConfig().with_updates(epochs=7)
        assert config.epochs == 7
        assert AdaMELConfig().epochs != 7 or True  # original untouched (frozen dataclass)

    def test_paper_scale(self):
        paper = AdaMELConfig.paper_scale()
        assert paper.embedding_dim == 300
        assert paper.hidden_dim == 64


class TestNetwork:
    @pytest.fixture
    def network(self, fast_config):
        return AdaMELNetwork(num_features=6, embedding_dim=fast_config.embedding_dim,
                             config=fast_config, rng=np.random.default_rng(0))

    def test_forward_shapes(self, network, fast_config):
        features = np.random.rand(5, 6, fast_config.embedding_dim)
        out = network.forward(features)
        assert out.probabilities.shape == (5,)
        assert out.attention.shape == (5, 6)
        assert out.latent.shape == (5, 6, fast_config.hidden_dim)

    def test_probabilities_in_unit_interval(self, network, fast_config):
        probs = network.predict_proba(np.random.rand(4, 6, fast_config.embedding_dim))
        assert np.all(probs >= 0) and np.all(probs <= 1)

    def test_attention_sums_to_one(self, network, fast_config):
        attention = network.attention_numpy(np.random.rand(4, 6, fast_config.embedding_dim))
        assert np.allclose(attention.sum(axis=1), 1.0)

    def test_input_shape_validation(self, network):
        with pytest.raises(ValueError):
            network.forward(np.random.rand(3, 4, 5))

    def test_parameter_breakdown_matches_section_4_5(self, fast_config):
        """O(F·D·H) + O(H·H') + classifier — the counts should add up."""
        network = AdaMELNetwork(num_features=4, embedding_dim=fast_config.embedding_dim,
                                config=fast_config, rng=np.random.default_rng(0))
        breakdown = network.parameter_breakdown()
        F, D, H = 4, fast_config.embedding_dim, fast_config.hidden_dim
        Hp = fast_config.attention_dim
        assert breakdown["per_feature_affine"] == F * D * H + F * H
        assert breakdown["attention_embedding"] == Hp * H + Hp
        assert breakdown["total"] == network.num_parameters()

    def test_invalid_constructor_args(self, fast_config):
        with pytest.raises(ValueError):
            AdaMELNetwork(num_features=0, embedding_dim=8, config=fast_config)


class TestLosses:
    def test_base_loss_perfect(self):
        loss = base_loss(Tensor([1.0, 0.0]), np.array([1, 0]))
        assert float(loss.data) < 1e-6

    def test_target_adaptation_loss_zero_when_identical(self):
        attention = Tensor(np.full((4, 3), 1.0 / 3))
        mean = np.full(3, 1.0 / 3)
        assert float(target_adaptation_loss(attention, mean).data) == pytest.approx(0.0, abs=1e-9)

    def test_target_adaptation_loss_positive_when_different(self):
        attention = Tensor(np.array([[0.8, 0.1, 0.1]]))
        mean = np.array([0.1, 0.1, 0.8])
        assert float(target_adaptation_loss(attention, mean).data) > 0.1

    def test_target_adaptation_requires_vector(self):
        with pytest.raises(ValueError):
            target_adaptation_loss(Tensor(np.ones((2, 3)) / 3), np.ones((2, 3)) / 3)

    def test_attention_centroids(self):
        attention = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        labels = np.array([1, 1, 0])
        c_plus, c_minus = attention_centroids(attention, labels)
        assert np.allclose(c_plus, [0.5, 0.5])
        assert np.allclose(c_minus, [0.5, 0.5])

    def test_attention_centroids_missing_class_falls_back(self):
        attention = np.array([[0.2, 0.8], [0.4, 0.6]])
        c_plus, c_minus = attention_centroids(attention, np.array([1, 1]))
        assert np.allclose(c_minus, attention.mean(axis=0))

    def test_centroid_mean_distances_positive(self):
        attention = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5], [0.7, 0.3]])
        labels = np.array([1, 1, 0, 0])
        c_plus, c_minus = attention_centroids(attention, labels)
        d_plus, d_minus = centroid_mean_distances(attention, labels, c_plus, c_minus)
        assert d_plus > 0 and d_minus > 0

    def test_support_loss_emphasises_deviating_pairs(self):
        probabilities = Tensor([0.6, 0.6])
        attention = Tensor(np.array([[0.5, 0.5], [0.9, 0.1]]))
        labels = np.array([1, 1])
        c_plus = np.array([0.5, 0.5])
        loss = support_loss(probabilities, attention, labels, c_plus, c_plus, 0.1, 0.1)
        assert float(loss.data) > 0

    def test_combine_losses_variants(self):
        base = Tensor([0.5]).sum()
        target = Tensor([0.2]).sum()
        support = Tensor([0.3]).sum()
        assert float(combine_losses(l_base=base).data) == pytest.approx(0.5)
        zero = combine_losses(l_base=base, l_target=target, adaptation_weight=0.98)
        assert float(zero.data) == pytest.approx(0.02 * 0.5 + 0.98 * 0.2)
        few = combine_losses(l_base=base, l_support=support, support_weight=0.5)
        assert float(few.data) == pytest.approx(0.5 + 0.15)
        hybrid = combine_losses(l_base=base, l_target=target, l_support=support,
                                adaptation_weight=0.5, support_weight=1.0)
        assert float(hybrid.data) == pytest.approx(0.25 + 0.1 + 0.3)

    def test_combine_losses_requires_base(self):
        with pytest.raises(ValueError):
            combine_losses(l_base=None)


class TestTrainerAndVariants:
    def test_base_variant_trains_and_predicts(self, music_scenario, fast_config):
        model = AdaMELBase(fast_config)
        history = model.fit(music_scenario)
        assert history.epochs == fast_config.epochs
        assert np.isfinite(history.final_loss())
        scores = model.predict_proba(music_scenario.test.pairs[:10])
        assert scores.shape == (10,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_training_reduces_loss(self, music_scenario):
        config = AdaMELConfig(embedding_dim=16, hidden_dim=8, attention_dim=12,
                              classifier_hidden_dim=12, epochs=10, batch_size=8, seed=1)
        model = AdaMELBase(config)
        history = model.fit(music_scenario)
        assert history.total_loss[-1] < history.total_loss[0]

    def test_zero_variant_uses_target_loss(self, music_scenario, fast_config):
        model = AdaMELZero(fast_config)
        history = model.fit(music_scenario)
        assert any(value > 0 for value in history.target_loss)

    def test_few_variant_uses_support_loss(self, music_scenario, fast_config):
        model = AdaMELFew(fast_config)
        history = model.fit(music_scenario)
        assert any(value > 0 for value in history.support_loss)

    def test_hybrid_uses_both(self, music_scenario, fast_config):
        model = AdaMELHybrid(fast_config)
        history = model.fit(music_scenario)
        assert any(value > 0 for value in history.target_loss)
        assert any(value > 0 for value in history.support_loss)

    def test_predict_before_fit_raises(self, music_scenario, fast_config):
        model = AdaMELBase(fast_config)
        with pytest.raises(RuntimeError):
            model.predict_proba(music_scenario.test.pairs[:2])

    def test_attention_scores_rows_normalised(self, music_scenario, fast_config):
        model = AdaMELZero(fast_config)
        model.fit(music_scenario)
        attention = model.attention_scores(music_scenario.test.pairs[:8])
        assert attention.shape[1] == model.encoder.num_features
        assert np.allclose(attention.sum(axis=1), 1.0)

    def test_feature_importance_names_match_schema(self, music_scenario, fast_config):
        model = AdaMELZero(fast_config)
        model.fit(music_scenario)
        report = model.feature_importance(music_scenario.test.pairs[:20])
        schema = music_scenario.aligned_schema()
        assert len(report) == 2 * len(schema)
        assert sum(fi.score for fi in report) == pytest.approx(1.0, abs=1e-6)

    def test_evaluate_returns_report(self, music_scenario, fast_config):
        model = AdaMELBase(fast_config)
        model.fit(music_scenario)
        report = model.evaluate(music_scenario.test.pairs)
        assert 0.0 <= report.pr_auc <= 1.0
        assert report.num_pairs == len(music_scenario.test)

    def test_evaluate_requires_labels(self, music_scenario, fast_config):
        model = AdaMELBase(fast_config)
        model.fit(music_scenario)
        with pytest.raises(ValueError):
            model.evaluate([pair.unlabeled() for pair in music_scenario.test.pairs[:5]])

    def test_reproducible_given_seed(self, music_scenario, fast_config):
        model_a = AdaMELBase(fast_config)
        model_a.fit(music_scenario)
        model_b = AdaMELBase(fast_config)
        model_b.fit(music_scenario)
        pairs = music_scenario.test.pairs[:10]
        assert np.allclose(model_a.predict_proba(pairs), model_b.predict_proba(pairs))

    def test_ablation_feature_kinds_change_feature_count(self, music_scenario, fast_config):
        model = AdaMELBase(fast_config.with_updates(feature_kinds=("shared",)))
        model.fit(music_scenario)
        assert model.encoder.num_features == len(music_scenario.aligned_schema())

    def test_create_variant_factory(self, fast_config):
        assert isinstance(create_variant("zero", fast_config), AdaMELZero)
        assert isinstance(create_variant("adamel-hyb", fast_config), AdaMELHybrid)
        with pytest.raises(KeyError):
            create_variant("nonexistent")

    def test_num_parameters_positive(self, music_scenario, fast_config):
        model = AdaMELBase(fast_config)
        model.fit(music_scenario)
        assert model.num_parameters() > 0
