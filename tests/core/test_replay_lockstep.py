"""Lockstep and policy tests for the trainer's graph-replay fast path.

The headline guarantee: with the default float64 dtype, training with the
graph-replay engine is **bit-exact** with the eager engine — identical loss
histories and identical parameters after every epoch — including the eager
fallback/extra-graph handling of the final partial mini-batch.
"""

import numpy as np
import pytest

from repro.core import (AdaMELBase, AdaMELConfig, AdaMELFew, AdaMELHybrid,
                        AdaMELZero)
from repro.experiments.scenarios import ExperimentScale, build_scenario


@pytest.fixture(scope="module")
def smoke_scale():
    return ExperimentScale.smoke()


@pytest.fixture(scope="module")
def music_scenario(smoke_scale):
    return build_scenario("music3k", "artist", mode="overlapping",
                          scale=smoke_scale, seed=0).align()


def _fit_pair(cls, config, scenario):
    eager = cls(config.with_updates(execution="eager"))
    eager_history = eager.fit(scenario)
    replay = cls(config.with_updates(execution="replay"))
    replay_history = replay.fit(scenario)
    return eager, eager_history, replay, replay_history


class TestLockstep:
    def test_hybrid_three_epochs_bit_exact(self, smoke_scale, music_scenario):
        """Acceptance: 3 epochs of music3k — identical losses and parameters."""
        config = smoke_scale.adamel_config(epochs=3)
        eager, eh, replay, rh = _fit_pair(AdaMELHybrid, config, music_scenario)
        assert eh.total_loss == rh.total_loss
        assert eh.base_loss == rh.base_loss
        assert eh.target_loss == rh.target_loss
        assert eh.support_loss == rh.support_loss
        for p_eager, p_replay in zip(eager.network.parameters(),
                                     replay.network.parameters()):
            assert np.array_equal(p_eager.data, p_replay.data)

    @pytest.mark.parametrize("cls", [AdaMELBase, AdaMELZero, AdaMELFew])
    def test_all_variants_bit_exact(self, cls, smoke_scale, music_scenario):
        config = smoke_scale.adamel_config(epochs=2)
        eager, eh, replay, rh = _fit_pair(cls, config, music_scenario)
        assert eh.total_loss == rh.total_loss
        for p_eager, p_replay in zip(eager.network.parameters(),
                                     replay.network.parameters()):
            assert np.array_equal(p_eager.data, p_replay.data)

    def test_partial_batches_compile_second_graph(self, smoke_scale, music_scenario):
        """A batch size that never divides the pool exercises the second graph."""
        config = smoke_scale.adamel_config(epochs=2, batch_size=13)
        eager, eh, replay, rh = _fit_pair(AdaMELHybrid, config, music_scenario)
        assert eh.total_loss == rh.total_loss
        # One graph per recurring size: the full batch and the remainder.
        assert len(replay._step_graphs) == 2

    def test_auto_mode_is_replay(self, smoke_scale, music_scenario):
        config = smoke_scale.adamel_config(epochs=1)
        model = AdaMELHybrid(config)  # execution defaults to "auto"
        model.fit(music_scenario)
        assert model.replay_stats() is not None
        stats = model.replay_stats()
        assert stats["forward_ops"] > 0 and stats["backward_ops"] > 0

    def test_predictions_identical_across_engines(self, smoke_scale, music_scenario):
        config = smoke_scale.adamel_config(epochs=2)
        eager, _, replay, _ = _fit_pair(AdaMELZero, config, music_scenario)
        pairs = music_scenario.test.pairs[:20]
        assert np.array_equal(eager.predict_proba(pairs), replay.predict_proba(pairs))


class TestSupportSampling:
    def test_walk_mode_trains_and_differs_from_choice(self, smoke_scale, music_scenario):
        config = smoke_scale.adamel_config(epochs=3)
        choice = AdaMELHybrid(config)  # default: per-step choice (seed-exact)
        choice_history = choice.fit(music_scenario)
        walk = AdaMELHybrid(config.with_updates(support_sampling="walk"))
        walk_history = walk.fit(music_scenario)
        assert np.isfinite(walk_history.final_loss())
        # Different draw schedule — histories should not be identical.
        assert choice_history.total_loss != walk_history.total_loss

    def test_walk_is_bit_exact_across_engines(self, smoke_scale, music_scenario):
        config = smoke_scale.adamel_config(epochs=2, support_sampling="walk")
        _, eh, _, rh = _fit_pair(AdaMELHybrid, config, music_scenario)
        assert eh.total_loss == rh.total_loss

    def test_default_choice_matches_historical_behaviour(self, smoke_scale,
                                                        music_scenario):
        """The seed-exact regression: default sampling is per-step choice."""
        assert AdaMELConfig().support_sampling == "choice"

    def test_invalid_sampling_rejected(self):
        with pytest.raises(ValueError):
            AdaMELConfig(support_sampling="bogus")


class TestDtypePolicy:
    def test_float32_networks_stay_float32(self, smoke_scale, music_scenario):
        config = smoke_scale.adamel_config(epochs=2, dtype="float32")
        model = AdaMELHybrid(config)
        model.fit(music_scenario)
        for param in model.network.parameters():
            assert param.data.dtype == np.float32
        probs = model.predict_proba(music_scenario.test.pairs[:8])
        assert probs.dtype == np.float32
        assert np.all((probs >= 0) & (probs <= 1))

    def test_float32_f1_close_to_float64(self, smoke_scale, music_scenario):
        """Acceptance: float32 trains music3k to within 0.01 F1 of float64."""
        config = smoke_scale.adamel_config()
        full = AdaMELHybrid(config)
        full.fit(music_scenario)
        half = AdaMELHybrid(config.with_updates(dtype="float32"))
        half.fit(music_scenario)
        f64 = full.evaluate(music_scenario.test.pairs).f1
        f32 = half.evaluate(music_scenario.test.pairs).f1
        assert abs(f64 - f32) <= 0.01

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            AdaMELConfig(dtype="float16")
        with pytest.raises(ValueError):
            AdaMELConfig(execution="jit")


class TestHistoryExtras:
    def test_cache_hit_rate_recorded(self, smoke_scale, music_scenario):
        config = smoke_scale.adamel_config(epochs=1)
        model = AdaMELZero(config)
        history = model.fit(music_scenario)
        assert history.encoder_cache_hit_rate is not None
        assert 0.0 <= history.encoder_cache_hit_rate <= 1.0
        payload = history.as_dict()
        assert payload["encoder_cache_hit_rate"] == history.encoder_cache_hit_rate
        # Refitting re-encodes the same pairs: the cache should now serve them.
        rerun = AdaMELZero(config).fit(music_scenario)
        assert rerun.encoder_cache_hit_rate > 0.9

    def test_step_seconds_only_when_profiling(self, smoke_scale, music_scenario):
        config = smoke_scale.adamel_config(epochs=1)
        plain = AdaMELBase(config).fit(music_scenario)
        assert plain.step_seconds is None
        assert "step_seconds" not in plain.as_dict()
        profiled = AdaMELBase(config.with_updates(profile_steps=True)).fit(music_scenario)
        assert profiled.step_seconds
        assert all(s >= 0 for s in profiled.step_seconds)

    def test_legacy_kernels_equivalent_predictions(self, smoke_scale, music_scenario):
        """The benchmark reference composition trains to the same quality."""
        config = smoke_scale.adamel_config(epochs=3)
        fused = AdaMELZero(config.with_updates(execution="eager"))
        fused.fit(music_scenario)
        legacy = AdaMELZero(config.with_updates(execution="eager", legacy_kernels=True))
        legacy.fit(music_scenario)
        pairs = music_scenario.test.pairs[:20]
        assert np.allclose(fused.predict_proba(pairs), legacy.predict_proba(pairs),
                           atol=1e-6)
