"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
workload scale (so the whole suite runs on CPU in minutes) and asserts the
qualitative claim the paper makes about it.  Set the environment variable
``REPRO_BENCH_SCALE`` to ``smoke`` / ``bench`` / ``paper`` to choose the
workload (the same knob the ``python -m repro.bench`` runner uses).
"""

from __future__ import annotations

import pytest

from repro.bench import select_scale, select_seed
from repro.experiments import ExperimentScale


def pytest_collection_modifyitems(items):
    """Every test in this directory belongs to the opt-in ``bench`` suite."""
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    _, scale = select_scale()
    return scale


@pytest.fixture(scope="session")
def bench_scale_name() -> str:
    """Scale name; tests widen marginal qualitative tolerances at ``smoke``."""
    return select_scale()[0]


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return select_seed()
