"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
workload scale (so the whole suite runs on CPU in minutes) and asserts the
qualitative claim the paper makes about it.  Set the environment variable
``REPRO_BENCH_SCALE=paper`` to run closer-to-paper workloads.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentScale


def _select_scale() -> ExperimentScale:
    mode = os.environ.get("REPRO_BENCH_SCALE", "bench").lower()
    if mode == "paper":
        return ExperimentScale.paper()
    if mode == "smoke":
        return ExperimentScale.smoke()
    # Default benchmark scale: small enough for CI, large enough to be meaningful.
    return ExperimentScale(music_entities=50, monitor_entities=70, support_size=40,
                           test_size=150, adamel_epochs=15, baseline_epochs=8,
                           embedding_dim=32, hidden_dim=24, attention_dim=48,
                           classifier_hidden_dim=48, tokens_per_attribute=5)


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return _select_scale()


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))
