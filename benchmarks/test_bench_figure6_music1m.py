"""Benchmark: Figure 6b / Table 9 — MEL performance on the weakly-labeled Music-1M analogue.

The paper observes that every method scores lower when trained on the weakly
(hyperlink-) labeled corpus than on the manually labeled Music-3K, while
AdaMEL's adaptation variants remain ahead of AdaMEL-base.
"""

import pytest

from repro.experiments import run_figure6

METHODS = ["adamel-base", "adamel-zero", "adamel-hyb", "cordel-attention"]


@pytest.mark.benchmark(group="figure6")
def test_figure6_music1m_artist(benchmark, bench_scale, bench_seed):
    def run_both():
        weak = run_figure6("music1m", "artist", modes=("overlapping",), methods=METHODS,
                           scale=bench_scale, seed=bench_seed)
        clean = run_figure6("music3k", "artist", modes=("overlapping",), methods=METHODS,
                            scale=bench_scale, seed=bench_seed)
        return weak, clean

    weak, clean = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(weak.format())
    print()
    print(clean.format())

    weak_scores = {m: weak.pr_auc("overlapping", m) for m in METHODS}
    clean_scores = {m: clean.pr_auc("overlapping", m) for m in METHODS}
    # Paper claim: weak labels lower performance compared with clean labels.
    assert max(weak_scores.values()) <= max(clean_scores.values()) + 0.05
    # Adaptation still beats no adaptation on weak labels (within tolerance).
    assert max(weak_scores["adamel-zero"], weak_scores["adamel-hyb"]) >= \
        weak_scores["adamel-base"] - 0.05
