"""Benchmark: Figure 7 — adaptation aligns source/target attention vectors.

The paper's claim: with λ=0.98 the source- and target-domain feature-attention
vectors become (nearly) indistinguishable in the projected space, while with
λ=0 they stay more separated.  The benchmark checks the quantitative
domain-alignment score instead of a visual t-SNE inspection.
"""

import pytest

from repro.experiments import run_figure7


@pytest.mark.benchmark(group="figure7")
def test_figure7_alignment(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        lambda: run_figure7("music3k", "artist", adaptation_weights=(0.0, 0.98),
                            max_points_per_domain=60, scale=bench_scale, seed=bench_seed),
        rounds=1, iterations=1)
    print()
    print(result.format())

    for variant in ("adamel-zero", "adamel-hyb"):
        with_adaptation = result.panel(variant, 0.98)
        # Paper claim (Fig. 7b/7d): with λ=0.98 the source- and target-domain
        # attention vectors are well mixed in the projected space.  We assert
        # the absolute mixing level; the *contrast* against λ=0 is weaker in
        # this reproduction because the attention distributions already start
        # close to each other (EXPERIMENTS.md, note on Figure 7).
        assert with_adaptation.alignment_score >= 0.5, (
            f"{variant}: adapted attention spaces should be well mixed, got "
            f"{with_adaptation.alignment_score:.3f}")
        # Projections exist for both domains (shape check for the plot data).
        assert with_adaptation.source_projection.shape[1] == 2
        assert with_adaptation.target_projection.shape[1] == 2
