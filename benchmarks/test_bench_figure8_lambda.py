"""Benchmark: Figure 8 — PRAUC vs the adaptation weight λ.

Paper claim: performance generally improves as λ grows towards (but not equal
to) 1, and collapses at λ=1 where no labeled source data is used.
"""

import pytest

from repro.experiments import run_figure8

LAMBDAS = (0.0, 0.9, 0.98, 1.0)


@pytest.mark.benchmark(group="figure8")
def test_figure8_lambda_sweep(benchmark, bench_scale, bench_scale_name, bench_seed):
    result = benchmark.pedantic(
        lambda: run_figure8("music3k", "artist", lambdas=LAMBDAS,
                            scale=bench_scale, seed=bench_seed),
        rounds=1, iterations=1)
    print()
    print(result.format())

    # At smoke scale the λ sweep is noisy (few epochs, tiny corpora); the
    # suite then only sanity-checks the pipeline mechanics.
    tolerance = 0.05 if bench_scale_name != "smoke" else 0.3
    for variant in ("adamel-zero", "adamel-hyb"):
        at_high_lambda = result.pr_auc(variant, 0.98)
        at_zero_lambda = result.pr_auc(variant, 0.0)
        # Adaptation (λ=0.98) should not be worse than no adaptation (λ=0).
        assert at_high_lambda >= at_zero_lambda - tolerance, variant
    # AdaMEL-zero at λ=1 has no supervision at all; it must not be the best point.
    zero_series = result.series["adamel-zero"]
    assert result.pr_auc("adamel-zero", 1.0) <= max(zero_series) + 1e-9
