"""Benchmark: Figure 6c / Table 8 — MEL performance on the Monitor analogue.

The Monitor corpus exhibits all three data challenges (heavy missingness,
target-only attributes, shifted value distributions) and strong class
imbalance.  The paper's qualitative claim: the AdaMEL variants outperform the
supervised baselines, with the adaptation variants (zero/hyb) at the top.
"""

import pytest

from repro.experiments import run_figure6

METHODS = ["tler", "cordel-attention", "adamel-base", "adamel-zero", "adamel-hyb"]


@pytest.mark.benchmark(group="figure6")
def test_figure6_monitor(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        lambda: run_figure6("monitor", "monitor", modes=("overlapping", "disjoint"),
                            methods=METHODS, scale=bench_scale, seed=bench_seed),
        rounds=1, iterations=1)
    print()
    print(result.format())

    for mode in ("overlapping", "disjoint"):
        scores = {name: result.pr_auc(mode, name) for name in METHODS}
        best_adamel = max(scores[m] for m in METHODS if m.startswith("adamel"))
        # AdaMEL variants clearly beat the non-deep transfer baseline on the
        # imbalanced Monitor corpus (the paper's TLER row is also the weakest).
        assert best_adamel >= scores["tler"]
        # Adaptation at least matches no adaptation.  (Note: at this reduced
        # scale CorDel-Attention is stronger on Monitor than in the paper —
        # recorded as a deviation in EXPERIMENTS.md.)
        assert max(scores["adamel-zero"], scores["adamel-hyb"]) >= scores["adamel-base"] - 0.03
