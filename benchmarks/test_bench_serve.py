"""Benchmark: online linkage serving on the Music-3K analogue.

Runs the serving stage behind ``python -m repro.serve`` — streamed upserts
through the incremental entity store, then concurrent queries through the
latency-bounded coalescer — and checks its deployment claims: streaming
produces exactly the batch pipeline's clusters, at least four concurrent
workers are served without errors, and the deadline flush (the sub-batch-size
path) is actually exercised under load.
"""

import pytest

from repro.bench.runner import _stage_serve_online, summarize_latency_samples


@pytest.mark.benchmark(group="serve")
def test_serve_online(benchmark, bench_scale, bench_seed):
    extras = benchmark.pedantic(
        lambda: _stage_serve_online(bench_scale, bench_seed),
        rounds=1, iterations=1)
    summary = summarize_latency_samples(extras)
    print()
    print({key: round(float(value), 4) for key, value in summary.items()})

    # Deployment claim: online == batch, exactly.
    assert summary["batch_parity"] == 1.0, "streamed clusters diverged from batch"
    # Concurrency claim: >= 4 workers served, none erroring.
    assert summary["query_workers"] >= 4.0
    assert summary["query_errors"] == 0.0
    # Latency-bounded batching: sub-batch-size backlogs must flush on the
    # deadline rather than waiting for a full batch.
    assert summary["deadline_flushes"] >= 1.0
    assert summary["mean_batch_pairs"] >= 1.0
    # Percentiles are recorded and ordered.
    assert (0.0 < summary["query_latency_p50_ms"]
            <= summary["query_latency_p95_ms"]
            <= summary["query_latency_p99_ms"])
