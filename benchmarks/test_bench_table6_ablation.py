"""Benchmark: Table 6 — ablation of the contrastive relational features.

Paper claim: the shared and unique token features capture complementary
evidence; using both performs best (or at least no worse than either alone).
"""

import pytest

from repro.experiments import run_table6


@pytest.mark.benchmark(group="table6")
def test_table6_contrastive_ablation(benchmark, bench_scale, bench_scale_name, bench_seed):
    result = benchmark.pedantic(
        lambda: run_table6(datasets=(("music3k", "artist"),), scale=bench_scale, seed=bench_seed),
        rounds=1, iterations=1)
    print()
    print(result.format())

    # At smoke scale the tiny corpora/epoch counts make this marginal claim
    # noisy; the suite then only sanity-checks the pipeline mechanics.
    tolerance = 0.08 if bench_scale_name != "smoke" else 0.3
    scores = result.results["music3k-artist"]
    for method in ("adamel-base", "adamel-hyb"):
        both = scores[method]["shared+unique"]
        shared_only = scores[method]["shared"]
        unique_only = scores[method]["unique"]
        # Using both feature kinds is competitive with the best single kind.
        assert both >= max(shared_only, unique_only) - tolerance, method
        assert 0.0 <= both <= 1.0
