"""Benchmark: the training fast path (graph-replay engine vs eager).

The per-step training graph is static, so the trainer records it once and
replays it with preallocated buffers (``docs/autograd.md``).  This benchmark
checks the engine claims: the replay engine beats the pre-fusion eager path
by a healthy margin, stays ahead of the fused eager path, allocates an
order of magnitude fewer tensors per step, and — crucially — is bit-exact
with the eager engine in float64.
"""

import pytest

from repro.bench.runner import _stage_train_epoch


@pytest.mark.benchmark(group="train")
def test_train_epoch_engines(benchmark, bench_scale, bench_seed):
    extras = benchmark.pedantic(
        lambda: _stage_train_epoch(bench_scale, bench_seed),
        rounds=1, iterations=1)
    printable = {key: (round(value, 4) if isinstance(value, float) else "...")
                 for key, value in extras.items()}
    print()
    print(printable)

    # Correctness before speed: float64 replay must be bit-exact with eager.
    assert extras["train_lockstep"] == 1.0, (
        "graph-replay training diverged from the eager engine")

    # Replay must clearly beat the pre-fusion eager engine (the engine before
    # the fast-path work) and still beat the fused eager engine.  Thresholds
    # leave headroom for noisy shared CI runners; the measured ratios are
    # recorded in BENCH_core.json (typically ~1.5-1.7x and ~1.3-1.4x).
    assert extras["replay_speedup"] >= 1.25, (
        f"replay {extras['replay_speedup']:.2f}x vs legacy eager — expected >= 1.25x")
    assert extras["replay_vs_fused_eager"] >= 1.1, (
        f"replay {extras['replay_vs_fused_eager']:.2f}x vs fused eager — expected >= 1.1x")

    # Replaying must not rebuild the graph: tensor allocations per step should
    # be a small constant, far below the eager engine's per-op construction.
    assert extras["replay_tensors_per_step"] < extras["eager_tensors_per_step"] / 3, (
        f"replay allocates {extras['replay_tensors_per_step']:.0f} tensors/step vs "
        f"eager {extras['eager_tensors_per_step']:.0f} — the tape is being rebuilt")
    assert extras["replay_forward_ops"] > 0 and extras["replay_backward_ops"] > 0
