"""Benchmark: Table 4 — top-5 learned feature importances.

Paper observations: on Monitor the importance distribution is long-tailed with
``page_title_shared`` clearly dominating; on Music-3K (artist) the top
features are the name-related attributes and the distribution is more uniform.
"""

import pytest

from repro.experiments import run_table4


@pytest.mark.benchmark(group="table4")
def test_table4_feature_importance(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(lambda: run_table4(top_k=5, scale=bench_scale, seed=bench_seed),
                                rounds=1, iterations=1)
    print()
    print(result.format())

    monitor_report = result.reports["monitor"]
    music_report = result.reports["music3k-artist"]

    # Attention scores are a distribution over features.
    assert sum(fi.score for fi in monitor_report) == pytest.approx(1.0, abs=1e-6)
    assert sum(fi.score for fi in music_report) == pytest.approx(1.0, abs=1e-6)
    # Monitor: page_title features rank among the most important attributes.
    monitor_top_attrs = {fi.attribute for fi in monitor_report.top(5)}
    assert "page_title" in monitor_top_attrs
    # Music artist: a name-related attribute ranks in the top 5.
    music_top_attrs = {fi.attribute for fi in music_report.top(5)}
    assert music_top_attrs & {"name", "main_performer", "name_native_language"}
