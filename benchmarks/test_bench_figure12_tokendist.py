"""Benchmark: Figure 12 — value-distribution shift of ``prod_type`` (C3).

Paper observation: the frequency distribution of the top tokens under
``prod_type`` differs substantially between records of the seen and the unseen
data sources.
"""

import pytest

from repro.experiments import run_figure12


@pytest.mark.benchmark(group="figure12")
def test_figure12_token_distribution_shift(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        lambda: run_figure12("monitor", attribute="prod_type", top_k=10,
                             scale=bench_scale, seed=bench_seed),
        rounds=1, iterations=1)
    print()
    print(result.format())

    assert result.source_tokens, "seen sources must produce prod_type tokens"
    assert result.target_tokens, "unseen sources must produce prod_type tokens"
    # C3: the two token distributions differ substantially (TV distance > 0.3).
    assert result.divergence > 0.3
