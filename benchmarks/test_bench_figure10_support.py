"""Benchmark: Figure 10 — sensitivity to the support-set size |S_U|.

Paper claims: performance improves as the first ~100-200 labeled target pairs
are added and then saturates; AdaMEL-hyb matches or exceeds AdaMEL-few once
the support set is not tiny.
"""

import pytest

from repro.experiments import run_figure10

SUPPORT_SIZES = (1, 20, 60, 120)


@pytest.mark.benchmark(group="figure10")
def test_figure10_support_size(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        lambda: run_figure10("monitor", "monitor", support_sizes=SUPPORT_SIZES,
                             scale=bench_scale, seed=bench_seed),
        rounds=1, iterations=1)
    print()
    print(result.format())

    for variant in ("adamel-few", "adamel-hyb"):
        series = result.series[variant]
        assert len(series) == len(SUPPORT_SIZES)
        assert all(0.0 <= value <= 1.0 for value in series)
        # A larger support set should not make things substantially worse.
        assert max(series[1:]) >= series[0] - 0.1, variant
