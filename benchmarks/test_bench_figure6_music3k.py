"""Benchmark: Figure 6a / Table 9 — MEL performance on the Music-3K analogue.

Regenerates the method comparison (baselines vs AdaMEL variants) on the
clean-label music corpus and checks the paper's qualitative claims: the
adaptation-based AdaMEL variants outperform the purely supervised deep
baselines, and adaptation (zero/hyb) improves over AdaMEL-base.
"""

import pytest

from repro.experiments import run_figure6

METHODS = ["tler", "deepmatcher", "cordel-attention",
           "adamel-base", "adamel-zero", "adamel-few", "adamel-hyb"]


@pytest.mark.benchmark(group="figure6")
def test_figure6_music3k_artist(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        lambda: run_figure6("music3k", "artist", modes=("overlapping", "disjoint"),
                            methods=METHODS, scale=bench_scale, seed=bench_seed),
        rounds=1, iterations=1)
    print()
    print(result.format())

    for mode in ("overlapping", "disjoint"):
        scores = {name: result.pr_auc(mode, name) for name in METHODS}
        best_adamel = max(scores[m] for m in METHODS if m.startswith("adamel"))
        best_deep_baseline = max(scores["deepmatcher"], scores["cordel-attention"])
        # Paper claim: AdaMEL variants outperform the supervised deep baselines.
        assert best_adamel >= best_deep_baseline - 0.02, (
            f"{mode}: best AdaMEL {best_adamel:.3f} < deep baseline {best_deep_baseline:.3f}")
        # Paper claim: domain adaptation improves over no adaptation.
        assert max(scores["adamel-zero"], scores["adamel-hyb"]) >= scores["adamel-base"] - 0.02
