"""Benchmark: Figure 11 — missing values (C1) and new attributes (C2) in Monitor.

Paper observations reproduced by the synthetic corpus: only ``page_title`` and
``source`` are (close to) fully populated; for most attributes fewer than half
of the pairs have both values; several attributes have non-missing pairs only
in the target domain.
"""

import pytest

from repro.experiments import run_figure11


@pytest.mark.benchmark(group="figure11")
def test_figure11_missingness(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(lambda: run_figure11(scale=bench_scale, seed=bench_seed),
                                rounds=1, iterations=1)
    print()
    print(result.format())

    # page_title and source are (close to) fully populated in both domains.
    for attribute in ("page_title", "source"):
        assert result.source_fractions[attribute] > 0.8
        assert result.target_fractions[attribute] > 0.8
    # C2: at least 3 attributes exist only in the target domain.
    assert len(result.target_only_attributes()) >= 3
    # C1: the majority of the remaining attributes are mostly missing.
    assert len(result.mostly_missing_attributes()) >= 5
