"""Benchmark: distributed telemetry — worker capture, payload merge, shape.

Runs the ``obs_distributed`` stage and checks the claims the ``--check``
gate enforces: worker capture + merge stays cheap relative to a telemetry-off
run, every non-empty shard ships exactly one ``sharded.worker`` span (also
under fork) re-rooted into the driver's tree, the per-shard phase histogram
is observed exactly once per shard per phase, and in-process worker spans
account for the ``sharded.score`` wall time.
"""

import pytest

from repro.bench.runner import _stage_obs_distributed


@pytest.mark.benchmark(group="obs")
def test_obs_distributed(benchmark, bench_scale, bench_seed):
    extras = benchmark.pedantic(
        lambda: _stage_obs_distributed(bench_scale, bench_seed),
        rounds=1, iterations=1)
    print()
    print({key: round(float(value), 4) for key, value in extras.items()})

    # Shape claims: exact, deterministic.
    assert extras["expected_worker_spans"] >= 1.0
    assert extras["worker_span_parity"] == 1.0
    assert extras["shard_seconds_once_parity"] == 1.0
    assert extras["worker_span_fork_parity"] == 1.0
    # In-process worker spans cover the driver's scoring span.
    assert 0.9 <= extras["worker_span_coverage"] <= 1.1
    # Cost claim: capture + merge is bounded (the --check ceiling is 1.20x;
    # the benchmark asserts the same bound on a single measurement).
    assert extras["merge_overhead_ratio"] <= 1.20
    assert extras["baseline_seconds"] > 0.0
    assert extras["telemetry_seconds"] > 0.0
