"""Benchmark: Figure 9 — stability under incrementally arriving data sources,
plus the inset training-runtime comparison.

Paper claims: AdaMEL-hyb stays stable (smaller PRAUC fluctuation) and at a
higher level than the token-level baselines as new target sources arrive, and
it trains in a fraction of their time because it avoids word-level sequence
modelling.
"""

import pytest

from repro.experiments import run_figure9


@pytest.mark.benchmark(group="figure9")
def test_figure9_incremental_sources_and_runtime(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        lambda: run_figure9(source_counts=(7, 11, 15), scale=bench_scale, seed=bench_seed),
        rounds=1, iterations=1)
    print()
    print(result.format())

    adamel_scores = result.series["adamel-hyb"]
    entitymatcher_scores = result.series["entitymatcher"]
    # AdaMEL-hyb stays at or above the hierarchical token-level baseline on
    # average as new sources arrive (CorDel's strength on the synthetic
    # Monitor corpus is recorded as a deviation in EXPERIMENTS.md).
    assert sum(adamel_scores) / len(adamel_scores) >= \
        sum(entitymatcher_scores) / len(entitymatcher_scores) - 0.1
    # Runtime claim: AdaMEL trains faster than the cross-attention baseline.
    assert result.runtime_seconds["adamel-hyb"] < result.runtime_seconds["entitymatcher"]
    # Stability: fluctuation bounded.
    assert result.stability_range("adamel-hyb") < 0.5
