"""Benchmark: Table 7 — single-domain benchmark comparison (best F1).

Paper claims: on clean single-domain data without the MEL challenges,
AdaMEL-zero does not beat DeepMatcher (it spends capacity on adaptation
instead of fitting), while AdaMEL-hyb is comparable to DeepMatcher.
"""

import pytest

from repro.experiments import run_table7

BENCHMARKS = ("dblp-acm", "itunes-amazon", "dirty-walmart-amazon")


@pytest.mark.benchmark(group="table7")
def test_table7_single_domain(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        lambda: run_table7(benchmarks=BENCHMARKS, scale=bench_scale, seed=bench_seed),
        rounds=1, iterations=1)
    print()
    print(result.format())

    for name, scores in result.results.items():
        assert set(scores) == {"deepmatcher", "adamel-zero", "adamel-hyb"}
        assert all(0.0 <= value <= 1.0 for value in scores.values())
        # AdaMEL-hyb stays comparable to DeepMatcher (generous margin at bench scale).
        assert scores["adamel-hyb"] >= scores["deepmatcher"] - 0.25, name
    # The easy citation benchmark is easier than the dirty product benchmark
    # for the best method, mirroring the paper's relative difficulty.
    assert max(result.results["dblp-acm"].values()) >= \
        max(result.results["dirty-walmart-amazon"].values()) - 0.1
