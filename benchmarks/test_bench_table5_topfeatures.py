"""Benchmark: Table 5 — training on the top-important attributes only.

Paper claim: retraining AdaMEL-hyb with only the top-ranked attributes is
comparable to (within a few points of) training with all attributes, while
the remaining low-importance attributes alone perform clearly worse.
"""

import pytest

from repro.experiments import run_table5


@pytest.mark.benchmark(group="table5")
def test_table5_top_attributes(benchmark, bench_scale, bench_seed):
    result = benchmark.pedantic(
        lambda: run_table5(datasets={"music3k-artist": {"dataset": "music3k",
                                                        "entity_type": "artist",
                                                        "num_top": 4}},
                           scale=bench_scale, seed=bench_seed),
        rounds=1, iterations=1)
    print()
    print(result.format())

    row = result.rows[0]
    assert len(row.top_attributes) == 4
    # Top attributes alone stay within a reasonable margin of all attributes.
    assert row.pr_auc_top >= row.pr_auc_all - 0.15
    # The leftover low-importance attributes alone are worse than the top set.
    assert row.pr_auc_other <= row.pr_auc_top + 0.05
