"""Benchmark: end-to-end linkage engine on the Music-3K analogue.

Runs the full production pipeline (ingest → block → pair → score → cluster)
behind ``python -m repro.pipeline`` and checks its deployment claims: index
blocking keeps nearly every true match while pruning the pair space by an
order of magnitude, and source-consistent clustering resolves coherent
entities (no giant snowballed components).
"""

import pytest

from repro.bench.runner import _stage_pipeline_end_to_end


@pytest.mark.benchmark(group="pipeline")
def test_pipeline_end_to_end(benchmark, bench_scale, bench_seed):
    extras = benchmark.pedantic(
        lambda: _stage_pipeline_end_to_end(bench_scale, bench_seed),
        rounds=1, iterations=1)
    print()
    print({key: round(value, 4) for key, value in extras.items()})

    # Deployment claim: high-recall blocking at a >= 10x pair reduction.
    assert extras["blocking_recall"] >= 0.95, (
        f"blocking recall {extras['blocking_recall']:.3f} below the 0.95 target")
    assert extras["pair_reduction_factor"] >= 10.0, (
        f"pair reduction {extras['pair_reduction_factor']:.1f}x below the 10x target")
    # Clustering must produce real entities, not one giant component.
    assert extras["num_clusters"] >= extras["num_records"] / 10
    assert extras["pairwise_f1"] > 0.3
