"""Benchmark: sharded linkage engine on the Music-1M weak-label analogue.

Runs the same corpus through the single-process engine, a one-worker
``ShardedPipeline`` (the bit-exact configuration) and a four-worker pool,
and checks the sharding claims: output parity is exact at every worker
count, and the 4-worker run achieves near-linear speedup — the latter only
asserted on machines that actually have 4 CPUs, since a 1-core box can
measure the overhead honestly but cannot exhibit parallelism.
"""

import pytest

from repro.bench.runner import _stage_pipeline_sharded_1m


@pytest.mark.benchmark(group="pipeline")
def test_pipeline_sharded_1m(benchmark, bench_scale, bench_seed):
    extras = benchmark.pedantic(
        lambda: _stage_pipeline_sharded_1m(bench_scale, bench_seed),
        rounds=1, iterations=1)
    print()
    print({key: round(value, 4) for key, value in extras.items()})

    # Parity is an exact invariant regardless of hardware.
    assert extras["sharded_parity"] == 1.0, (
        "4-worker sharded clusters diverged from the single-process run")
    assert extras["sharded_bitwise_parity"] == 1.0, (
        "1-worker sharded run is not bit-identical to the batch engine")
    # The speedup floor applies only where 4 workers have 4 cores to run on.
    if extras["cpu_count"] >= 4 and extras["used_processes"]:
        assert extras["speedup_4w"] >= 3.0, (
            f"sharded speedup {extras['speedup_4w']:.2f}x at 4 workers on "
            f"{extras['cpu_count']:.0f} CPUs is below the 3x floor")
