"""Bounded retry with backoff for deterministic tasks, pooled or inline.

The sharded pipeline's Phase A/B tasks are pure functions of forked state —
re-executing one is always safe — so fault tolerance reduces to *when* to
re-execute and *where*.  :class:`TaskExecutor` owns that decision for one
run:

* **pooled** (a ``pool_factory`` was given): tasks are submitted to a
  process pool; a per-attempt deadline (``RetryPolicy.task_timeout``) bounds
  each round, a dead worker (``BrokenProcessPool``) costs the whole pool —
  it is rebuilt by the factory, re-forking the driver's unchanged state —
  and a task that exhausts its pool attempts falls back to in-process
  execution in the driver (recorded as a fallback, its label quarantined);
* **sequential** (no factory): the same attempt/backoff/fallback accounting
  runs inline — per-attempt deadlines cannot preempt in-process work, so
  ``task_timeout`` is a pooled-only knob, but every other semantic
  (bounded attempts, exponential backoff, fallback, :class:`FaultReport`)
  is identical, which is what keeps no-``fork`` platforms honest.

Backoff jitter is **deterministic** (a hash of the attempt number), so runs
are reproducible; everything the executor absorbed lands in a
:class:`FaultReport` for ``ShardReport``/``stats.json``.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs
from . import faults

__all__ = ["FaultReport", "RetryPolicy", "TaskExecutor"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with exponential backoff and deterministic jitter.

    ``max_attempts`` counts pool (or inline) tries per task before the
    fallback; ``task_timeout`` is the per-attempt deadline in seconds
    (pooled execution only — ``None`` disables).  ``fallback_in_process``
    lets the driver run a persistently failing task itself as the last
    resort; switching it off turns exhaustion into the task's final error.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    backoff: float = 2.0
    jitter: float = 0.1
    task_timeout: Optional[float] = None
    fallback_in_process: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ValueError(f"max_delay ({self.max_delay}) must be >= "
                             f"base_delay ({self.base_delay})")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1.0, got {self.backoff}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError(f"task_timeout must be positive, got {self.task_timeout}")

    def delay(self, attempt: int) -> float:
        """Backoff before retrying after the ``attempt``-th failure (1-based).

        Jitter is a deterministic fraction derived from the attempt number
        (Knuth's multiplicative hash), so retry schedules are reproducible
        run to run — randomness would break the repo's determinism contract
        for no real de-synchronization gain inside a single driver.
        """
        raw = self.base_delay * self.backoff ** (attempt - 1)
        fraction = ((attempt * 2654435761) % 997) / 997.0
        return min(raw, self.max_delay) * (1.0 + self.jitter * fraction)

    def as_dict(self) -> Dict[str, object]:
        return {
            "max_attempts": self.max_attempts,
            "base_delay": self.base_delay,
            "max_delay": self.max_delay,
            "backoff": self.backoff,
            "jitter": self.jitter,
            "task_timeout": self.task_timeout,
            "fallback_in_process": self.fallback_in_process,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RetryPolicy":
        return cls(**payload)  # type: ignore[arg-type]


@dataclass
class FaultReport:
    """Everything one executor absorbed: the cost of surviving the run.

    ``attempts`` counts every task execution (first tries included);
    ``retries`` counts re-executions after a failure; ``wall_seconds_lost``
    is the wall-clock spent on rounds that had to be partly redone.
    ``quarantined`` lists the labels of tasks that exhausted their pool
    attempts and ran in-process — the shards a scheduler should stop
    routing to.
    """

    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    worker_deaths: int = 0
    fallbacks: int = 0
    partial_results: int = 0
    wall_seconds_lost: float = 0.0
    quarantined: List[str] = field(default_factory=list)

    @property
    def faults_absorbed(self) -> int:
        """Failed attempts the run recovered from."""
        return self.retries + self.fallbacks

    def as_dict(self) -> Dict[str, object]:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "fallbacks": self.fallbacks,
            "partial_results": self.partial_results,
            "wall_seconds_lost": round(self.wall_seconds_lost, 4),
            "quarantined": list(self.quarantined),
        }


class _PartialResult(RuntimeError):
    """Internal: a task answered with an injected-partial marker."""


class TaskExecutor:
    """Run deterministic tasks with retry/timeout/fallback accounting.

    Parameters
    ----------
    policy:
        The :class:`RetryPolicy` governing attempts, backoff and deadlines.
    pool_factory:
        Zero-argument callable building a fresh ``ProcessPoolExecutor``
        (fork-context, state already installed in module globals).  ``None``
        selects sequential in-process execution with identical accounting.
    report:
        An existing :class:`FaultReport` to accumulate into (one report can
        span several ``run`` calls — phases of the same pipeline run).
    """

    def __init__(self, policy: Optional[RetryPolicy] = None,
                 pool_factory: Optional[Callable[[], object]] = None,
                 report: Optional[FaultReport] = None) -> None:
        self.policy = policy or RetryPolicy()
        self.report = report if report is not None else FaultReport()
        self._pool_factory = pool_factory
        self._pool = None

    @property
    def uses_processes(self) -> bool:
        return self._pool_factory is not None

    # ------------------------------------------------------------------ #
    def run(self, fn: Callable[[object], object], items: Sequence[object],
            labels: Optional[Sequence[str]] = None) -> List[object]:
        """Execute ``fn`` over ``items``; results in item order.

        Raises the final error of any task that exhausted every attempt
        (including the in-process fallback, when enabled) — partial success
        is not an output mode, because the sharded merge needs every shard.
        """
        if labels is None:
            labels = [f"task-{index}" for index in range(len(items))]
        if self._pool_factory is None:
            return [self._run_inline(fn, item, label)
                    for item, label in zip(items, labels)]
        return self._run_pooled(fn, list(items), list(labels))

    def shutdown(self) -> None:
        """Release the pool (idempotent); sequential executors no-op."""
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown()

    # ------------------------------------------------------------------ #
    # Sequential path
    # ------------------------------------------------------------------ #
    def _run_inline(self, fn, item, label):
        policy = self.policy
        last_error: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            started = time.perf_counter()
            self.report.attempts += 1
            try:
                result = fn(item)
                if not faults.is_partial(result):
                    return result
                self.report.partial_results += 1
                last_error = _PartialResult(f"partial result from {label}")
            except Exception as error:
                last_error = error
            self.report.wall_seconds_lost += time.perf_counter() - started
            if attempt == policy.max_attempts and not policy.fallback_in_process:
                raise last_error
            self._record_retry(1)
            self._backoff(attempt)
        return self._fallback(fn, item, label)

    # ------------------------------------------------------------------ #
    # Pooled path
    # ------------------------------------------------------------------ #
    def _run_pooled(self, fn, items, labels):
        policy = self.policy
        results: List[object] = [None] * len(items)
        attempts = [0] * len(items)
        last_error: Dict[int, BaseException] = {}
        pending = list(range(len(items)))
        while pending:
            retriable = []
            for index in pending:
                if attempts[index] < policy.max_attempts:
                    retriable.append(index)
                elif policy.fallback_in_process:
                    results[index] = self._fallback(fn, items[index], labels[index])
                else:
                    raise last_error.get(index) or RuntimeError(
                        f"{labels[index]} failed {attempts[index]} attempts")
            pending = retriable
            if not pending:
                break
            pool = self._ensure_pool()
            round_started = time.perf_counter()
            futures = {}
            broken = False
            try:
                for index in pending:
                    future = pool.submit(fn, items[index])
                    attempts[index] += 1
                    self.report.attempts += 1
                    futures[future] = index
            except BrokenExecutor:
                broken = True
            done, not_done = wait(futures, timeout=policy.task_timeout)
            failed: List[int] = []
            for future in done:
                index = futures[future]
                try:
                    result = future.result()
                except BrokenExecutor:
                    broken = True
                    failed.append(index)
                    continue
                except Exception as error:
                    last_error[index] = error
                    failed.append(index)
                    continue
                if faults.is_partial(result):
                    self.report.partial_results += 1
                    last_error[index] = _PartialResult(
                        f"partial result from {labels[index]}")
                    failed.append(index)
                    continue
                results[index] = result
            submitted = set(futures.values())
            unsubmitted = [index for index in pending if index not in submitted]
            timed_out = sorted(futures[future] for future in not_done)
            if timed_out:
                # Running processes cannot be cancelled; a deadline breach
                # costs the pool, like a worker death does.
                self.report.timeouts += len(timed_out)
                self._terminate_pool()
                obs.counter("resilience_timeouts_total",
                            "Task attempts that breached their deadline").inc(
                    len(timed_out))
            elif broken:
                self._discard_pool()
            if broken:
                self.report.worker_deaths += 1
                obs.counter("resilience_worker_deaths_total",
                            "Process-pool workers lost mid-task").inc()
            failed = sorted(set(failed) | set(timed_out) | set(unsubmitted))
            if failed:
                self.report.wall_seconds_lost += time.perf_counter() - round_started
                self._record_retry(len(failed))
                self._backoff(max(attempts[index] for index in failed))
            pending = failed
        return results

    # ------------------------------------------------------------------ #
    def _fallback(self, fn, item, label):
        """Last resort: run the task in this process; quarantine its label."""
        self.report.fallbacks += 1
        self.report.attempts += 1
        self.report.quarantined.append(label)
        obs.counter("resilience_fallbacks_total",
                    "Tasks re-executed in the driver after pool exhaustion").inc()
        result = fn(item)
        if faults.is_partial(result):
            raise _PartialResult(f"in-process fallback for {label} still "
                                 f"returned a partial result")
        return result

    def _record_retry(self, count: int) -> None:
        self.report.retries += count
        obs.counter("resilience_retries_total",
                    "Task re-executions after a failed attempt").inc(count)

    def _backoff(self, attempt: int) -> None:
        delay = self.policy.delay(attempt)
        if delay > 0:
            time.sleep(delay)

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._pool_factory()
        return self._pool

    def _discard_pool(self) -> None:
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _terminate_pool(self) -> None:
        """Tear down a pool whose workers may be stuck past their deadline."""
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)
