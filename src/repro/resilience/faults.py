"""Cross-subsystem fault injection: one registry, every chaos harness.

:mod:`repro.storage.crashpoints` proved the pattern for durability testing:
production code calls a no-op hook at every interesting point, and a test
harness arms one of them.  This module generalizes it across subsystems and
fault kinds so the sharded pipeline, the serving path and the storage engine
are all exercised by the same machinery (``storage.crashpoints`` is now a
thin shim over this registry).

Instrumented code calls :func:`check` at a **named site**::

    from repro.resilience import faults

    faults.check("sharded.score", shard=shard_id)

which is a single global read (no plan installed → return immediately).  A
harness arms a :class:`FaultPlan` of :class:`FaultSpec` entries, either
in-process (:func:`install_plan` / the :func:`plan_scope` context manager —
inherited by forked workers) or through the ``REPRO_FAULT_PLAN`` environment
variable (a JSON list of spec dicts — how subprocess harnesses arm their
children).  Four fault kinds:

``raise``
    Raise :class:`FaultInjected` at the site — a simulated runtime error
    (scoring bug, I/O failure) the caller's retry / degradation machinery
    must absorb.
``delay``
    Sleep ``delay_seconds`` at the site — latency injection for deadline
    and timeout paths; never changes results, only wall-clock.
``kill``
    Die with ``os._exit(KILL_EXIT_CODE)`` — no unwinding, no flushing;
    exactly like a power cut or an OOM kill at that instruction.
``partial``
    Return ``"partial"`` from :func:`check`; the call site is expected to
    truncate its output and mark it with :data:`PARTIAL_KEY` (see
    :func:`partial_result`), modelling a worker that answers incompletely
    instead of dying.  Retry layers treat partial results as failures.

Triggering is counted per spec: ``at_hit`` picks the first eligible hit,
``every`` re-triggers periodically after it (``every=10`` → a deterministic
"10% of calls"), ``max_triggers`` caps the total.  ``scope`` restricts a
spec to worker processes (marked via :func:`mark_worker_process`, installed
as the process-pool initializer) or to the driver.  ``token`` names a file
used as a cross-*process* once-latch: the fault fires only in the process
that wins the atomic ``O_CREAT | O_EXCL`` creation — the way a harness kills
exactly one worker even though respawned pools fork fresh hit counters.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .. import obs

__all__ = [
    "FAULT_KINDS", "FAULT_SCOPES", "FAULT_PLAN_ENV", "KILL_EXIT_CODE",
    "PARTIAL_KEY", "SITES", "FaultInjected", "FaultSpec", "FaultPlan",
    "armed", "check", "clear_plan", "current_plan", "install_plan",
    "is_partial", "mark_worker_process", "partial_result", "plan_scope",
    "reset_hits",
]

FAULT_KINDS = ("raise", "delay", "kill", "partial")
FAULT_SCOPES = ("any", "worker", "driver")

#: Exit status of an injected ``kill`` (shared with ``storage.crashpoints``
#: so every chaos harness distinguishes injected deaths the same way).
KILL_EXIT_CODE = 86

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Result-dict key marking a deliberately truncated worker answer.
PARTIAL_KEY = "fault_partial"

#: The catalog of instrumented sites (documentation + docs/resilience.md
#: source of truth; ``check`` accepts any name so tests can add ad-hoc ones).
SITES: Dict[str, str] = {
    "sharded.sketch": "Phase A worker task entry (per record slice)",
    "sharded.score": "Phase B worker task entry (per shard)",
    "scoring.batch": "ScoringStage chunk boundary (per scoring micro-batch)",
    "serve.score": "LinkageService scoring call, ahead of the coalescer",
    "storage.wal_append": "WAL append about to run (raise => append I/O error)",
    "storage.before_wal_append": "upsert planned+scored, nothing durable yet",
    "storage.mid_wal_append": "WAL entry header written, payload missing",
    "storage.after_wal_append": "WAL entry durable, indexes NOT updated",
    "storage.after_commit": "WAL entry durable and applied",
    "storage.before_snapshot_rename": "snapshot temp written, not visible",
    "storage.after_snapshot_rename": "snapshot visible, WAL not yet pruned",
}


class FaultInjected(RuntimeError):
    """An armed ``raise`` fault fired at an instrumented site."""

    def __init__(self, site: str, message: Optional[str] = None) -> None:
        super().__init__(message or f"injected fault at site {site!r}")
        self.site = site


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where, what kind, and when it triggers.

    ``at_hit`` is the first eligible hit (1-based); ``every`` re-arms the
    spec periodically after it; ``max_triggers`` bounds total firings.
    ``match`` further restricts eligibility to calls whose keyword info
    contains every listed key/value.  ``token`` is a filesystem once-latch
    shared across processes (see the module docstring).
    """

    site: str
    kind: str
    at_hit: int = 1
    every: Optional[int] = None
    max_triggers: Optional[int] = None
    delay_seconds: float = 0.01
    scope: str = "any"
    token: Optional[str] = None
    match: Optional[Mapping[str, object]] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {', '.join(FAULT_KINDS)})")
        if self.scope not in FAULT_SCOPES:
            raise ValueError(f"unknown fault scope {self.scope!r} "
                             f"(expected one of {', '.join(FAULT_SCOPES)})")
        if self.at_hit < 1:
            raise ValueError(f"at_hit must be >= 1, got {self.at_hit}")
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.max_triggers is not None and self.max_triggers < 1:
            raise ValueError(f"max_triggers must be >= 1, got {self.max_triggers}")
        if self.delay_seconds < 0:
            raise ValueError(f"delay_seconds must be >= 0, got {self.delay_seconds}")

    def eligible(self, hit: int) -> bool:
        """Whether the ``hit``-th matching call (1-based) should trigger."""
        if hit < self.at_hit:
            return False
        if self.every is None:
            return hit == self.at_hit
        return (hit - self.at_hit) % self.every == 0

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"site": self.site, "kind": self.kind,
                                      "at_hit": self.at_hit}
        if self.every is not None:
            payload["every"] = self.every
        if self.max_triggers is not None:
            payload["max_triggers"] = self.max_triggers
        if self.kind == "delay":
            payload["delay_seconds"] = self.delay_seconds
        if self.scope != "any":
            payload["scope"] = self.scope
        if self.token is not None:
            payload["token"] = self.token
        if self.match is not None:
            payload["match"] = dict(self.match)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FaultSpec":
        return cls(**payload)  # type: ignore[arg-type]


class FaultPlan:
    """A set of armed :class:`FaultSpec` entries with per-spec hit counters.

    Thread-safe; the counters live in the plan so :func:`reset_hits` and
    repeated in-process runs behave predictably.  Counters travel by fork
    into worker processes (each child counts its own hits from the forked
    snapshot — the ``token`` latch exists precisely because they diverge).
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self._lock = threading.Lock()
        self._hits: Dict[int, int] = {}
        self._triggers: Dict[int, int] = {}

    def reset(self) -> None:
        with self._lock:
            self._hits.clear()
            self._triggers.clear()

    def specs_for(self, site: str, kind: Optional[str] = None) -> List[FaultSpec]:
        return [spec for spec in self.specs
                if spec.site == site and (kind is None or spec.kind == kind)]

    def check(self, site: str, info: Mapping[str, object]) -> Optional[str]:
        """Count a hit at ``site`` and run whatever triggers; see module doc.

        Returns ``"partial"`` when a partial fault fired (the caller
        truncates its answer), else ``None``.  ``raise`` faults raise,
        ``delay`` faults sleep, ``kill`` faults never return.
        """
        actions: List[FaultSpec] = []
        with self._lock:
            for index, spec in enumerate(self.specs):
                if spec.site != site or not _scope_matches(spec.scope):
                    continue
                if spec.match is not None and any(
                        key not in info or info[key] != value
                        for key, value in spec.match.items()):
                    continue
                hit = self._hits.get(index, 0) + 1
                self._hits[index] = hit
                if not spec.eligible(hit):
                    continue
                triggered = self._triggers.get(index, 0)
                if spec.max_triggers is not None and triggered >= spec.max_triggers:
                    continue
                if spec.token is not None and not _claim_token(spec.token):
                    continue
                self._triggers[index] = triggered + 1
                actions.append(spec)
        partial = False
        for spec in actions:
            obs.counter("resilience_faults_injected_total",
                        "Faults fired by the injection registry",
                        {"site": spec.site, "kind": spec.kind}).inc()
            if spec.kind == "kill":
                os._exit(KILL_EXIT_CODE)
            if spec.kind == "delay":
                time.sleep(spec.delay_seconds)
            elif spec.kind == "raise":
                raise FaultInjected(site)
            elif spec.kind == "partial":
                partial = True
        return "partial" if partial else None

    def as_dicts(self) -> List[Dict[str, object]]:
        return [spec.as_dict() for spec in self.specs]

    @classmethod
    def from_dicts(cls, payload: Iterable[Mapping[str, object]]) -> "FaultPlan":
        return cls(FaultSpec.from_dict(entry) for entry in payload)


# ---------------------------------------------------------------------- #
# Process-wide state
# ---------------------------------------------------------------------- #

_PLAN: Optional[FaultPlan] = None
_IS_WORKER = False
# Environment-derived plan, cached on the env values that built it (read
# per call like the legacy crashpoints contract, so a parent can arm a
# subprocess; the cache keeps the unarmed fast path at two dict lookups).
_ENV_CACHE: Tuple[Optional[Tuple[Optional[str], Optional[str], Optional[str]]],
                  Optional[FaultPlan]] = (None, None)
_ENV_LOCK = threading.Lock()

# Legacy crashpoint env contract (owned by storage.crashpoints, honored
# here so the shim and the registry agree on one set of counters).
_LEGACY_POINT_ENV = "REPRO_STORAGE_CRASH_POINT"
_LEGACY_HITS_ENV = "REPRO_STORAGE_CRASH_HITS"


def mark_worker_process() -> None:
    """Mark this process as a pool worker (``scope="worker"`` specs apply).

    Installed as the process-pool initializer by the sharded pipeline, so
    ``kill`` faults scoped to workers can never shoot the driver — which
    matters once the driver re-executes failed tasks in-process.
    """
    global _IS_WORKER
    _IS_WORKER = True


def _scope_matches(scope: str) -> bool:
    if scope == "any":
        return True
    return _IS_WORKER if scope == "worker" else not _IS_WORKER


def _claim_token(token: str) -> bool:
    """Atomically claim a cross-process once-latch file; True when won."""
    try:
        fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:
        return False
    try:
        os.write(fd, str(os.getpid()).encode("ascii"))
    finally:
        os.close(fd)
    return True


def install_plan(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-wide (forked children inherit it)."""
    global _PLAN
    _PLAN = plan
    return plan


def clear_plan() -> None:
    global _PLAN
    _PLAN = None


@contextmanager
def plan_scope(specs_or_plan):
    """Arm a plan for a ``with`` block, restoring the previous one after."""
    plan = (specs_or_plan if isinstance(specs_or_plan, FaultPlan)
            else FaultPlan(specs_or_plan))
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    try:
        yield plan
    finally:
        _PLAN = previous


def _env_plan() -> Optional[FaultPlan]:
    plan_json = os.environ.get(FAULT_PLAN_ENV)
    legacy_point = os.environ.get(_LEGACY_POINT_ENV)
    legacy_hits = os.environ.get(_LEGACY_HITS_ENV)
    key = (plan_json, legacy_point, legacy_hits)
    if key == (None, None, None):
        return None
    global _ENV_CACHE
    with _ENV_LOCK:
        cached_key, cached_plan = _ENV_CACHE
        if cached_key == key:
            return cached_plan
        specs: List[FaultSpec] = []
        if plan_json:
            specs.extend(FaultSpec.from_dict(entry)
                         for entry in json.loads(plan_json))
        if legacy_point:
            specs.append(FaultSpec(site=f"storage.{legacy_point}", kind="kill",
                                   at_hit=int(legacy_hits or "1")))
        plan = FaultPlan(specs)
        _ENV_CACHE = (key, plan)
        return plan


def current_plan() -> Optional[FaultPlan]:
    """The active plan: the installed one, else one derived from the env."""
    if _PLAN is not None:
        return _PLAN
    return _env_plan()


def reset_hits() -> None:
    """Forget hit counts (harnesses re-arming points between in-process runs)."""
    plan = current_plan()
    if plan is not None:
        plan.reset()


def armed(site: str, kind: Optional[str] = None) -> bool:
    """Whether any active spec targets ``site`` (optionally of one kind).

    An existence check, not a trigger prediction — call sites use it to
    pay a preparation cost (e.g. the WAL flushing its header so a
    mid-append kill leaves a *real* torn entry) only while armed.
    """
    plan = current_plan()
    return plan is not None and bool(plan.specs_for(site, kind))


def check(site: str, **info: object) -> Optional[str]:
    """The universal injection hook; a no-op unless a plan is armed.

    Returns ``"partial"`` when the caller should truncate its answer (see
    :func:`partial_result`), else ``None``.
    """
    plan = current_plan()
    if plan is None:
        return None
    return plan.check(site, info)


def partial_result(**payload: object) -> Dict[str, object]:
    """Build the marker dict a task returns for an injected partial answer."""
    marked = dict(payload)
    marked[PARTIAL_KEY] = True
    return marked


def is_partial(result: object) -> bool:
    """Whether a task result is an injected-partial marker (treat as failed)."""
    return isinstance(result, dict) and bool(result.get(PARTIAL_KEY))
