"""repro.resilience — fault injection, bounded retry, graceful degradation.

The fault-tolerance layer the rest of the system plugs into (see
``docs/resilience.md``):

* :mod:`repro.resilience.faults` — a cross-subsystem fault-injection
  registry (named sites, raise/delay/kill/partial kinds, env or in-process
  arming); ``repro.storage.crashpoints`` is a thin shim over it;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` (bounded attempts,
  exponential backoff, deterministic jitter, per-attempt deadlines) and
  :class:`TaskExecutor`, which the sharded pipeline uses to survive worker
  deaths, timeouts and poisoned tasks, accounting everything it absorbed in
  a :class:`FaultReport`;
* :mod:`repro.resilience.breaker` — the :class:`CircuitBreaker` the serving
  layer wraps around its scoring path, enabling index-only degraded queries
  while the model executor is unhealthy.

Imports only stdlib + :mod:`repro.obs`, so any subsystem may depend on it
without layering cycles.
"""

from . import faults
from .breaker import BREAKER_STATES, CircuitBreaker, CircuitOpen
from .faults import (FAULT_KINDS, FAULT_PLAN_ENV, FaultInjected, FaultPlan,
                     FaultSpec, KILL_EXIT_CODE, SITES)
from .retry import FaultReport, RetryPolicy, TaskExecutor

__all__ = [
    "faults",
    "BREAKER_STATES", "CircuitBreaker", "CircuitOpen",
    "FAULT_KINDS", "FAULT_PLAN_ENV", "FaultInjected", "FaultPlan",
    "FaultSpec", "KILL_EXIT_CODE", "SITES",
    "FaultReport", "RetryPolicy", "TaskExecutor",
]
