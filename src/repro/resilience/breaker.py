"""Circuit breaker: stop hammering a failing dependency, probe for recovery.

The serving layer wraps its scoring path (coalescer + model executor) in a
:class:`CircuitBreaker` so a wedged or erroring model degrades queries
instead of stalling every caller for its full timeout:

* **closed** — requests flow; ``failure_threshold`` *consecutive* failures
  trip the breaker;
* **open** — requests are refused immediately (:class:`CircuitOpen`) until
  ``recovery_seconds`` have passed;
* **half-open** — up to ``half_open_probes`` concurrent requests are let
  through as probes; one success closes the breaker, one failure re-opens
  it for another full recovery window.

State transitions are recorded as ``resilience_*`` metrics and reported to
an optional ``on_transition`` listener (outside the lock), which the
service uses to surface breaker flips in its health report.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from .. import obs

__all__ = ["CircuitBreaker", "CircuitOpen", "BREAKER_STATES"]

BREAKER_STATES = ("closed", "half_open", "open")
_STATE_GAUGE = {"closed": 0, "half_open": 1, "open": 2}


class CircuitOpen(RuntimeError):
    """The breaker refused the call (open, or half-open probes exhausted)."""


class CircuitBreaker:
    """Thread-safe closed → open → half-open state machine.

    ``clock`` is injectable for tests (defaults to ``time.monotonic``).
    Callers bracket the protected operation with :meth:`allow` and
    :meth:`record_success` / :meth:`record_failure`::

        if not breaker.allow():
            raise CircuitOpen("scoring path open")
        try:
            result = protected_call()
        except Exception:
            breaker.record_failure()
            raise
        breaker.record_success()
    """

    def __init__(self, failure_threshold: int = 5,
                 recovery_seconds: float = 30.0,
                 half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Optional[Callable[[str, str], None]] = None) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, "
                             f"got {failure_threshold}")
        if recovery_seconds < 0:
            raise ValueError(f"recovery_seconds must be >= 0, "
                             f"got {recovery_seconds}")
        if half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, "
                             f"got {half_open_probes}")
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.half_open_probes = half_open_probes
        self.on_transition = on_transition
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        # Lifetime counters (under the lock).
        self._successes = 0
        self._failures = 0
        self._opens = 0

    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when recovery elapsed."""
        with self._lock:
            return self._advance()

    def allow(self) -> bool:
        """Whether a request may proceed (consumes a probe slot half-open)."""
        with self._lock:
            state = self._advance()
            if state == "closed":
                return True
            if state == "open":
                return False
            if self._probes_in_flight >= self.half_open_probes:
                return False
            self._probes_in_flight += 1
            return True

    def record_success(self) -> None:
        transition = None
        with self._lock:
            self._successes += 1
            self._consecutive_failures = 0
            if self._state == "half_open":
                self._probes_in_flight = max(self._probes_in_flight - 1, 0)
                transition = self._transition("closed")
        self._notify(transition)

    def record_failure(self) -> None:
        transition = None
        with self._lock:
            self._failures += 1
            self._consecutive_failures += 1
            if self._state == "half_open":
                self._probes_in_flight = max(self._probes_in_flight - 1, 0)
                transition = self._open()
            elif (self._state == "closed"
                  and self._consecutive_failures >= self.failure_threshold):
                transition = self._open()
        self._notify(transition)

    def force_open(self) -> None:
        """Trip the breaker immediately (chaos benches and drills)."""
        with self._lock:
            transition = self._open() if self._state != "open" else None
        self._notify(transition)

    def reset(self) -> None:
        """Force-close and forget consecutive failures (operator override)."""
        with self._lock:
            self._consecutive_failures = 0
            self._probes_in_flight = 0
            transition = (self._transition("closed")
                          if self._state != "closed" else None)
        self._notify(transition)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            state = self._advance()
            return {
                "state": state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "recovery_seconds": self.recovery_seconds,
                "successes": self._successes,
                "failures": self._failures,
                "opens": self._opens,
                "seconds_open": (self._clock() - self._opened_at
                                 if state == "open" else 0.0),
            }

    # ------------------------------------------------------------------ #
    # Internal (call under the lock)
    # ------------------------------------------------------------------ #
    def _advance(self) -> str:
        if (self._state == "open"
                and self._clock() - self._opened_at >= self.recovery_seconds):
            self._probes_in_flight = 0
            # A time-driven flip has no natural "after the lock" seam for
            # the listener; metrics are still emitted by _transition, and
            # the listener is for request-driven flips the service logs.
            self._transition("half_open")
        return self._state

    def _open(self):
        self._opened_at = self._clock()
        self._opens += 1
        return self._transition("open")

    def _transition(self, new_state: str):
        old_state, self._state = self._state, new_state
        obs.counter("resilience_breaker_transitions_total",
                    "Circuit-breaker state changes",
                    {"from": old_state, "to": new_state}).inc()
        obs.gauge("resilience_breaker_state_count",
                  "Breaker state (0 closed, 1 half-open, 2 open)").set(
            _STATE_GAUGE[new_state])
        return (old_state, new_state)

    def _notify(self, transition) -> None:
        if transition is not None and self.on_transition is not None:
            self.on_transition(*transition)

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failure_threshold={self.failure_threshold}, "
                f"recovery_seconds={self.recovery_seconds})")
