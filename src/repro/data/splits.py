"""Train / test splitting helpers."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..utils.rng import SeedLike, spawn_rng
from .records import EntityPair

__all__ = ["train_test_split", "stratified_split", "split_by_sources"]


def train_test_split(pairs: Sequence[EntityPair], test_fraction: float = 0.25,
                     seed: SeedLike = 0) -> Tuple[List[EntityPair], List[EntityPair]]:
    """Random split of pairs into (train, test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = spawn_rng(seed)
    order = np.arange(len(pairs))
    rng.shuffle(order)
    cut = int(round(len(pairs) * (1.0 - test_fraction)))
    train = [pairs[i] for i in order[:cut]]
    test = [pairs[i] for i in order[cut:]]
    return train, test


def stratified_split(pairs: Sequence[EntityPair], test_fraction: float = 0.25,
                     seed: SeedLike = 0) -> Tuple[List[EntityPair], List[EntityPair]]:
    """Split preserving the positive/negative ratio in both halves."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = spawn_rng(seed)
    train: List[EntityPair] = []
    test: List[EntityPair] = []
    for label in (0, 1, None):
        group = [pair for pair in pairs if pair.label == label] if label is not None else \
                [pair for pair in pairs if pair.label is None]
        if not group:
            continue
        order = np.arange(len(group))
        rng.shuffle(order)
        cut = int(round(len(group) * (1.0 - test_fraction)))
        train.extend(group[i] for i in order[:cut])
        test.extend(group[i] for i in order[cut:])
    rng.shuffle(train)
    rng.shuffle(test)
    return train, test


def split_by_sources(pairs: Sequence[EntityPair], seen_sources: Sequence[str]
                     ) -> Tuple[List[EntityPair], List[EntityPair]]:
    """Split pairs into (seen-only, touching-unseen) based on record sources.

    A pair goes to the first list only when *both* records come from
    ``seen_sources``; otherwise (at least one unseen source) it goes to the
    second list, which is how the target domain is defined (Definition 3.1).
    """
    seen = set(seen_sources)
    seen_only: List[EntityPair] = []
    touching_unseen: List[EntityPair] = []
    for pair in pairs:
        if pair.source_set() <= seen:
            seen_only.append(pair)
        else:
            touching_unseen.append(pair)
    return seen_only, touching_unseen
