"""Entity records and entity pairs — the basic data objects of MEL.

A :class:`Record` is a row collected from one data source (website/database)
identified by its textual attributes.  A :class:`EntityPair` couples two
records and, optionally, a matching/non-matching label.  AdaMEL always works
on pairs (Problem 1/2 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Record", "EntityPair", "MISSING_VALUE"]

MISSING_VALUE = ""


@dataclass(frozen=True)
class Record:
    """An entity record from one data source.

    Attributes
    ----------
    record_id:
        Unique identifier within the corpus.
    source:
        The data source (``r*`` in the paper) this record was sampled from.
    attributes:
        Mapping of attribute name to textual value; missing values are the
        empty string (challenge C1).
    entity_id:
        The id of the underlying real-world entity when known (used by the
        synthetic generators to derive labels; hidden from the models).
    entity_type:
        Optional entity type (artist / album / track / monitor).
    """

    record_id: str
    source: str
    attributes: Mapping[str, str]
    entity_id: Optional[str] = None
    entity_type: Optional[str] = None

    def value(self, attribute: str) -> str:
        """Return the value of ``attribute`` (empty string when missing)."""
        value = self.attributes.get(attribute, MISSING_VALUE)
        return value if value is not None else MISSING_VALUE

    def has_value(self, attribute: str) -> bool:
        """Whether the attribute has a non-empty value."""
        return bool(self.value(attribute).strip())

    def attribute_names(self) -> Tuple[str, ...]:
        """Names of the attributes present on this record."""
        return tuple(self.attributes.keys())

    def with_attributes(self, attributes: Mapping[str, str]) -> "Record":
        """Return a copy with ``attributes`` replacing the current mapping."""
        return Record(
            record_id=self.record_id,
            source=self.source,
            attributes=dict(attributes),
            entity_id=self.entity_id,
            entity_type=self.entity_type,
        )

    def missing_attributes(self, schema: Iterable[str]) -> List[str]:
        """Attributes of ``schema`` with no value on this record."""
        return [attribute for attribute in schema if not self.has_value(attribute)]

    def to_dict(self) -> Dict[str, object]:
        """Serialise to a plain dict (for CSV/JSONL storage)."""
        return {
            "record_id": self.record_id,
            "source": self.source,
            "entity_id": self.entity_id,
            "entity_type": self.entity_type,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Record":
        """Inverse of :meth:`to_dict`."""
        return cls(
            record_id=str(payload["record_id"]),
            source=str(payload["source"]),
            attributes=dict(payload.get("attributes", {})),  # type: ignore[arg-type]
            entity_id=payload.get("entity_id"),  # type: ignore[arg-type]
            entity_type=payload.get("entity_type"),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class EntityPair:
    """A pair of entity records with an optional matching label.

    ``label`` is ``1`` for matching, ``0`` for non-matching, ``None`` when
    unlabeled (target-domain pairs before annotation).
    """

    left: Record
    right: Record
    label: Optional[int] = None
    pair_id: Optional[str] = None
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.label is not None and self.label not in (0, 1):
            raise ValueError(f"label must be 0, 1 or None, got {self.label!r}")
        if self.pair_id is None:
            object.__setattr__(self, "pair_id", f"{self.left.record_id}|{self.right.record_id}")

    @property
    def is_labeled(self) -> bool:
        return self.label is not None

    @property
    def sources(self) -> Tuple[str, str]:
        """The pair's (left source, right source)."""
        return self.left.source, self.right.source

    def source_set(self) -> frozenset:
        """Set of data sources this pair touches."""
        return frozenset((self.left.source, self.right.source))

    def values(self, attribute: str) -> Tuple[str, str]:
        """Return (left value, right value) for ``attribute``."""
        return self.left.value(attribute), self.right.value(attribute)

    def both_present(self, attribute: str) -> bool:
        """True when neither side is missing ``attribute`` (Fig. 11 metric)."""
        return self.left.has_value(attribute) and self.right.has_value(attribute)

    def with_label(self, label: Optional[int]) -> "EntityPair":
        """Return a copy of this pair carrying ``label``."""
        return EntityPair(left=self.left, right=self.right, label=label,
                          pair_id=self.pair_id, weight=self.weight)

    def unlabeled(self) -> "EntityPair":
        """Return a copy with the label removed (target-domain view)."""
        return self.with_label(None)

    def to_dict(self) -> Dict[str, object]:
        """Serialise to a plain dict."""
        return {
            "pair_id": self.pair_id,
            "label": self.label,
            "weight": self.weight,
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EntityPair":
        """Inverse of :meth:`to_dict`."""
        return cls(
            left=Record.from_dict(payload["left"]),  # type: ignore[arg-type]
            right=Record.from_dict(payload["right"]),  # type: ignore[arg-type]
            label=payload.get("label"),  # type: ignore[arg-type]
            pair_id=payload.get("pair_id"),  # type: ignore[arg-type]
            weight=float(payload.get("weight", 1.0)),  # type: ignore[arg-type]
        )
