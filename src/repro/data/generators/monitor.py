"""Synthetic Monitor corpus (DI2KG challenge analogue).

The public Monitor dataset aggregates monitor listings from 24 shopping
websites.  This generator reproduces its documented characteristics
(Section 5.1 and Appendix A.2 of the paper):

* 24 data sources, 5 of which (``ebay.com``, ``catalog.com``,
  ``best-deal-items.com``, ``cleverboxes.com``, ``ca.pcpartpicker.com``)
  form the seen source domain of the experiments;
* 13 textual attributes, of which only ``page_title`` and ``source`` are
  nearly always populated; most others are missing on >50 % of pairs (C1);
* five attributes are populated only on target-domain sources (C2);
* the token distribution of ``prod_type`` differs between the seen and unseen
  sources (C3, Fig. 12);
* heavy class imbalance (the real dataset is >99 % non-matching).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...utils.rng import SeedLike
from ..schema import Schema
from .base import CorpusGenerator, MultiSourceCorpus, SyntheticEntity
from .corruptions import SourceStyle
from .names import CONDITIONS, MONITOR_BRANDS, MONITOR_FEATURES, MONITOR_PANEL_TYPES, MONITOR_TYPES

__all__ = ["MonitorCorpusGenerator", "MONITOR_SCHEMA", "MONITOR_SOURCES", "MONITOR_SEEN_SOURCES"]

MONITOR_SCHEMA = Schema((
    "page_title",
    "source",
    "manufacturer",
    "prod_type",
    "screen_size",
    "resolution",
    "condition",
    "price",
    "model",
    "refresh_rate",
    "panel_type",
    "ports",
    "warranty",
))

# Attributes that only target-domain sources populate (challenge C2);
# the paper reports 5 of 13 attributes with non-missing pairs only in D_T.
TARGET_ONLY_ATTRIBUTES = frozenset({"refresh_rate", "panel_type", "ports", "warranty", "model"})

MONITOR_SEEN_SOURCES: Sequence[str] = (
    "ebay.com", "catalog.com", "best-deal-items.com", "cleverboxes.com", "ca.pcpartpicker.com",
)

_EXTRA_SOURCES: Sequence[str] = (
    "yikus.com", "getprice.com", "shopmania.com", "pricedekho.com", "buzzillions.com",
    "productreview.net", "shopzilla.net", "pricequebec.com", "monitors-direct.com",
    "displaydeals.io", "techbargains.org", "screenfinder.net", "officesupply.example",
    "electrovalue.example", "gadgetmart.example", "visualshop.example", "pixelprice.example",
    "brightdeals.example", "panelplaza.example",
)

MONITOR_SOURCES: Sequence[str] = tuple(MONITOR_SEEN_SOURCES) + tuple(_EXTRA_SOURCES)

_RESOLUTIONS = ("1920x1080", "2560x1440", "3840x2160", "1680x1050", "1280x1024", "3440x1440")
_REFRESH_RATES = ("60hz", "75hz", "120hz", "144hz", "165hz", "240hz")
_WARRANTIES = ("1 year", "2 years", "3 years", "90 days", "5 years limited")

# prod_type vocabulary shift between seen and unseen sources (Fig. 12).
_SEEN_PROD_TYPES = ("led monitor", "lcd monitor", "business monitor", "professional monitor")
_TARGET_PROD_TYPES = ("gaming monitor", "curved monitor", "ultrawide monitor", "4k monitor",
                      "touchscreen monitor", "portable monitor")


@dataclass
class MonitorGeneratorConfig:
    """Size and imbalance knobs for the Monitor generator."""

    num_entities: int = 150
    negatives_per_positive: float = 6.0
    hard_negative_fraction: float = 0.75
    near_duplicate_fraction: float = 0.4
    min_sources_per_entity: int = 2
    max_sources_per_entity: int = 6


class MonitorCorpusGenerator(CorpusGenerator):
    """Generate the synthetic Monitor corpus."""

    def __init__(self, config: Optional[MonitorGeneratorConfig] = None,
                 num_sources: int = 24, seed: SeedLike = 0) -> None:
        super().__init__(seed=seed)
        if not 6 <= num_sources <= len(MONITOR_SOURCES):
            raise ValueError(
                f"num_sources must be between 6 and {len(MONITOR_SOURCES)}, got {num_sources}"
            )
        self.config = config or MonitorGeneratorConfig()
        self.sources: List[str] = list(MONITOR_SOURCES[:num_sources])

    # ------------------------------------------------------------------ #
    def entity_catalogue(self, num_entities: int) -> List[SyntheticEntity]:
        entities: List[SyntheticEntity] = []
        for index in range(num_entities):
            if entities and self.rng.random() < self.config.near_duplicate_fraction:
                # Near-duplicate: same product family (brand + model series) as
                # an existing monitor, differing only in the size/variant code —
                # the classic hard case in product matching.
                template = entities[int(self.rng.integers(len(entities)))]
                brand = template.attributes["manufacturer"]
                series = template.attributes["model"][0]
                base_number = int(template.attributes["model"][1:])
                model_number = f"{series}{base_number + int(self.rng.integers(1, 5))}"
            else:
                brand = MONITOR_BRANDS[int(self.rng.integers(len(MONITOR_BRANDS)))]
                series = chr(ord("a") + int(self.rng.integers(26))).upper()
                model_number = f"{series}{int(self.rng.integers(1000, 9999))}"
            size = f"{int(self.rng.integers(19, 49))}"
            resolution = _RESOLUTIONS[int(self.rng.integers(len(_RESOLUTIONS)))]
            prod_type = MONITOR_TYPES[int(self.rng.integers(len(MONITOR_TYPES)))]
            panel = MONITOR_PANEL_TYPES[int(self.rng.integers(len(MONITOR_PANEL_TYPES)))]
            refresh = _REFRESH_RATES[int(self.rng.integers(len(_REFRESH_RATES)))]
            price = f"{int(self.rng.integers(89, 1899))}.{int(self.rng.integers(0, 99)):02d}"
            feature_count = int(self.rng.integers(1, 4))
            feature_ids = self.rng.choice(len(MONITOR_FEATURES), size=feature_count, replace=False)
            ports = " ".join(MONITOR_FEATURES[int(i)] for i in feature_ids)
            condition = CONDITIONS[int(self.rng.integers(len(CONDITIONS)))]
            warranty = _WARRANTIES[int(self.rng.integers(len(_WARRANTIES)))]
            page_title = f"{brand} {model_number} {size} inch {prod_type} {resolution}"
            attributes = {
                "page_title": page_title,
                "manufacturer": brand,
                "prod_type": prod_type,
                "screen_size": f"{size} inch",
                "resolution": resolution,
                "condition": condition,
                "price": price,
                "model": model_number,
                "refresh_rate": refresh,
                "panel_type": panel,
                "ports": ports,
                "warranty": warranty,
            }
            entities.append(SyntheticEntity(entity_id=f"monitor_{index}", entity_type="monitor",
                                            attributes=attributes))
        return entities

    # ------------------------------------------------------------------ #
    def source_styles(self) -> Dict[str, SourceStyle]:
        styles: Dict[str, SourceStyle] = {}
        seen_set = set(MONITOR_SEEN_SOURCES)
        for index, source in enumerate(self.sources):
            seen = source in seen_set
            if seen:
                # Seen sources never populate the target-only attributes and
                # mostly use the "seen" prod_type vocabulary.
                supported = frozenset(attr for attr in MONITOR_SCHEMA
                                      if attr not in TARGET_ONLY_ATTRIBUTES)
                prod_type_overrides = {ptype: _SEEN_PROD_TYPES[i % len(_SEEN_PROD_TYPES)]
                                       for i, ptype in enumerate(MONITOR_TYPES)}
                styles[source] = SourceStyle(
                    source=source,
                    supported_attributes=supported,
                    default_missing_rate=0.45,
                    missing_rates={"page_title": 0.02, "source": 0.0, "manufacturer": 0.35,
                                   "prod_type": 0.4, "condition": 0.5},
                    typo_rate=0.02,
                    vocabulary_overrides={"prod_type": prod_type_overrides},
                    prefix_tokens={"page_title": "buy" if index == 0 else ""},
                )
            else:
                prod_type_overrides = {ptype: _TARGET_PROD_TYPES[i % len(_TARGET_PROD_TYPES)]
                                       for i, ptype in enumerate(MONITOR_TYPES)}
                styles[source] = SourceStyle(
                    source=source,
                    supported_attributes=None,
                    default_missing_rate=0.55,
                    missing_rates={"page_title": 0.03, "source": 0.0, "manufacturer": 0.45,
                                   "prod_type": 0.45, "refresh_rate": 0.5, "panel_type": 0.55,
                                   "ports": 0.6, "warranty": 0.65, "model": 0.5},
                    typo_rate=0.04,
                    token_drop_rate=0.06,
                    uppercase=(index % 7 == 6),
                    titlecase=(index % 5 == 4),
                    vocabulary_overrides={"prod_type": prod_type_overrides},
                    suffix_tokens={"page_title": "free shipping" if index % 4 == 3 else ""},
                )
        return styles

    # ------------------------------------------------------------------ #
    def generate(self) -> MultiSourceCorpus:
        """Generate the corpus with records, labeled pairs and metadata."""
        config = self.config
        entities = self.entity_catalogue(config.num_entities)
        styles = self.source_styles()
        records = self.render_records(entities, MONITOR_SCHEMA, styles,
                                      min_sources_per_entity=config.min_sources_per_entity,
                                      max_sources_per_entity=config.max_sources_per_entity)
        records = [record.with_attributes({**record.attributes, "source": record.source})
                   for record in records]
        pairs = self.build_pairs(records,
                                 negatives_per_positive=config.negatives_per_positive,
                                 hard_negative_fraction=config.hard_negative_fraction)
        return MultiSourceCorpus(
            name="monitor",
            records=records,
            pairs=pairs,
            sources=list(self.sources),
            schema=MONITOR_SCHEMA,
            entity_type="monitor",
        )
