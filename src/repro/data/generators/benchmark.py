"""Synthetic single-domain EM benchmark datasets (Table 7 substitutes).

Table 7 of the paper evaluates DeepMatcher, AdaMEL-zero and AdaMEL-hyb on the
public Magellan benchmark datasets (Amazon-Google, Beer, DBLP-ACM, …) in both
their *structured* (clean) and *dirty* variants.  Those datasets are not
bundled offline, so this module generates single-domain two-source corpora
with a per-dataset difficulty profile chosen to mirror the relative hardness
reported in the literature: citation datasets (DBLP-ACM) are near-trivial,
product datasets with noisy titles (Walmart-Amazon, Amazon-Google) are hard,
and "dirty" variants inject attribute-value swaps and missing values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...utils.rng import SeedLike, spawn_rng
from ..records import EntityPair
from ..schema import Schema
from .base import CorpusGenerator, MultiSourceCorpus, SyntheticEntity
from .corruptions import SourceStyle
from .names import GENRES, random_person_name, random_title

__all__ = ["BenchmarkProfile", "BENCHMARK_PROFILES", "BenchmarkGenerator", "load_benchmark"]

BENCHMARK_SCHEMA = Schema(("title", "creator", "description", "year", "price", "category"))


@dataclass(frozen=True)
class BenchmarkProfile:
    """Difficulty profile of one benchmark dataset."""

    name: str
    domain: str
    variant: str  # "structured" or "dirty"
    num_entities: int
    typo_rate: float
    missing_rate: float
    abbreviation_probability: float
    negatives_per_positive: float
    attribute_swap_probability: float = 0.0  # dirty variants move values across attributes


BENCHMARK_PROFILES: Dict[str, BenchmarkProfile] = {
    "amazon-google": BenchmarkProfile("amazon-google", "software", "structured",
                                      num_entities=90, typo_rate=0.08, missing_rate=0.15,
                                      abbreviation_probability=0.35, negatives_per_positive=3.0),
    "beer": BenchmarkProfile("beer", "product", "structured",
                             num_entities=60, typo_rate=0.05, missing_rate=0.1,
                             abbreviation_probability=0.2, negatives_per_positive=2.0),
    "dblp-acm": BenchmarkProfile("dblp-acm", "citation", "structured",
                                 num_entities=90, typo_rate=0.01, missing_rate=0.02,
                                 abbreviation_probability=0.05, negatives_per_positive=2.0),
    "dblp-google": BenchmarkProfile("dblp-google", "citation", "structured",
                                    num_entities=90, typo_rate=0.03, missing_rate=0.05,
                                    abbreviation_probability=0.1, negatives_per_positive=2.0),
    "fodors-zagats": BenchmarkProfile("fodors-zagats", "restaurant", "structured",
                                      num_entities=60, typo_rate=0.01, missing_rate=0.02,
                                      abbreviation_probability=0.05, negatives_per_positive=2.0),
    "itunes-amazon": BenchmarkProfile("itunes-amazon", "music", "structured",
                                      num_entities=70, typo_rate=0.04, missing_rate=0.08,
                                      abbreviation_probability=0.15, negatives_per_positive=2.5),
    "walmart-amazon": BenchmarkProfile("walmart-amazon", "electronics", "structured",
                                       num_entities=90, typo_rate=0.09, missing_rate=0.2,
                                       abbreviation_probability=0.4, negatives_per_positive=3.0),
    "dirty-dblp-acm": BenchmarkProfile("dirty-dblp-acm", "citation", "dirty",
                                       num_entities=90, typo_rate=0.04, missing_rate=0.15,
                                       abbreviation_probability=0.1, negatives_per_positive=2.0,
                                       attribute_swap_probability=0.25),
    "dirty-dblp-google": BenchmarkProfile("dirty-dblp-google", "citation", "dirty",
                                          num_entities=90, typo_rate=0.06, missing_rate=0.2,
                                          abbreviation_probability=0.15, negatives_per_positive=2.0,
                                          attribute_swap_probability=0.3),
    "dirty-itunes-amazon": BenchmarkProfile("dirty-itunes-amazon", "music", "dirty",
                                            num_entities=70, typo_rate=0.07, missing_rate=0.2,
                                            abbreviation_probability=0.25, negatives_per_positive=2.5,
                                            attribute_swap_probability=0.3),
    "dirty-walmart-amazon": BenchmarkProfile("dirty-walmart-amazon", "electronics", "dirty",
                                             num_entities=90, typo_rate=0.12, missing_rate=0.3,
                                             abbreviation_probability=0.45, negatives_per_positive=3.0,
                                             attribute_swap_probability=0.35),
}


class BenchmarkGenerator(CorpusGenerator):
    """Generate a single-domain, two-source EM dataset from a profile."""

    def __init__(self, profile: BenchmarkProfile, seed: SeedLike = 0) -> None:
        super().__init__(seed=seed)
        self.profile = profile
        self.sources = (f"{profile.name}-left", f"{profile.name}-right")

    def entity_catalogue(self, num_entities: int) -> List[SyntheticEntity]:
        entities: List[SyntheticEntity] = []
        for index in range(num_entities):
            title = random_title(self.rng, min_words=2, max_words=5)
            creator = random_person_name(self.rng)
            description = random_title(self.rng, min_words=4, max_words=8).lower()
            year = str(int(self.rng.integers(1990, 2021)))
            price = f"{int(self.rng.integers(5, 900))}.{int(self.rng.integers(0, 99)):02d}"
            category = GENRES[int(self.rng.integers(len(GENRES)))]
            entities.append(SyntheticEntity(
                entity_id=f"{self.profile.name}_{index}",
                entity_type=self.profile.domain,
                attributes={
                    "title": title,
                    "creator": creator,
                    "description": description,
                    "year": year,
                    "price": price,
                    "category": category,
                },
            ))
        return entities

    def source_styles(self) -> Dict[str, SourceStyle]:
        profile = self.profile
        left, right = self.sources
        return {
            left: SourceStyle(
                source=left,
                default_missing_rate=profile.missing_rate / 2,
                typo_rate=profile.typo_rate / 2,
            ),
            right: SourceStyle(
                source=right,
                default_missing_rate=profile.missing_rate,
                typo_rate=profile.typo_rate,
                abbreviate_attributes=frozenset({"creator"}),
                abbreviate_probability=profile.abbreviation_probability,
                token_drop_rate=profile.typo_rate,
            ),
        }

    def _dirty_swap(self, corpus: MultiSourceCorpus) -> MultiSourceCorpus:
        """For dirty variants, move values between attributes with some probability."""
        probability = self.profile.attribute_swap_probability
        if probability <= 0:
            return corpus
        attributes = list(BENCHMARK_SCHEMA)
        swapped_records = []
        for record in corpus.records:
            values = dict(record.attributes)
            if self.rng.random() < probability:
                i, j = self.rng.choice(len(attributes), size=2, replace=False)
                attr_i, attr_j = attributes[int(i)], attributes[int(j)]
                values[attr_i], values[attr_j] = values.get(attr_j, ""), values.get(attr_i, "")
            swapped_records.append(record.with_attributes(values))
        by_id = {record.record_id: record for record in swapped_records}
        swapped_pairs = [EntityPair(left=by_id[p.left.record_id], right=by_id[p.right.record_id],
                                    label=p.label, pair_id=p.pair_id, weight=p.weight)
                         for p in corpus.pairs]
        return MultiSourceCorpus(name=corpus.name, records=swapped_records, pairs=swapped_pairs,
                                 sources=corpus.sources, schema=corpus.schema,
                                 entity_type=corpus.entity_type)

    def generate(self) -> MultiSourceCorpus:
        profile = self.profile
        entities = self.entity_catalogue(profile.num_entities)
        styles = self.source_styles()
        records = self.render_records(entities, BENCHMARK_SCHEMA, styles,
                                      min_sources_per_entity=2, max_sources_per_entity=2)
        pairs = self.build_pairs(records,
                                 negatives_per_positive=profile.negatives_per_positive,
                                 hard_negative_fraction=0.5)
        corpus = MultiSourceCorpus(
            name=profile.name,
            records=records,
            pairs=pairs,
            sources=list(self.sources),
            schema=BENCHMARK_SCHEMA,
            entity_type=profile.domain,
        )
        return self._dirty_swap(corpus)


def load_benchmark(name: str, seed: SeedLike = 0) -> MultiSourceCorpus:
    """Generate the benchmark dataset registered under ``name``."""
    key = name.lower()
    if key not in BENCHMARK_PROFILES:
        raise KeyError(f"unknown benchmark {name!r}; available: {sorted(BENCHMARK_PROFILES)}")
    return BenchmarkGenerator(BENCHMARK_PROFILES[key], seed=seed).generate()
