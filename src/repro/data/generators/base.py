"""Shared machinery for synthetic multi-source corpus generation.

A corpus is produced in three steps:

1. sample an *entity catalogue*: real-world entities with canonical attribute
   values;
2. render each entity as records on a subset of data sources, applying the
   source's :class:`~repro.data.generators.corruptions.SourceStyle`
   (this is where challenges C1-C3 enter);
3. form labeled entity pairs: positives are cross-source record pairs of the
   same entity, negatives pair records of different entities, with a
   configurable share of *hard* negatives that share surface tokens.

The resulting :class:`MultiSourceCorpus` can be turned into a
:class:`~repro.data.domain.MELScenario` via :meth:`MultiSourceCorpus.build_scenario`,
matching the experimental protocol of Section 5.2 (overlapping / disjoint).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ...utils.rng import SeedLike, spawn_rng
from ..domain import MELScenario, PairCollection, SourceDomain, SupportSet, TargetDomain
from ..records import EntityPair, Record
from ..sampling import sample_support_set
from ..schema import Schema
from .corruptions import SourceStyle, apply_style

__all__ = ["SyntheticEntity", "MultiSourceCorpus", "CorpusGenerator"]


@dataclass(frozen=True)
class SyntheticEntity:
    """A ground-truth real-world entity with canonical attribute values."""

    entity_id: str
    entity_type: str
    attributes: Dict[str, str]

    def value(self, attribute: str) -> str:
        return self.attributes.get(attribute, "")


@dataclass
class MultiSourceCorpus:
    """A generated corpus: records, labeled pairs, and source metadata."""

    name: str
    records: List[Record]
    pairs: List[EntityPair]
    sources: List[str]
    schema: Schema
    entity_type: Optional[str] = None

    def records_by_source(self) -> Dict[str, List[Record]]:
        grouped: Dict[str, List[Record]] = {source: [] for source in self.sources}
        for record in self.records:
            grouped.setdefault(record.source, []).append(record)
        return grouped

    def pair_collection(self, name: Optional[str] = None) -> PairCollection:
        return PairCollection(self.pairs, name=name or self.name)

    def positive_rate(self) -> float:
        return self.pair_collection().positive_rate()

    # ------------------------------------------------------------------ #
    # Scenario construction (Section 5.2 protocol)
    # ------------------------------------------------------------------ #
    def build_scenario(self, seen_sources: Sequence[str], mode: str = "overlapping",
                       support_size: int = 100, test_size: Optional[int] = None,
                       max_train: Optional[int] = None, seed: SeedLike = 0,
                       name: Optional[str] = None) -> MELScenario:
        """Split the corpus into a :class:`MELScenario`.

        Parameters
        ----------
        seen_sources:
            The sources whose labeled pairs form the source domain ``D_S``.
        mode:
            ``"overlapping"`` — target pairs have at least one record from an
            unseen source (sources may overlap with ``D*_S``);
            ``"disjoint"`` — both records of every target pair come from
            unseen sources.
        support_size:
            Number of labeled pairs drawn from the target pool as ``S_U``
            (0 disables the support set).
        test_size:
            Number of labeled target pairs held out for evaluation
            (default: all remaining target pairs).
        max_train:
            Optional cap on the number of source-domain training pairs.
        """
        if mode not in {"overlapping", "disjoint"}:
            raise ValueError(f"mode must be 'overlapping' or 'disjoint', got {mode!r}")
        seen = set(seen_sources)
        unknown = seen - set(self.sources)
        if unknown:
            raise ValueError(f"unknown seen sources: {sorted(unknown)}")
        rng = spawn_rng(seed)

        source_pairs = [pair for pair in self.pairs if pair.source_set() <= seen]
        if mode == "overlapping":
            target_pool = [pair for pair in self.pairs if pair.source_set() - seen]
        else:
            target_pool = [pair for pair in self.pairs if not (pair.source_set() & seen)]
        if not source_pairs:
            raise ValueError("no labeled pairs fall entirely within the seen sources")
        if not target_pool:
            raise ValueError(f"no target pairs available for mode={mode!r}")

        if max_train is not None and len(source_pairs) > max_train:
            indices = rng.choice(len(source_pairs), size=max_train, replace=False)
            source_pairs = [source_pairs[i] for i in indices]

        # Support set first (balanced), then the test set from the remainder,
        # then the unlabeled adaptation pool is everything in the target pool.
        support_pairs: List[EntityPair] = []
        remaining = list(target_pool)
        if support_size > 0:
            support_pairs = sample_support_set(target_pool, size=support_size, balanced=True,
                                               seed=rng.integers(0, 2**31 - 1))
            support_ids = {pair.pair_id for pair in support_pairs}
            remaining = [pair for pair in target_pool if pair.pair_id not in support_ids]
        if test_size is not None and len(remaining) > test_size:
            # Keep the test set class-balanced in proportion to the pool.
            indices = rng.choice(len(remaining), size=test_size, replace=False)
            test_pairs = [remaining[i] for i in indices]
        else:
            test_pairs = remaining
        if not test_pairs:
            raise ValueError("target pool too small to build a test set; "
                             "reduce support_size or generate more pairs")

        scenario = MELScenario(
            source=SourceDomain(source_pairs, name=f"{self.name}-source"),
            target=TargetDomain(target_pool, name=f"{self.name}-target"),
            test=PairCollection(test_pairs, name=f"{self.name}-test"),
            support=SupportSet(support_pairs, name=f"{self.name}-support") if support_pairs else None,
            name=name or f"{self.name}-{mode}",
            entity_type=self.entity_type,
        )
        return scenario.align()


class CorpusGenerator:
    """Base class turning an entity catalogue + source styles into a corpus."""

    def __init__(self, seed: SeedLike = 0) -> None:
        self.rng = spawn_rng(seed)

    # Subclasses provide entity sampling and source styles. ------------- #
    def entity_catalogue(self, num_entities: int) -> List[SyntheticEntity]:
        raise NotImplementedError

    def source_styles(self) -> Dict[str, SourceStyle]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def render_record(self, entity: SyntheticEntity, style: SourceStyle,
                      schema: Schema, record_index: int) -> Record:
        """Render one entity as a record in the style of ``style.source``."""
        attributes = {attr: apply_style(style, attr, entity.value(attr), self.rng)
                      for attr in schema}
        return Record(
            record_id=f"{style.source}#{entity.entity_id}#{record_index}",
            source=style.source,
            attributes=attributes,
            entity_id=entity.entity_id,
            entity_type=entity.entity_type,
        )

    def render_records(self, entities: Sequence[SyntheticEntity], schema: Schema,
                       styles: Dict[str, SourceStyle],
                       min_sources_per_entity: int = 2,
                       max_sources_per_entity: Optional[int] = None) -> List[Record]:
        """Render every entity on a random subset of sources."""
        source_names = list(styles)
        max_sources = max_sources_per_entity or len(source_names)
        max_sources = min(max_sources, len(source_names))
        min_sources = min(min_sources_per_entity, max_sources)
        records: List[Record] = []
        for entity in entities:
            count = int(self.rng.integers(min_sources, max_sources + 1))
            chosen = self.rng.choice(len(source_names), size=count, replace=False)
            for index, source_index in enumerate(chosen):
                style = styles[source_names[int(source_index)]]
                records.append(self.render_record(entity, style, schema, index))
        return records

    def build_pairs(self, records: Sequence[Record], negatives_per_positive: float = 1.0,
                    hard_negative_fraction: float = 0.5,
                    max_positive_pairs: Optional[int] = None) -> List[EntityPair]:
        """Create labeled pairs from rendered records.

        Positives: all (or up to ``max_positive_pairs``) cross-source record
        pairs of the same entity.  Negatives: ``negatives_per_positive`` times
        as many pairs of records from different entities; a
        ``hard_negative_fraction`` of them share at least one attribute token
        with their partner, making them non-trivial.
        """
        by_entity: Dict[str, List[Record]] = {}
        for record in records:
            if record.entity_id is not None:
                by_entity.setdefault(record.entity_id, []).append(record)

        positives: List[EntityPair] = []
        for group in by_entity.values():
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    if group[i].source == group[j].source:
                        continue
                    positives.append(EntityPair(left=group[i], right=group[j], label=1))
        if max_positive_pairs is not None and len(positives) > max_positive_pairs:
            indices = self.rng.choice(len(positives), size=max_positive_pairs, replace=False)
            positives = [positives[i] for i in indices]

        num_negatives = int(round(len(positives) * negatives_per_positive))
        negatives = self._sample_negatives(records, by_entity, num_negatives,
                                           hard_negative_fraction)
        pairs = positives + negatives
        self.rng.shuffle(pairs)
        return pairs

    def _sample_negatives(self, records: Sequence[Record], by_entity: Dict[str, List[Record]],
                          num_negatives: int, hard_fraction: float) -> List[EntityPair]:
        """Sample non-matching pairs, a fraction of which share surface tokens."""
        if num_negatives <= 0 or len(by_entity) < 2:
            return []
        record_list = list(records)
        # Index records by their first title-ish token for hard negatives.
        token_index: Dict[str, List[Record]] = {}
        for record in record_list:
            for value in record.attributes.values():
                for token in value.lower().split()[:2]:
                    if len(token) >= 3:
                        token_index.setdefault(token, []).append(record)

        negatives: List[EntityPair] = []
        seen_keys: Set[Tuple[str, str]] = set()
        target_hard = int(round(num_negatives * hard_fraction))
        attempts = 0
        max_attempts = num_negatives * 30
        tokens = [tok for tok, recs in token_index.items() if len(recs) >= 2]
        while len(negatives) < num_negatives and attempts < max_attempts:
            attempts += 1
            use_hard = len(negatives) < target_hard and tokens
            if use_hard:
                token = tokens[int(self.rng.integers(len(tokens)))]
                bucket = token_index[token]
                i, j = self.rng.integers(0, len(bucket), size=2)
                left, right = bucket[int(i)], bucket[int(j)]
            else:
                i, j = self.rng.integers(0, len(record_list), size=2)
                left, right = record_list[int(i)], record_list[int(j)]
            if left.record_id == right.record_id or left.entity_id == right.entity_id:
                continue
            key = tuple(sorted((left.record_id, right.record_id)))
            if key in seen_keys:
                continue
            seen_keys.add(key)
            negatives.append(EntityPair(left=left, right=right, label=0))
        return negatives
