"""Per-source formatting styles and value corruption.

Each synthetic data source is assigned a :class:`SourceStyle` that controls how
the canonical attribute values of an entity are rendered on that website.
The styles deliberately reproduce the paper's three data challenges:

* **C1 — missing values**: each (source, attribute) has a missingness rate;
* **C2 — new attributes**: a source only supports a subset of the schema, and
  some attributes exist only on target-domain sources;
* **C3 — distribution shift**: abbreviation of names, casing changes, extra
  boilerplate tokens, locale-specific vocabulary and noisy characters differ
  per source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from .names import NATIVE_SUFFIXES, abbreviate_name

__all__ = ["SourceStyle", "apply_style", "typo", "shuffle_tokens", "drop_tokens"]


def typo(value: str, rng: np.random.Generator, rate: float = 0.05) -> str:
    """Introduce character-level typos (swap/delete) with probability ``rate`` per word."""
    words = value.split()
    mutated: List[str] = []
    for word in words:
        if len(word) > 3 and rng.random() < rate:
            pos = int(rng.integers(1, len(word) - 1))
            if rng.random() < 0.5:
                word = word[:pos] + word[pos + 1:]
            else:
                word = word[:pos] + word[pos + 1] + word[pos] + word[pos + 2:]
        mutated.append(word)
    return " ".join(mutated)


def shuffle_tokens(value: str, rng: np.random.Generator, probability: float = 0.2) -> str:
    """Shuffle token order with the given probability (e.g. "Diamond, Neil")."""
    words = value.split()
    if len(words) > 1 and rng.random() < probability:
        order = rng.permutation(len(words))
        return " ".join(words[i] for i in order)
    return value


def drop_tokens(value: str, rng: np.random.Generator, rate: float = 0.1) -> str:
    """Randomly drop tokens (truncated listings), keeping at least one."""
    words = value.split()
    if len(words) <= 1:
        return value
    kept = [word for word in words if rng.random() >= rate]
    return " ".join(kept) if kept else words[0]


@dataclass
class SourceStyle:
    """The rendering style of one data source.

    Parameters
    ----------
    source:
        The source (website) name.
    supported_attributes:
        Attributes this source ever populates (C2); ``None`` means all.
    missing_rates:
        Per-attribute probability of rendering an empty value (C1); the
        ``default_missing_rate`` applies to attributes not listed.
    abbreviate_attributes:
        Attributes whose person-name values get abbreviated to initials (C3).
    abbreviate_probability:
        Probability of abbreviating when the attribute is in the set above.
    uppercase / titlecase:
        Casing conventions of the site.
    prefix_tokens / suffix_tokens:
        Boilerplate added around values (e.g. "Buy", "- official site").
    native_language_probability:
        Probability of appending a non-English phrase (Music corpora contain
        non-English characters per the paper).
    typo_rate, token_drop_rate, token_shuffle_probability:
        Noise levels.
    vocabulary_overrides:
        Per-attribute mapping applied to categorical values to shift the token
        distribution between domains (Fig. 12).
    """

    source: str
    supported_attributes: Optional[FrozenSet[str]] = None
    missing_rates: Dict[str, float] = field(default_factory=dict)
    default_missing_rate: float = 0.05
    abbreviate_attributes: FrozenSet[str] = frozenset()
    abbreviate_probability: float = 0.0
    uppercase: bool = False
    titlecase: bool = False
    prefix_tokens: Dict[str, str] = field(default_factory=dict)
    suffix_tokens: Dict[str, str] = field(default_factory=dict)
    native_language_probability: float = 0.0
    typo_rate: float = 0.0
    token_drop_rate: float = 0.0
    token_shuffle_probability: float = 0.0
    vocabulary_overrides: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def missing_rate(self, attribute: str) -> float:
        """Effective missingness rate for ``attribute`` on this source."""
        return self.missing_rates.get(attribute, self.default_missing_rate)

    def supports(self, attribute: str) -> bool:
        """Whether this source ever populates ``attribute``."""
        return self.supported_attributes is None or attribute in self.supported_attributes


def apply_style(style: SourceStyle, attribute: str, value: str,
                rng: np.random.Generator) -> str:
    """Render a canonical ``value`` of ``attribute`` in the style of a source.

    Returns the possibly-corrupted string; an empty string models a missing
    value (C1/C2).
    """
    if not value:
        return ""
    if not style.supports(attribute):
        return ""
    if rng.random() < style.missing_rate(attribute):
        return ""

    rendered = value
    overrides = style.vocabulary_overrides.get(attribute)
    if overrides:
        rendered = overrides.get(rendered.lower(), rendered)
    if attribute in style.abbreviate_attributes and rng.random() < style.abbreviate_probability:
        rendered = abbreviate_name(rendered)
    if style.token_shuffle_probability:
        rendered = shuffle_tokens(rendered, rng, style.token_shuffle_probability)
    if style.token_drop_rate:
        rendered = drop_tokens(rendered, rng, style.token_drop_rate)
    if style.typo_rate:
        rendered = typo(rendered, rng, style.typo_rate)
    prefix = style.prefix_tokens.get(attribute, "")
    suffix = style.suffix_tokens.get(attribute, "")
    if prefix:
        rendered = f"{prefix} {rendered}"
    if suffix:
        rendered = f"{rendered} {suffix}"
    if style.native_language_probability and rng.random() < style.native_language_probability:
        rendered = f"{rendered} {NATIVE_SUFFIXES[int(rng.integers(len(NATIVE_SUFFIXES)))]}"
    if style.uppercase:
        rendered = rendered.upper()
    elif style.titlecase:
        rendered = rendered.title()
    return rendered.strip()
