"""Word pools used to synthesise entity catalogues.

The original Music-1M/3K and Monitor corpora are proprietary / external; the
generators in this package synthesise catalogues with comparable structure.
The pools below are intentionally large enough that entities rarely collide by
accident, yet produce hard negatives (shared words across different entities).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "FIRST_NAMES",
    "LAST_NAMES",
    "TITLE_ADJECTIVES",
    "TITLE_NOUNS",
    "TITLE_VERBS",
    "GENRES",
    "COUNTRIES",
    "NATIVE_SUFFIXES",
    "MONITOR_BRANDS",
    "MONITOR_TYPES",
    "MONITOR_PANEL_TYPES",
    "MONITOR_FEATURES",
    "CONDITIONS",
    "random_person_name",
    "random_title",
    "abbreviate_name",
]

FIRST_NAMES: Sequence[str] = (
    "Neil", "Paul", "John", "George", "Ringo", "Aretha", "Nina", "Miles", "Ella", "Louis",
    "Joni", "Leonard", "Bob", "Patti", "Stevie", "Marvin", "Otis", "Janis", "Jimi", "Carole",
    "Dolly", "Willie", "Johnny", "Loretta", "Emmylou", "Bruce", "Tom", "Chrissie", "Debbie", "David",
    "Freddie", "Brian", "Roger", "Kate", "Peter", "Phil", "Annie", "Alison", "Bjork", "Thom",
    "Damon", "Jarvis", "Polly", "Nick", "Tim", "Jeff", "Elliott", "Fiona", "Regina", "Sufjan",
    "Alan", "Avicii", "Kygo", "Zedd", "Calvin", "Ellie", "Sia", "Lorde", "Adele", "Sam",
    "Hozier", "Florence", "Marcus", "Laura", "James", "Norah", "Diana", "Amy", "Duffy", "Corinne",
    "Angel", "Rosa", "Mateo", "Lucia", "Hiro", "Yuki", "Kenji", "Mei", "Anya", "Dmitri",
    "Ingrid", "Lars", "Astrid", "Sven", "Amara", "Kofi", "Zara", "Omar", "Leila", "Tariq",
)

LAST_NAMES: Sequence[str] = (
    "Diamond", "McCartney", "Lennon", "Harrison", "Starr", "Franklin", "Simone", "Davis", "Fitzgerald", "Armstrong",
    "Mitchell", "Cohen", "Dylan", "Smith", "Wonder", "Gaye", "Redding", "Joplin", "Hendrix", "King",
    "Parton", "Nelson", "Cash", "Lynn", "Harris", "Springsteen", "Petty", "Hynde", "Harry", "Bowie",
    "Mercury", "May", "Taylor", "Bush", "Gabriel", "Collins", "Lennox", "Krauss", "Gudmundsdottir", "Yorke",
    "Albarn", "Cocker", "Harvey", "Cave", "Buckley", "Drake", "Walker", "Bergling", "Gorves", "Apple",
    "Spektor", "Stevens", "Vega", "Morrison", "Jones", "Krall", "Winehouse", "Rae", "Olsen", "Batiste",
    "Okafor", "Tanaka", "Sato", "Nakamura", "Ivanov", "Petrova", "Larsson", "Nilsson", "Berg", "Haddad",
    "Nguyen", "Tran", "Garcia", "Martinez", "Silva", "Santos", "Rossi", "Bianchi", "Dubois", "Moreau",
)

TITLE_ADJECTIVES: Sequence[str] = (
    "Sweet", "Blue", "Golden", "Silent", "Electric", "Broken", "Midnight", "Crimson", "Silver", "Wild",
    "Lonely", "Burning", "Frozen", "Hidden", "Endless", "Fading", "Rising", "Falling", "Distant", "Gentle",
    "Hollow", "Sacred", "Velvet", "Neon", "Paper", "Glass", "Iron", "Wooden", "Scarlet", "Pale",
)

TITLE_NOUNS: Sequence[str] = (
    "Caroline", "River", "Mountain", "Ocean", "Road", "Heart", "Dream", "Fire", "Rain", "Star",
    "Moon", "Sun", "Shadow", "Light", "Dance", "Song", "Night", "Morning", "Summer", "Winter",
    "Garden", "City", "Home", "Train", "Bridge", "Window", "Mirror", "Letter", "Highway", "Storm",
    "Valley", "Harbor", "Island", "Forest", "Desert", "Canyon", "Meadow", "Horizon", "Echo", "Ember",
)

TITLE_VERBS: Sequence[str] = (
    "Wake", "Raise", "Hold", "Take", "Leave", "Carry", "Follow", "Remember", "Forget", "Believe",
    "Run", "Stay", "Fall", "Fly", "Breathe", "Shine", "Burn", "Drift", "Wander", "Return",
)

GENRES: Sequence[str] = (
    "rock", "pop", "folk", "jazz", "soul", "blues", "country", "electronic", "indie", "classical",
    "hip hop", "r&b", "reggae", "metal", "punk", "ambient", "house", "techno", "gospel", "latin",
)

COUNTRIES: Sequence[str] = (
    "USA", "UK", "Canada", "Australia", "Sweden", "Norway", "Japan", "Brazil", "France", "Germany",
    "Ireland", "Iceland", "Nigeria", "South Korea", "Mexico", "Spain", "Italy", "Netherlands",
)

NATIVE_SUFFIXES: Sequence[str] = (
    "оригинал", "официальный", "音楽", "歌手", "gagnant", "cantante", "sanger", "musiker",
    "गायक", "歌手名", "художник", "musicien",
)

MONITOR_BRANDS: Sequence[str] = (
    "Dell", "HP", "Samsung", "LG", "Acer", "Asus", "BenQ", "ViewSonic", "AOC", "Philips",
    "Lenovo", "MSI", "Gigabyte", "NEC", "Eizo", "Sceptre", "Iiyama", "Hannspree",
)

MONITOR_TYPES: Sequence[str] = (
    "led monitor", "lcd monitor", "gaming monitor", "ultrawide monitor", "curved monitor",
    "professional monitor", "touchscreen monitor", "portable monitor", "4k monitor", "business monitor",
)

MONITOR_PANEL_TYPES: Sequence[str] = ("IPS", "TN", "VA", "OLED", "PLS")

MONITOR_FEATURES: Sequence[str] = (
    "hdmi", "displayport", "vga", "dvi", "usb-c", "speakers", "pivot", "height adjustable",
    "anti glare", "flicker free", "low blue light", "vesa mount", "freesync", "g-sync",
)

CONDITIONS: Sequence[str] = ("new", "used", "refurbished", "open box", "like new", "for parts")


def random_person_name(rng: np.random.Generator) -> str:
    """Draw a two-token person name from the pools."""
    first = FIRST_NAMES[int(rng.integers(len(FIRST_NAMES)))]
    last = LAST_NAMES[int(rng.integers(len(LAST_NAMES)))]
    return f"{first} {last}"


def random_title(rng: np.random.Generator, min_words: int = 2, max_words: int = 4) -> str:
    """Draw a song/album style title, e.g. "Sweet Caroline" or "Wake Me Up"."""
    num_words = int(rng.integers(min_words, max_words + 1))
    words: List[str] = []
    for position in range(num_words):
        pool_choice = rng.random()
        if position == 0 and pool_choice < 0.3:
            words.append(TITLE_VERBS[int(rng.integers(len(TITLE_VERBS)))])
        elif pool_choice < 0.55:
            words.append(TITLE_ADJECTIVES[int(rng.integers(len(TITLE_ADJECTIVES)))])
        else:
            words.append(TITLE_NOUNS[int(rng.integers(len(TITLE_NOUNS)))])
    return " ".join(words)


def abbreviate_name(name: str) -> str:
    """Abbreviate a person name to initials, e.g. "Neil Diamond" -> "N. D.".

    This mirrors the paper's motivating example where some music websites
    record the artist with initials, reducing the informativeness of the
    "Artist" attribute in the target domain (challenge C3).
    """
    parts = [part for part in name.split() if part]
    if not parts:
        return name
    return " ".join(f"{part[0].upper()}." for part in parts)
