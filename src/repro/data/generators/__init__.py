"""Synthetic corpus generators substituting for the paper's proprietary data."""

from .base import CorpusGenerator, MultiSourceCorpus, SyntheticEntity
from .benchmark import BENCHMARK_PROFILES, BenchmarkGenerator, BenchmarkProfile, load_benchmark
from .corruptions import SourceStyle, apply_style
from .monitor import (
    MONITOR_SCHEMA,
    MONITOR_SEEN_SOURCES,
    MONITOR_SOURCES,
    MonitorCorpusGenerator,
    MonitorGeneratorConfig,
)
from .music import (
    MUSIC_SCHEMA,
    MUSIC_SEEN_SOURCES,
    MUSIC_SOURCES,
    MusicCorpusGenerator,
    MusicGeneratorConfig,
)

__all__ = [
    "CorpusGenerator",
    "MultiSourceCorpus",
    "SyntheticEntity",
    "SourceStyle",
    "apply_style",
    "MusicCorpusGenerator",
    "MusicGeneratorConfig",
    "MUSIC_SCHEMA",
    "MUSIC_SOURCES",
    "MUSIC_SEEN_SOURCES",
    "MonitorCorpusGenerator",
    "MonitorGeneratorConfig",
    "MONITOR_SCHEMA",
    "MONITOR_SOURCES",
    "MONITOR_SEEN_SOURCES",
    "BenchmarkGenerator",
    "BenchmarkProfile",
    "BENCHMARK_PROFILES",
    "load_benchmark",
]
