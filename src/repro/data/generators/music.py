"""Synthetic multi-source music corpora (Music-3K / Music-1M analogues).

The paper's Music corpora were crawled from 7 public music websites and are
not redistributable; this generator builds catalogues with the same structure:

* 7 data sources (``website_1`` … ``website_7``);
* 9 textual attributes including artist name, native-language name, album /
  track title and the rarely-populated ``gender`` attribute from the paper's
  motivating example;
* three entity types — ``artist``, ``album``, ``track``;
* seen sources (1-3) are well-formatted, while the unseen sources (4-7)
  abbreviate artist names, append locale-specific phrases, miss more values
  and populate ``gender`` (challenges C1-C3);
* an optional weak-labeling mode reproducing the Music-1M property that
  labels follow website hyperlinks and contain mixed-type errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ...utils.rng import SeedLike
from ..schema import Schema
from .base import CorpusGenerator, MultiSourceCorpus, SyntheticEntity
from .corruptions import SourceStyle
from .names import GENRES, random_person_name, random_title

__all__ = ["MusicCorpusGenerator", "MUSIC_SCHEMA", "MUSIC_SOURCES", "MUSIC_SEEN_SOURCES"]

MUSIC_SCHEMA = Schema((
    "name",
    "main_performer",
    "name_native_language",
    "title",
    "album",
    "genre",
    "release_year",
    "gender",
    "source",
))

MUSIC_SOURCES: Sequence[str] = tuple(f"website_{i}" for i in range(1, 8))
MUSIC_SEEN_SOURCES: Sequence[str] = ("website_1", "website_2", "website_3")

_GENDERS = ("male", "female", "non-binary")
_VERSIONS = ("original", "remix", "cover", "acoustic", "live")


@dataclass
class MusicGeneratorConfig:
    """Size and noise knobs for the music corpus generator."""

    num_entities: int = 120
    negatives_per_positive: float = 1.2
    hard_negative_fraction: float = 0.7
    near_duplicate_fraction: float = 0.35
    weakly_labeled: bool = False
    label_noise_rate: float = 0.15
    min_sources_per_entity: int = 2
    max_sources_per_entity: int = 5


class MusicCorpusGenerator(CorpusGenerator):
    """Generate a multi-source music corpus for one entity type.

    Parameters
    ----------
    entity_type:
        ``"artist"``, ``"album"`` or ``"track"``.
    config:
        Size/noise configuration; ``weakly_labeled=True`` produces the
        Music-1M analogue (larger default, noisy hyperlink-style labels).
    seed:
        Seed for full reproducibility.
    """

    def __init__(self, entity_type: str = "artist",
                 config: Optional[MusicGeneratorConfig] = None,
                 seed: SeedLike = 0) -> None:
        super().__init__(seed=seed)
        if entity_type not in {"artist", "album", "track"}:
            raise ValueError(f"entity_type must be artist/album/track, got {entity_type!r}")
        self.entity_type = entity_type
        self.config = config or MusicGeneratorConfig()

    # ------------------------------------------------------------------ #
    # Entity catalogue
    # ------------------------------------------------------------------ #
    def entity_catalogue(self, num_entities: int) -> List[SyntheticEntity]:
        entities: List[SyntheticEntity] = []
        for index in range(num_entities):
            if self.entity_type == "artist":
                entity = self._artist_entity(index)
            elif self.entity_type == "album":
                entity = self._album_entity(index)
            else:
                entity = self._track_entity(index)
            # Near-duplicate entities: real catalogues contain distinct entities
            # that share most surface text (same song covered by a different
            # artist, artists sharing a surname).  These are what make entity
            # linkage hard; without them token overlap alone solves the task.
            if entities and self.rng.random() < self.config.near_duplicate_fraction:
                entity = self._near_duplicate(entity, entities)
            entities.append(entity)
        return entities

    def _near_duplicate(self, entity: SyntheticEntity,
                        existing: List[SyntheticEntity]) -> SyntheticEntity:
        """Make ``entity`` a confusable variant of a previously generated one."""
        template = existing[int(self.rng.integers(len(existing)))]
        attributes = dict(entity.attributes)
        if self.entity_type == "artist":
            # Same surname, different first name (and the reverse).
            template_name = template.attributes["name"].split()
            own_name = attributes["name"].split()
            if len(template_name) >= 2 and len(own_name) >= 2:
                merged = f"{own_name[0]} {template_name[-1]}"
                attributes["name"] = merged
                attributes["main_performer"] = merged
                attributes["name_native_language"] = merged
        else:
            # Same title, different performer (cover / reissue), or same
            # performer with a slightly different title.
            if self.rng.random() < 0.5:
                attributes["title"] = template.attributes["title"]
                attributes["name"] = template.attributes["name"]
                if self.entity_type == "track":
                    attributes["album"] = template.attributes["album"]
            else:
                attributes["main_performer"] = template.attributes["main_performer"]
        return SyntheticEntity(entity_id=entity.entity_id, entity_type=entity.entity_type,
                               attributes=attributes)

    def _artist_entity(self, index: int) -> SyntheticEntity:
        name = random_person_name(self.rng)
        genre = GENRES[int(self.rng.integers(len(GENRES)))]
        gender = _GENDERS[int(self.rng.integers(len(_GENDERS)))]
        attributes = {
            "name": name,
            "main_performer": name,
            "name_native_language": name,
            "title": "",
            "album": "",
            "genre": genre,
            "release_year": "",
            "gender": gender,
        }
        return SyntheticEntity(entity_id=f"artist_{index}", entity_type="artist",
                               attributes=attributes)

    def _album_entity(self, index: int) -> SyntheticEntity:
        performer = random_person_name(self.rng)
        title = random_title(self.rng, min_words=2, max_words=4)
        year = str(int(self.rng.integers(1965, 2021)))
        genre = GENRES[int(self.rng.integers(len(GENRES)))]
        attributes = {
            "name": title,
            "main_performer": performer,
            "name_native_language": "",
            "title": title,
            "album": title,
            "genre": genre,
            "release_year": year,
            "gender": _GENDERS[int(self.rng.integers(len(_GENDERS)))],
        }
        return SyntheticEntity(entity_id=f"album_{index}", entity_type="album",
                               attributes=attributes)

    def _track_entity(self, index: int) -> SyntheticEntity:
        performer = random_person_name(self.rng)
        track_title = random_title(self.rng, min_words=2, max_words=4)
        album_title = random_title(self.rng, min_words=2, max_words=3)
        version = _VERSIONS[int(self.rng.integers(len(_VERSIONS)))]
        year = str(int(self.rng.integers(1965, 2021)))
        attributes = {
            "name": f"{track_title} ({version})",
            "main_performer": performer,
            "name_native_language": "",
            "title": f"{track_title} ({version})",
            "album": album_title,
            "genre": GENRES[int(self.rng.integers(len(GENRES)))],
            "release_year": year,
            "gender": _GENDERS[int(self.rng.integers(len(_GENDERS)))],
        }
        return SyntheticEntity(entity_id=f"track_{index}", entity_type="track",
                               attributes=attributes)

    # ------------------------------------------------------------------ #
    # Source styles (C1-C3)
    # ------------------------------------------------------------------ #
    def source_styles(self) -> Dict[str, SourceStyle]:
        styles: Dict[str, SourceStyle] = {}
        name_attrs = frozenset({"name", "main_performer", "name_native_language"})
        for index, source in enumerate(MUSIC_SOURCES, start=1):
            seen = source in MUSIC_SEEN_SOURCES
            if seen:
                styles[source] = SourceStyle(
                    source=source,
                    default_missing_rate=0.05,
                    missing_rates={"gender": 0.9, "name_native_language": 0.4,
                                   "release_year": 0.2},
                    abbreviate_attributes=frozenset(),
                    typo_rate=0.02,
                    titlecase=(index == 2),
                )
            else:
                styles[source] = SourceStyle(
                    source=source,
                    default_missing_rate=0.12,
                    missing_rates={"gender": 0.25, "name_native_language": 0.15,
                                   "release_year": 0.5, "genre": 0.4},
                    abbreviate_attributes=name_attrs,
                    abbreviate_probability=0.55,
                    native_language_probability=0.25 if index >= 6 else 0.1,
                    typo_rate=0.05,
                    token_drop_rate=0.08,
                    token_shuffle_probability=0.15,
                    uppercase=(index == 5),
                    suffix_tokens={"title": "- official" if index == 4 else ""},
                )
        return styles

    # ------------------------------------------------------------------ #
    # Corpus generation
    # ------------------------------------------------------------------ #
    def generate(self) -> MultiSourceCorpus:
        """Generate the full corpus: records, labeled pairs, metadata."""
        config = self.config
        entities = self.entity_catalogue(config.num_entities)
        styles = self.source_styles()
        records = self.render_records(entities, MUSIC_SCHEMA, styles,
                                      min_sources_per_entity=config.min_sources_per_entity,
                                      max_sources_per_entity=config.max_sources_per_entity)
        # The "source" attribute carries the website name (it appears among
        # the learned features in the paper's Table 4).
        records = [record.with_attributes({**record.attributes, "source": record.source})
                   for record in records]
        pairs = self.build_pairs(records,
                                 negatives_per_positive=config.negatives_per_positive,
                                 hard_negative_fraction=config.hard_negative_fraction)
        if config.weakly_labeled:
            pairs = self._inject_label_noise(pairs, config.label_noise_rate)
        corpus_name = f"music-{'1m' if config.weakly_labeled else '3k'}-{self.entity_type}"
        return MultiSourceCorpus(
            name=corpus_name,
            records=records,
            pairs=pairs,
            sources=list(MUSIC_SOURCES),
            schema=MUSIC_SCHEMA,
            entity_type=self.entity_type,
        )

    def _inject_label_noise(self, pairs: List, noise_rate: float) -> List:
        """Flip a fraction of labels, mimicking weak hyperlink-derived labels.

        Music-1M's labels follow website hyperlinks and therefore contain
        mixed-type errors (e.g. an artist matched to her album); here a random
        ``noise_rate`` fraction of pairs has its label flipped.
        """
        noisy = []
        for pair in pairs:
            if pair.label is not None and self.rng.random() < noise_rate:
                noisy.append(pair.with_label(1 - pair.label))
            else:
                noisy.append(pair)
        return noisy
