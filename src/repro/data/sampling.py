"""Batch sampling and pair-sampling utilities.

AdaMEL trains with mini-batches randomly drawn from the labeled source domain
(Algorithm 1, line 7).  The samplers here are deterministic given a seed and
support class-balanced sampling, which the synthetic generators and the
support-set experiments (Fig. 10) use to draw "50 positive / 50 negative"
style samples.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..utils.rng import SeedLike, spawn_rng
from .records import EntityPair

__all__ = ["BatchSampler", "sample_balanced", "sample_support_set", "negative_pairs_from_records"]


class BatchSampler:
    """Yield shuffled mini-batches of indices over a dataset of ``n`` items.

    With an integer seed, every pass over the sampler (an "epoch") re-shuffles
    with a generator derived deterministically from ``(seed, epoch)``: the
    epoch-``k`` order depends only on the seed and ``k``, never on how many
    random numbers earlier passes consumed.  Two samplers sharing a seed
    therefore stay in lockstep even when their iterations interleave.  The
    first epoch's permutation matches the historical behaviour (a fresh
    generator seeded with ``seed``), so single-pass users are unaffected.
    """

    def __init__(self, num_items: int, batch_size: int, shuffle: bool = True,
                 drop_last: bool = False, seed: SeedLike = 0) -> None:
        if num_items <= 0:
            raise ValueError(f"num_items must be positive, got {num_items}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.num_items = num_items
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._seed = int(seed) if isinstance(seed, (int, np.integer)) else None
        # Legacy path: an externally provided generator (or None) cannot be
        # re-derived per epoch, so it is consumed statefully as before.
        self._rng = spawn_rng(seed) if self._seed is None else None
        self._epoch = 0

    def _epoch_rng(self) -> np.random.Generator:
        if self._seed is None:
            return self._rng
        if self._epoch == 0:
            return spawn_rng(self._seed)
        entropy = np.random.SeedSequence([self._seed & 0xFFFFFFFFFFFFFFFF, self._epoch])
        return np.random.default_rng(entropy)

    def set_epoch(self, epoch: int) -> "BatchSampler":
        """Jump to a specific epoch (e.g. when resuming training).

        Only available with an integer seed: an externally provided generator
        is consumed statefully, so a past epoch's order cannot be re-derived.
        """
        if self._seed is None:
            raise RuntimeError(
                "set_epoch() requires an integer seed; this sampler was built "
                "with an external random generator, whose epoch order cannot "
                "be re-derived"
            )
        if epoch < 0:
            raise ValueError(f"epoch must be non-negative, got {epoch}")
        self._epoch = epoch
        return self

    def __iter__(self) -> Iterator[np.ndarray]:
        order = np.arange(self.num_items)
        if self.shuffle:
            self._epoch_rng().shuffle(order)
        self._epoch += 1
        for start in range(0, self.num_items, self.batch_size):
            batch = order[start:start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            yield batch

    def __len__(self) -> int:
        if self.drop_last:
            return self.num_items // self.batch_size
        return (self.num_items + self.batch_size - 1) // self.batch_size


def sample_balanced(pairs: Sequence[EntityPair], num_positive: int, num_negative: int,
                    seed: SeedLike = 0) -> List[EntityPair]:
    """Draw up to ``num_positive`` positives and ``num_negative`` negatives.

    Sampling is without replacement; when a class has fewer pairs than
    requested, all of them are returned.
    """
    rng = spawn_rng(seed)
    positives = [pair for pair in pairs if pair.label == 1]
    negatives = [pair for pair in pairs if pair.label == 0]
    chosen: List[EntityPair] = []
    if positives:
        take = min(num_positive, len(positives))
        indices = rng.choice(len(positives), size=take, replace=False)
        chosen.extend(positives[i] for i in indices)
    if negatives:
        take = min(num_negative, len(negatives))
        indices = rng.choice(len(negatives), size=take, replace=False)
        chosen.extend(negatives[i] for i in indices)
    rng.shuffle(chosen)
    return chosen


def sample_support_set(pairs: Sequence[EntityPair], size: int, balanced: bool = True,
                       seed: SeedLike = 0) -> List[EntityPair]:
    """Sample a labeled support set of ``size`` pairs from ``pairs``.

    The paper collects 100 samples (50 positive, 50 negative) from the target
    domain; ``balanced=True`` reproduces that protocol while ``balanced=False``
    samples uniformly.
    """
    labeled = [pair for pair in pairs if pair.is_labeled]
    if size <= 0 or not labeled:
        return []
    if balanced:
        half = max(size // 2, 1)
        sampled = sample_balanced(labeled, num_positive=half, num_negative=size - half, seed=seed)
        return sampled[:size]
    rng = spawn_rng(seed)
    take = min(size, len(labeled))
    indices = rng.choice(len(labeled), size=take, replace=False)
    return [labeled[i] for i in indices]


def negative_pairs_from_records(records: Sequence, num_pairs: int, seed: SeedLike = 0,
                                entity_key: str = "entity_id") -> List[EntityPair]:
    """Create non-matching pairs by sampling records of different entities.

    Used by the synthetic corpus generators to produce hard negatives in the
    same way production EL pipelines sample candidates after blocking.
    """
    rng = spawn_rng(seed)
    negatives: List[EntityPair] = []
    if len(records) < 2:
        return negatives
    attempts = 0
    max_attempts = num_pairs * 20
    while len(negatives) < num_pairs and attempts < max_attempts:
        attempts += 1
        i, j = rng.choice(len(records), size=2, replace=False)
        left, right = records[i], records[j]
        if getattr(left, entity_key) == getattr(right, entity_key):
            continue
        negatives.append(EntityPair(left=left, right=right, label=0))
    return negatives
