"""Source domain, target domain, support set, and MEL scenario containers.

Definitions follow Section 3.2 of the paper:

* the **source domain** ``D_S`` is a set of *labeled* pairs from a limited set
  of data sources;
* the **target domain** ``D_T`` is a set of *unlabeled* pairs where each pair
  has at least one record from a source unseen in ``D_S`` (disjoint scenario)
  or from the full set of sources (overlapping scenario);
* the **support set** ``S_U`` is a small set of labeled pairs sampled from the
  target domain's sources.

``MELScenario`` bundles the three together with a labeled test set for
evaluation, which is how every experiment in Section 5 is configured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .records import EntityPair, Record
from .schema import Schema, align_pairs, union_schema

__all__ = ["PairCollection", "SourceDomain", "TargetDomain", "SupportSet", "MELScenario"]


class PairCollection:
    """A list of entity pairs with convenience statistics."""

    def __init__(self, pairs: Sequence[EntityPair], name: str = "pairs") -> None:
        self.pairs: List[EntityPair] = list(pairs)
        self.name = name

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def __getitem__(self, index: int) -> EntityPair:
        return self.pairs[index]

    @property
    def labels(self) -> np.ndarray:
        """Labels as an int array; unlabeled pairs are encoded as -1."""
        return np.array([pair.label if pair.label is not None else -1 for pair in self.pairs],
                        dtype=np.int64)

    @property
    def labeled_pairs(self) -> List[EntityPair]:
        return [pair for pair in self.pairs if pair.is_labeled]

    @property
    def positive_pairs(self) -> List[EntityPair]:
        return [pair for pair in self.pairs if pair.label == 1]

    @property
    def negative_pairs(self) -> List[EntityPair]:
        return [pair for pair in self.pairs if pair.label == 0]

    def sources(self) -> Set[str]:
        """All data sources touched by these pairs (``D*`` in the paper)."""
        found: Set[str] = set()
        for pair in self.pairs:
            found.update(pair.source_set())
        return found

    def schema(self) -> Schema:
        """Attribute schema inferred from the pairs."""
        return Schema.from_pairs(self.pairs)

    def positive_rate(self) -> float:
        """Fraction of labeled pairs that are positive."""
        labeled = self.labeled_pairs
        if not labeled:
            return 0.0
        return sum(pair.label for pair in labeled) / len(labeled)

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "PairCollection":
        """Return a new collection with the pairs at ``indices``."""
        return PairCollection([self.pairs[i] for i in indices], name=name or self.name)

    def filter_sources(self, sources: Iterable[str], mode: str = "any") -> "PairCollection":
        """Keep pairs whose records come from ``sources``.

        ``mode='any'`` keeps a pair when at least one record's source is in
        ``sources``; ``mode='all'`` requires both.
        """
        allowed = set(sources)
        if mode not in {"any", "all"}:
            raise ValueError(f"mode must be 'any' or 'all', got {mode!r}")
        if mode == "any":
            kept = [pair for pair in self.pairs if pair.source_set() & allowed]
        else:
            kept = [pair for pair in self.pairs if pair.source_set() <= allowed]
        return PairCollection(kept, name=self.name)

    def align(self, schema: Schema) -> "PairCollection":
        """Return a copy with every pair aligned onto ``schema``."""
        return PairCollection(align_pairs(self.pairs, schema), name=self.name)

    def summary(self) -> Dict[str, object]:
        """Human-readable statistics for logging and DESIGN/EXPERIMENTS docs."""
        return {
            "name": self.name,
            "num_pairs": len(self),
            "num_labeled": len(self.labeled_pairs),
            "positive_rate": round(self.positive_rate(), 4),
            "num_sources": len(self.sources()),
            "num_attributes": len(self.schema()) if len(self) else 0,
        }


class SourceDomain(PairCollection):
    """Labeled pairs from the seen data sources (``D_S``)."""

    def __init__(self, pairs: Sequence[EntityPair], name: str = "source_domain") -> None:
        unlabeled = [pair for pair in pairs if not pair.is_labeled]
        if unlabeled:
            raise ValueError(
                f"source domain must be fully labeled; {len(unlabeled)} unlabeled pairs given"
            )
        super().__init__(pairs, name=name)


class TargetDomain(PairCollection):
    """Unlabeled pairs from the target data sources (``D_T``).

    Labels, when present on the input pairs, are stripped so that the training
    code can never accidentally peek at them; evaluation uses the separate
    labeled test split of :class:`MELScenario`.
    """

    def __init__(self, pairs: Sequence[EntityPair], name: str = "target_domain") -> None:
        super().__init__([pair.unlabeled() for pair in pairs], name=name)


class SupportSet(PairCollection):
    """A small labeled sample from the target domain's sources (``S_U``)."""

    def __init__(self, pairs: Sequence[EntityPair], name: str = "support_set") -> None:
        unlabeled = [pair for pair in pairs if not pair.is_labeled]
        if unlabeled:
            raise ValueError(
                f"support set must be fully labeled; {len(unlabeled)} unlabeled pairs given"
            )
        super().__init__(pairs, name=name)


@dataclass
class MELScenario:
    """A complete multi-source entity linkage scenario.

    Attributes
    ----------
    source:
        Labeled training pairs from the seen sources.
    target:
        Unlabeled pairs from the target domain used for adaptation.
    support:
        Optional small labeled support set from the target sources.
    test:
        Labeled pairs used only for evaluation (never for training).
    name:
        Scenario identifier, e.g. ``"music3k-artist-overlapping"``.
    entity_type:
        The entity type being linked, when applicable.
    """

    source: SourceDomain
    target: TargetDomain
    test: PairCollection
    support: Optional[SupportSet] = None
    name: str = "scenario"
    entity_type: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.source) == 0:
            raise ValueError("MELScenario requires a non-empty source domain")
        if len(self.test) == 0:
            raise ValueError("MELScenario requires a non-empty test set")

    @property
    def seen_sources(self) -> FrozenSet[str]:
        """The seen data sources ``D*_S``."""
        return frozenset(self.source.sources())

    @property
    def target_sources(self) -> FrozenSet[str]:
        """The target data sources ``D*_T``."""
        return frozenset(self.target.sources())

    @property
    def unseen_sources(self) -> FrozenSet[str]:
        """Target sources never observed in the source domain."""
        return self.target_sources - self.seen_sources

    def aligned_schema(self) -> Schema:
        """Union schema over source, target, support and test pairs."""
        schemas = [self.source.schema(), self.target.schema(), self.test.schema()]
        if self.support is not None and len(self.support):
            schemas.append(self.support.schema())
        return union_schema(*schemas)

    def align(self) -> "MELScenario":
        """Return a copy of the scenario with every split on the union schema.

        The aligned scenario is memoized: every model fit on the same scenario
        object calls ``align()`` first, and re-aligning thousands of pairs per
        model dominated multi-method experiments like Figure 6.  Splits are
        treated as immutable after construction (nothing in the library
        mutates a ``PairCollection``), so the cached copy stays valid.
        """
        cached = getattr(self, "_aligned", None)
        if cached is not None:
            return cached
        schema = self.aligned_schema()
        aligned = MELScenario(
            source=SourceDomain(self.source.align(schema).pairs, name=self.source.name),
            target=TargetDomain(self.target.align(schema).pairs, name=self.target.name),
            test=self.test.align(schema),
            support=SupportSet(self.support.align(schema).pairs, name=self.support.name)
            if self.support is not None and len(self.support) else self.support,
            name=self.name,
            entity_type=self.entity_type,
        )
        # Aligning an already-aligned scenario is the identity.
        object.__setattr__(aligned, "_aligned", aligned)
        object.__setattr__(self, "_aligned", aligned)
        return aligned

    def summary(self) -> Dict[str, object]:
        """Scenario statistics in the spirit of the paper's Tables 2-3."""
        return {
            "name": self.name,
            "entity_type": self.entity_type,
            "train": len(self.source),
            "support": len(self.support) if self.support is not None else 0,
            "target_unlabeled": len(self.target),
            "test": len(self.test),
            "seen_sources": sorted(self.seen_sources),
            "unseen_sources": sorted(self.unseen_sources),
            "num_attributes": len(self.aligned_schema()),
        }
