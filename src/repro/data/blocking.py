"""Blocking (candidate generation) for entity linkage.

Real EL pipelines never compare all record pairs; a blocking stage selects
candidate pairs cheaply (the paper cites Cohen & Richman's hashing/merging
techniques).  The blockers here are the small-corpus front end: they delegate
pair enumeration to the incremental indexes of :mod:`repro.pipeline.index`
(the scalable path used by the end-to-end engine) and keep the simple
record-in / pairs-out interface of the examples and quickstart.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from itertools import combinations
from typing import (Dict, FrozenSet, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)

from ..text.tokenizer import tokenize
from .records import EntityPair, Record

__all__ = ["TokenBlocker", "AttributeEqualityBlocker", "CandidateGenerator",
           "CandidateSet", "BlockingStats", "ground_truth_pairs",
           "possible_cross_source_pairs"]


def ground_truth_pairs(records: Sequence[Record],
                       cross_source_only: bool = True) -> Set[Tuple[str, str]]:
    """True matching record-id pairs derived from ``entity_id`` ground truth."""
    by_entity: Dict[str, List[Record]] = defaultdict(list)
    for record in records:
        if record.entity_id is not None:
            by_entity[record.entity_id].append(record)
    truth: Set[Tuple[str, str]] = set()
    for group in by_entity.values():
        for left, right in combinations(group, 2):
            if cross_source_only and left.source == right.source:
                continue
            key = (left.record_id, right.record_id)
            truth.add(key if key[0] <= key[1] else (key[1], key[0]))
    return truth


def possible_cross_source_pairs(records: Sequence[Record],
                                cross_source_only: bool = True) -> int:
    """How many record pairs full enumeration would compare."""
    total = len(records) * (len(records) - 1) // 2
    if not cross_source_only:
        return total
    per_source = Counter(record.source for record in records)
    within = sum(count * (count - 1) // 2 for count in per_source.values())
    return total - within


def _dedupe_by_id(pairs: Iterable[Tuple[Record, Record]]) -> List[Tuple[Record, Record]]:
    """Drop pairs already seen under the sorted ``(record_id, record_id)`` key."""
    seen: Set[Tuple[str, str]] = set()
    unique: List[Tuple[Record, Record]] = []
    for left, right in pairs:
        key = (left.record_id, right.record_id)
        if key[0] > key[1]:
            key = (key[1], key[0])
        if key in seen:
            continue
        seen.add(key)
        unique.append((left, right))
    return unique


class TokenBlocker:
    """Group records that share at least one token under a blocking attribute."""

    def __init__(self, attribute: str, min_token_length: int = 3) -> None:
        self.attribute = attribute
        self.min_token_length = min_token_length

    def blocks(self, records: Sequence[Record]) -> Dict[str, List[Record]]:
        """Return mapping of blocking key (token) to records containing it."""
        grouped: Dict[str, List[Record]] = defaultdict(list)
        for record in records:
            for token in set(tokenize(record.value(self.attribute))):
                if len(token) >= self.min_token_length:
                    grouped[token].append(record)
        return dict(grouped)

    def candidate_pairs(self, records: Sequence[Record],
                        max_block_size: int = 50) -> List[Tuple[Record, Record]]:
        """Enumerate unordered record pairs that co-occur in some block.

        Blocks larger than ``max_block_size`` are skipped (standard practice:
        huge blocks are dominated by stop-word-like tokens).  Enumeration is
        delegated to the inverted token index of the pipeline subsystem.
        """
        from ..pipeline.index import InvertedTokenIndex

        if max_block_size < 2:
            return []  # every block of two or more records is skipped
        index = InvertedTokenIndex(attributes=[self.attribute],
                                   min_token_length=self.min_token_length,
                                   max_postings=max_block_size)
        index.add_records(records)
        positions = sorted(index.candidate_pairs())
        return _dedupe_by_id((records[left], records[right])
                             for left, right in positions)


class AttributeEqualityBlocker:
    """Group records whose normalised value of an attribute is identical."""

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute

    def blocks(self, records: Sequence[Record]) -> Dict[str, List[Record]]:
        grouped: Dict[str, List[Record]] = defaultdict(list)
        for record in records:
            key = " ".join(tokenize(record.value(self.attribute)))
            if key:
                grouped[key].append(record)
        return dict(grouped)

    def candidate_pairs(self, records: Sequence[Record],
                        max_block_size: int = 50) -> List[Tuple[Record, Record]]:
        """Enumerate unordered record pairs with equal normalised values.

        Blocks larger than ``max_block_size`` are skipped, matching
        :meth:`TokenBlocker.candidate_pairs`: one giant equality block (e.g.
        an attribute that is missing everywhere, normalising to the same key)
        must not silently produce O(n²) pairs.  Pairs are deduplicated on the
        sorted record-id key.
        """
        pairs: List[Tuple[Record, Record]] = []
        for block in self.blocks(records).values():
            if len(block) > max_block_size:
                continue
            pairs.extend(combinations(block, 2))
        return _dedupe_by_id(pairs)


@dataclass(frozen=True)
class BlockingStats:
    """Blocking quality: recall of true matches and pair-space reduction.

    ``reduction_ratio`` is the fraction of the full cross-source pair space
    kept by blocking (candidates / possible pairs; lower is better), and
    ``pair_reduction_factor`` its reciprocal — the "N× fewer comparisons"
    headline number.
    """

    recall: float
    reduction_ratio: float
    num_candidates: int
    num_true_pairs: int
    possible_pairs: int

    @property
    def pair_reduction_factor(self) -> float:
        # Candidate count floored at 1 so the stat stays finite on empty output.
        return self.possible_pairs / max(self.num_candidates, 1)


class CandidateSet(Sequence):
    """Deduplicated candidate pairs bundled with their precomputed keys.

    :meth:`CandidateGenerator.generate` already dedupes on the sorted
    ``(record_id, record_id)`` key, so the key set exists the moment the
    pairs do; carrying both lets :meth:`CandidateGenerator.stats` and
    :meth:`~CandidateGenerator.recall` reuse it instead of re-deriving every
    pair key on each reporting call.  Behaves as a read-only sequence of
    :class:`EntityPair`, so existing callers that iterate or ``len()`` the
    result of ``generate`` keep working unchanged.
    """

    __slots__ = ("pairs", "keys")

    def __init__(self, pairs: Sequence[EntityPair],
                 keys: Iterable[Tuple[str, str]]) -> None:
        self.pairs: Tuple[EntityPair, ...] = tuple(pairs)
        self.keys: FrozenSet[Tuple[str, str]] = frozenset(keys)

    def __len__(self) -> int:
        return len(self.pairs)

    def __getitem__(self, index):
        return self.pairs[index]

    def __iter__(self) -> Iterator[EntityPair]:
        return iter(self.pairs)

    def __repr__(self) -> str:
        return f"CandidateSet({len(self.pairs)} pairs)"

    @classmethod
    def from_pairs(cls, pairs: Iterable[EntityPair]) -> "CandidateSet":
        """Build from bare pairs, deriving the keys once (legacy inputs)."""
        pairs = tuple(pairs)
        keys: Set[Tuple[str, str]] = set()
        for pair in pairs:
            key = (pair.left.record_id, pair.right.record_id)
            if key[0] > key[1]:
                key = (key[1], key[0])
            keys.add(key)
        return cls(pairs, keys)


class CandidateGenerator:
    """Combine blockers and produce :class:`EntityPair` candidates.

    When ``cross_source_only`` is set, pairs whose two records come from the
    same data source are dropped, matching the MEL setting where linkage is
    across sources.
    """

    def __init__(self, blockers: Iterable[object], cross_source_only: bool = True) -> None:
        self.blockers = list(blockers)
        if not self.blockers:
            raise ValueError("CandidateGenerator requires at least one blocker")
        self.cross_source_only = cross_source_only

    def generate(self, records: Sequence[Record]) -> CandidateSet:
        """Return deduplicated candidate pairs from all blockers.

        The result is a :class:`CandidateSet` (a sequence of
        :class:`EntityPair` plus the dedup key set), so passing it back to
        :meth:`stats` or :meth:`recall` reuses the keys computed here —
        blocking and key derivation run exactly once per corpus.
        """
        seen: Set[Tuple[str, str]] = set()
        candidates: List[EntityPair] = []
        for blocker in self.blockers:
            for left, right in blocker.candidate_pairs(records):
                if self.cross_source_only and left.source == right.source:
                    continue
                key = (left.record_id, right.record_id)
                if key[0] > key[1]:
                    key = (key[1], key[0])
                if key in seen:
                    continue
                seen.add(key)
                candidates.append(EntityPair(left=left, right=right, label=None))
        return CandidateSet(candidates, seen)

    def stats(self, records: Sequence[Record],
              candidates: Optional[Sequence[EntityPair]] = None) -> BlockingStats:
        """Blocking recall and pair-space reduction against ``entity_id`` truth.

        ``candidates`` accepts the output of a previous :meth:`generate` call
        so quality reporting never re-runs blocking; when omitted, blocking is
        run once here.  A :class:`CandidateSet` contributes its precomputed
        key set directly; a bare pair sequence has its keys derived once.
        Records without an entity id are ignored by the recall computation
        (but still count toward the possible-pair space).
        """
        if candidates is None:
            candidates = self.generate(records)
        if not isinstance(candidates, CandidateSet):
            candidates = CandidateSet.from_pairs(candidates)
        truth = ground_truth_pairs(records, self.cross_source_only)
        retrieved = candidates.keys
        possible = possible_cross_source_pairs(records, self.cross_source_only)
        recall = len(truth & retrieved) / len(truth) if truth else 1.0
        return BlockingStats(
            recall=recall,
            reduction_ratio=len(retrieved) / possible if possible else 0.0,
            num_candidates=len(retrieved),
            num_true_pairs=len(truth),
            possible_pairs=possible,
        )

    def recall(self, records: Sequence[Record],
               candidates: Optional[Sequence[EntityPair]] = None) -> float:
        """Fraction of true matching pairs retained by blocking.

        Pass ``candidates`` (a previous :meth:`generate` result) to avoid
        recomputing blocking from scratch; see :meth:`stats` for the full
        quality bundle including the reduction ratio.
        """
        return self.stats(records, candidates=candidates).recall
