"""Blocking (candidate generation) for entity linkage.

Real EL pipelines never compare all record pairs; a blocking stage selects
candidate pairs cheaply (the paper cites Cohen & Richman's hashing/merging
techniques).  The synthetic corpora here are small enough to enumerate, but
the example applications and the quickstart use blocking to show the full
pipeline a downstream user would run: block → pair → match.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations
from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

from ..text.tokenizer import tokenize
from .records import EntityPair, Record

__all__ = ["TokenBlocker", "AttributeEqualityBlocker", "CandidateGenerator"]


class TokenBlocker:
    """Group records that share at least one token under a blocking attribute."""

    def __init__(self, attribute: str, min_token_length: int = 3) -> None:
        self.attribute = attribute
        self.min_token_length = min_token_length

    def blocks(self, records: Sequence[Record]) -> Dict[str, List[Record]]:
        """Return mapping of blocking key (token) to records containing it."""
        grouped: Dict[str, List[Record]] = defaultdict(list)
        for record in records:
            for token in set(tokenize(record.value(self.attribute))):
                if len(token) >= self.min_token_length:
                    grouped[token].append(record)
        return dict(grouped)

    def candidate_pairs(self, records: Sequence[Record],
                        max_block_size: int = 50) -> List[Tuple[Record, Record]]:
        """Enumerate unordered record pairs that co-occur in some block.

        Blocks larger than ``max_block_size`` are skipped (standard practice:
        huge blocks are dominated by stop-word-like tokens).
        """
        seen: Set[Tuple[str, str]] = set()
        pairs: List[Tuple[Record, Record]] = []
        for block in self.blocks(records).values():
            if len(block) > max_block_size:
                continue
            for left, right in combinations(block, 2):
                key = tuple(sorted((left.record_id, right.record_id)))
                if key in seen:
                    continue
                seen.add(key)
                pairs.append((left, right))
        return pairs


class AttributeEqualityBlocker:
    """Group records whose normalised value of an attribute is identical."""

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute

    def blocks(self, records: Sequence[Record]) -> Dict[str, List[Record]]:
        grouped: Dict[str, List[Record]] = defaultdict(list)
        for record in records:
            key = " ".join(tokenize(record.value(self.attribute)))
            if key:
                grouped[key].append(record)
        return dict(grouped)

    def candidate_pairs(self, records: Sequence[Record]) -> List[Tuple[Record, Record]]:
        pairs: List[Tuple[Record, Record]] = []
        for block in self.blocks(records).values():
            pairs.extend(combinations(block, 2))
        return list(pairs)


class CandidateGenerator:
    """Combine blockers and produce :class:`EntityPair` candidates.

    When ``cross_source_only`` is set, pairs whose two records come from the
    same data source are dropped, matching the MEL setting where linkage is
    across sources.
    """

    def __init__(self, blockers: Iterable[object], cross_source_only: bool = True) -> None:
        self.blockers = list(blockers)
        if not self.blockers:
            raise ValueError("CandidateGenerator requires at least one blocker")
        self.cross_source_only = cross_source_only

    def generate(self, records: Sequence[Record]) -> List[EntityPair]:
        """Return deduplicated candidate pairs from all blockers."""
        seen: Set[Tuple[str, str]] = set()
        candidates: List[EntityPair] = []
        for blocker in self.blockers:
            for left, right in blocker.candidate_pairs(records):
                if self.cross_source_only and left.source == right.source:
                    continue
                key = tuple(sorted((left.record_id, right.record_id)))
                if key in seen:
                    continue
                seen.add(key)
                candidates.append(EntityPair(left=left, right=right, label=None))
        return candidates

    def recall(self, records: Sequence[Record]) -> float:
        """Fraction of true matching pairs retained by blocking.

        Ground truth is derived from ``entity_id``; records without an entity
        id are ignored.  Useful for tuning blockers in the examples.
        """
        truth: Set[Tuple[str, str]] = set()
        by_entity: Dict[str, List[Record]] = defaultdict(list)
        for record in records:
            if record.entity_id is not None:
                by_entity[record.entity_id].append(record)
        for group in by_entity.values():
            for left, right in combinations(group, 2):
                if self.cross_source_only and left.source == right.source:
                    continue
                truth.add(tuple(sorted((left.record_id, right.record_id))))
        if not truth:
            return 1.0
        retrieved = {tuple(sorted((pair.left.record_id, pair.right.record_id)))
                     for pair in self.generate(records)}
        return len(truth & retrieved) / len(truth)
