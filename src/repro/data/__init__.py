"""Data substrate: records, schemas, domains, sampling, blocking, storage."""

from . import generators
from .blocking import (
    AttributeEqualityBlocker,
    BlockingStats,
    CandidateGenerator,
    CandidateSet,
    TokenBlocker,
    ground_truth_pairs,
    possible_cross_source_pairs,
)
from .domain import MELScenario, PairCollection, SourceDomain, SupportSet, TargetDomain
from .records import MISSING_VALUE, EntityPair, Record
from .sampling import BatchSampler, negative_pairs_from_records, sample_balanced, sample_support_set
from .schema import Schema, align_ontology, align_pairs, align_records, union_schema
from .splits import split_by_sources, stratified_split, train_test_split
from .storage import (
    iter_pairs_jsonl,
    iter_records_csv,
    read_pair_labels_csv,
    read_pairs_jsonl,
    read_records_csv,
    write_pair_labels_csv,
    write_pairs_jsonl,
    write_records_csv,
)

__all__ = [
    "generators",
    "Record",
    "EntityPair",
    "MISSING_VALUE",
    "Schema",
    "align_ontology",
    "align_records",
    "align_pairs",
    "union_schema",
    "PairCollection",
    "SourceDomain",
    "TargetDomain",
    "SupportSet",
    "MELScenario",
    "BatchSampler",
    "sample_balanced",
    "sample_support_set",
    "negative_pairs_from_records",
    "TokenBlocker",
    "AttributeEqualityBlocker",
    "BlockingStats",
    "CandidateGenerator",
    "CandidateSet",
    "ground_truth_pairs",
    "possible_cross_source_pairs",
    "train_test_split",
    "stratified_split",
    "split_by_sources",
    "write_records_csv",
    "read_records_csv",
    "iter_records_csv",
    "write_pairs_jsonl",
    "read_pairs_jsonl",
    "iter_pairs_jsonl",
    "write_pair_labels_csv",
    "read_pair_labels_csv",
]
