"""Persistence of records and pairs to CSV / JSONL files.

The public DI2KG Monitor data ships as CSV label files; this module lets users
round-trip the synthetic corpora in the same tabular shape and load their own
data into the library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from .records import EntityPair, Record

__all__ = [
    "write_records_csv",
    "read_records_csv",
    "iter_records_csv",
    "write_pairs_jsonl",
    "read_pairs_jsonl",
    "iter_pairs_jsonl",
    "write_pair_labels_csv",
    "read_pair_labels_csv",
]

PathLike = Union[str, Path]
_RESERVED_COLUMNS = ("record_id", "source", "entity_id", "entity_type")
# Attribute columns are prefixed so they can never collide with the reserved
# metadata columns (the corpora legitimately have an attribute named "source").
_ATTRIBUTE_PREFIX = "attr:"


def write_records_csv(records: Sequence[Record], path: PathLike) -> Path:
    """Write records to a CSV with one ``attr:``-prefixed column per attribute."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    attributes: List[str] = []
    for record in records:
        for attribute in record.attribute_names():
            if attribute not in attributes:
                attributes.append(attribute)
    fieldnames = list(_RESERVED_COLUMNS) + [f"{_ATTRIBUTE_PREFIX}{name}" for name in attributes]
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for record in records:
            row: Dict[str, str] = {
                "record_id": record.record_id,
                "source": record.source,
                "entity_id": record.entity_id or "",
                "entity_type": record.entity_type or "",
            }
            for attribute in attributes:
                row[f"{_ATTRIBUTE_PREFIX}{attribute}"] = record.value(attribute)
            writer.writerow(row)
    return path


def iter_records_csv(path: PathLike) -> Iterator[Record]:
    """Stream records from a CSV written by :func:`write_records_csv`.

    One record is materialised at a time, so corpora larger than memory can
    be ingested by streaming consumers (e.g. the linkage pipeline's chunked
    ``ingest`` stage).
    """
    with Path(path).open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            attributes = {key[len(_ATTRIBUTE_PREFIX):]: value for key, value in row.items()
                          if key.startswith(_ATTRIBUTE_PREFIX)}
            yield Record(
                record_id=row["record_id"],
                source=row["source"],
                attributes=attributes,
                entity_id=row.get("entity_id") or None,
                entity_type=row.get("entity_type") or None,
            )


def read_records_csv(path: PathLike) -> List[Record]:
    """Read records previously written by :func:`write_records_csv` eagerly."""
    return list(iter_records_csv(path))


def write_pairs_jsonl(pairs: Sequence[EntityPair], path: PathLike) -> Path:
    """Write entity pairs to JSON Lines (one pair per line, full records)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for pair in pairs:
            handle.write(json.dumps(pair.to_dict(), sort_keys=True) + "\n")
    return path


def iter_pairs_jsonl(path: PathLike) -> Iterator[EntityPair]:
    """Stream entity pairs from a JSONL file, one pair in memory at a time."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield EntityPair.from_dict(json.loads(line))


def read_pairs_jsonl(path: PathLike) -> List[EntityPair]:
    """Read entity pairs previously written by :func:`write_pairs_jsonl` eagerly."""
    return list(iter_pairs_jsonl(path))


def write_pair_labels_csv(pairs: Sequence[EntityPair], path: PathLike) -> Path:
    """Write a DI2KG-style label file: left id, right id, label."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["left_record_id", "right_record_id", "label"])
        for pair in pairs:
            writer.writerow([pair.left.record_id, pair.right.record_id,
                             "" if pair.label is None else pair.label])
    return path


def read_pair_labels_csv(path: PathLike, records: Sequence[Record]) -> List[EntityPair]:
    """Join a label file against a record list to reconstruct entity pairs."""
    index: Dict[str, Record] = {record.record_id: record for record in records}
    pairs: List[EntityPair] = []
    with Path(path).open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            left = index.get(row["left_record_id"])
            right = index.get(row["right_record_id"])
            if left is None or right is None:
                raise KeyError(
                    f"label file references unknown record ids "
                    f"{row['left_record_id']!r} / {row['right_record_id']!r}"
                )
            raw_label: Optional[str] = row.get("label", "")
            label = int(raw_label) if raw_label not in ("", None) else None
            pairs.append(EntityPair(left=left, right=right, label=label))
    return pairs
