"""Attribute schemas and ontology alignment.

Different data sources expose different attributes (challenge C2).  AdaMEL's
prerequisite for domain adaptation is that the source and target domain share
one feature space, which the paper obtains by *aligning the ontology*: taking
the union of the attribute sets and filling absent attributes with blank
"dummy" values.  :func:`align_ontology` implements exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .records import MISSING_VALUE, EntityPair, Record

__all__ = ["Schema", "align_ontology", "align_records", "align_pairs", "union_schema"]


@dataclass(frozen=True)
class Schema:
    """An ordered set of textual attribute names (the set ``A`` in the paper)."""

    attributes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError("schema attributes must be unique")

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self):
        return iter(self.attributes)

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.attributes

    def index(self, attribute: str) -> int:
        """Position of ``attribute`` within the schema."""
        return self.attributes.index(attribute)

    def union(self, other: "Schema") -> "Schema":
        """Union of two schemas, preserving this schema's order first."""
        merged: List[str] = list(self.attributes)
        merged.extend(attr for attr in other.attributes if attr not in self.attributes)
        return Schema(tuple(merged))

    @classmethod
    def from_records(cls, records: Iterable[Record]) -> "Schema":
        """Infer a schema as the ordered union of attributes seen on records."""
        seen: List[str] = []
        for record in records:
            for attribute in record.attribute_names():
                if attribute not in seen:
                    seen.append(attribute)
        return cls(tuple(seen))

    @classmethod
    def from_pairs(cls, pairs: Iterable[EntityPair]) -> "Schema":
        """Infer a schema from the records of entity pairs."""
        records: List[Record] = []
        for pair in pairs:
            records.append(pair.left)
            records.append(pair.right)
        return cls.from_records(records)


def union_schema(*schemas: Schema) -> Schema:
    """Union of an arbitrary number of schemas."""
    if not schemas:
        raise ValueError("union_schema requires at least one schema")
    merged = schemas[0]
    for schema in schemas[1:]:
        merged = merged.union(schema)
    return merged


def align_records(records: Sequence[Record], schema: Schema) -> List[Record]:
    """Project records onto ``schema``; absent attributes become empty strings."""
    aligned: List[Record] = []
    for record in records:
        values: Dict[str, str] = {attr: record.value(attr) for attr in schema}
        aligned.append(record.with_attributes(values))
    return aligned


def align_pairs(pairs: Sequence[EntityPair], schema: Schema) -> List[EntityPair]:
    """Align both records of every pair onto ``schema`` (dummy attributes added)."""
    aligned: List[EntityPair] = []
    for pair in pairs:
        left_values = {attr: pair.left.value(attr) for attr in schema}
        right_values = {attr: pair.right.value(attr) for attr in schema}
        aligned.append(EntityPair(
            left=pair.left.with_attributes(left_values),
            right=pair.right.with_attributes(right_values),
            label=pair.label,
            pair_id=pair.pair_id,
            weight=pair.weight,
        ))
    return aligned


def align_ontology(source_pairs: Sequence[EntityPair],
                   target_pairs: Sequence[EntityPair]) -> Tuple[Schema, List[EntityPair], List[EntityPair]]:
    """Align source- and target-domain pairs onto the union schema A ∪ A'.

    Returns ``(schema, aligned_source_pairs, aligned_target_pairs)``.  After
    alignment every record exposes the same attributes, with empty strings for
    values a source never provides — this is the dummy-attribute construction
    described in Problem 2 and Section 4.1 of the paper.
    """
    source_schema = Schema.from_pairs(source_pairs) if source_pairs else Schema(())
    target_schema = Schema.from_pairs(target_pairs) if target_pairs else Schema(())
    schema = source_schema.union(target_schema)
    return schema, align_pairs(source_pairs, schema), align_pairs(target_pairs, schema)
