"""Deterministic feature hashing of tokens and character n-grams.

The paper embeds word tokens with pretrained 300-dimensional FastText vectors.
FastText's defining property — that out-of-vocabulary words still receive
meaningful vectors because they are composed of character n-gram vectors — is
what the AdaMEL experiments depend on (abbreviations such as "N. D." must stay
close to "Neil Diamond").  Offline we reproduce that property with the hashing
trick: every character n-gram is hashed into a fixed-size table of random but
deterministic Gaussian vectors.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["stable_hash", "char_ngrams", "HashedVectorTable"]

# Bucket vectors are a pure function of (dim, num_buckets, seed, bucket), so
# the lazily generated vectors are shared process-wide across all table
# instances with the same configuration.  Trainers construct a fresh embedder
# (and thus a fresh table) per fit; sharing keeps the hot vocabulary warm.
_SHARED_BUCKET_CACHES: Dict[Tuple[int, int, int], Dict[int, np.ndarray]] = {}

_FNV_OFFSET = 1469598103934665603
_FNV_PRIME = 1099511628211
_MASK = 0x7FFFFFFFFFFFFFFF


def stable_hash(text: str, salt: int = 0) -> int:
    """FNV-1a hash of ``text`` mixed with ``salt``; stable across processes."""
    value = (_FNV_OFFSET ^ (salt * 0x9E3779B97F4A7C15)) & _MASK
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK
    return value


def char_ngrams(token: str, min_n: int = 3, max_n: int = 5,
                add_word_boundaries: bool = True) -> List[str]:
    """Return the character n-grams of ``token`` (FastText-style).

    Word boundary markers ``<`` and ``>`` are added so that prefixes/suffixes
    hash differently from word-internal n-grams.
    """
    if min_n < 1 or max_n < min_n:
        raise ValueError(f"invalid n-gram range [{min_n}, {max_n}]")
    word = f"<{token}>" if add_word_boundaries else token
    grams: List[str] = []
    for n in range(min_n, max_n + 1):
        if len(word) < n:
            continue
        grams.extend(word[i:i + n] for i in range(len(word) - n + 1))
    return grams


class HashedVectorTable:
    """A virtual table of ``num_buckets`` Gaussian vectors addressed by hash.

    Vectors are generated lazily and deterministically from the bucket index
    and a global seed, so the table needs no storage proportional to the
    vocabulary and two processes always agree on every vector.
    """

    def __init__(self, dim: int, num_buckets: int = 1 << 20, seed: int = 13) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {num_buckets}")
        self.dim = dim
        self.num_buckets = num_buckets
        self.seed = seed
        self._cache = _SHARED_BUCKET_CACHES.setdefault((dim, num_buckets, seed), {})

    def bucket(self, key: str) -> int:
        """Map a string key to its bucket index."""
        return stable_hash(key, salt=self.seed) % self.num_buckets

    def buckets(self, keys: Sequence[str]) -> np.ndarray:
        """Bucket indices of ``keys`` as an int64 array."""
        num_buckets, seed = self.num_buckets, self.seed
        return np.fromiter((stable_hash(key, salt=seed) % num_buckets for key in keys),
                           dtype=np.int64, count=len(keys))

    def vector_for_bucket(self, bucket: int) -> np.ndarray:
        """Return the deterministic Gaussian vector for ``bucket``."""
        cached = self._cache.get(bucket)
        if cached is not None:
            return cached
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, bucket]))
        vector = rng.standard_normal(self.dim) / np.sqrt(self.dim)
        if len(self._cache) < 200_000:  # bound memory while keeping hot keys fast
            self._cache[bucket] = vector
        return vector

    def vectors_for_buckets(self, buckets: Sequence[int]) -> np.ndarray:
        """Stack the vectors of ``buckets`` into a ``(len(buckets), dim)`` array."""
        out = np.empty((len(buckets), self.dim), dtype=np.float64)
        for i, bucket in enumerate(buckets):
            out[i] = self.vector_for_bucket(int(bucket))
        return out

    def vector(self, key: str) -> np.ndarray:
        """Return the vector assigned to a string key."""
        return self.vector_for_bucket(self.bucket(key))

    def vectors(self, keys: Iterable[str]) -> np.ndarray:
        """Stack the vectors of ``keys`` into a ``(len(keys), dim)`` array."""
        key_list = list(keys)
        if not key_list:
            return np.zeros((0, self.dim))
        return self.vectors_for_buckets(self.buckets(key_list))

    def fingerprint(self) -> str:
        """Configuration fingerprint used in encoding-cache keys."""
        return f"table:dim={self.dim}:buckets={self.num_buckets}:seed={self.seed}"
