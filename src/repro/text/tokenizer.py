"""Tokenisation and normalisation of attribute values.

AdaMEL operates on the word tokens of textual attribute values (``r[A]``).
The paper crops each attribute to at most 20 tokens and sums their
embeddings; the same cropping default is used here.
"""

from __future__ import annotations

import re
import unicodedata
from typing import List, Sequence

__all__ = ["tokenize", "normalize_text", "crop_tokens", "Tokenizer"]

# Words may contain internal dots (e.g. "ebay.com") and keep a trailing dot so
# that abbreviations such as "n." remain single tokens close to their full form.
_TOKEN_PATTERN = re.compile(r"[a-z0-9]+(?:\.[a-z0-9]+)*\.?|[^\sa-z0-9]", re.IGNORECASE)
DEFAULT_CROP_SIZE = 20


def normalize_text(text: str) -> str:
    """Lowercase, strip accents and collapse whitespace."""
    if not isinstance(text, str):
        text = "" if text is None else str(text)
    decomposed = unicodedata.normalize("NFKD", text)
    stripped = "".join(ch for ch in decomposed if not unicodedata.combining(ch))
    return re.sub(r"\s+", " ", stripped.strip().lower())


def tokenize(text: str) -> List[str]:
    """Split a value into lowercase word tokens; empty values yield ``[]``."""
    normalized = normalize_text(text)
    if not normalized:
        return []
    return [match.group(0) for match in _TOKEN_PATTERN.finditer(normalized)]


def crop_tokens(tokens: Sequence[str], crop_size: int = DEFAULT_CROP_SIZE) -> List[str]:
    """Keep at most ``crop_size`` tokens, as in the paper's configuration."""
    if crop_size <= 0:
        raise ValueError(f"crop_size must be positive, got {crop_size}")
    return list(tokens[:crop_size])


class Tokenizer:
    """Configurable tokeniser combining normalisation and cropping.

    Parameters
    ----------
    crop_size:
        Maximum number of tokens retained per attribute value (paper: 20).
    keep_punctuation:
        When False, punctuation-only tokens are dropped.
    """

    def __init__(self, crop_size: int = DEFAULT_CROP_SIZE, keep_punctuation: bool = False) -> None:
        if crop_size <= 0:
            raise ValueError(f"crop_size must be positive, got {crop_size}")
        self.crop_size = crop_size
        self.keep_punctuation = keep_punctuation

    def __call__(self, text: str) -> List[str]:
        tokens = tokenize(text)
        if not self.keep_punctuation:
            tokens = [tok for tok in tokens if any(ch.isalnum() for ch in tok)]
        return crop_tokens(tokens, self.crop_size)

    def __repr__(self) -> str:
        return f"Tokenizer(crop_size={self.crop_size}, keep_punctuation={self.keep_punctuation})"
