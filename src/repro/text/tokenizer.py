"""Tokenisation and normalisation of attribute values.

AdaMEL operates on the word tokens of textual attribute values (``r[A]``).
The paper crops each attribute to at most 20 tokens and sums their
embeddings; the same cropping default is used here.
"""

from __future__ import annotations

import itertools
import re
import unicodedata
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

__all__ = ["tokenize", "normalize_text", "crop_tokens", "Tokenizer"]

# Words may contain internal dots (e.g. "ebay.com") and keep a trailing dot so
# that abbreviations such as "n." remain single tokens close to their full form.
_TOKEN_PATTERN = re.compile(r"[a-z0-9]+(?:\.[a-z0-9]+)*\.?|[^\sa-z0-9]", re.IGNORECASE)
DEFAULT_CROP_SIZE = 20

# Attribute values repeat heavily across entity pairs (every record appears in
# many pairs), so tokenisation results are memoised process-wide.  Tokenisation
# is a pure function of the input text, which keeps the memo exact.
_TOKENIZE_CACHE_SIZE = 1 << 16

# Monotonic tokens for per-instance subclass fingerprints: unlike ``id()``,
# never reused after an instance is garbage collected.
_IDENTITY_TOKENS = itertools.count()


def normalize_text(text: str) -> str:
    """Lowercase, strip accents and collapse whitespace."""
    if not isinstance(text, str):
        text = "" if text is None else str(text)
    decomposed = unicodedata.normalize("NFKD", text)
    stripped = "".join(ch for ch in decomposed if not unicodedata.combining(ch))
    return re.sub(r"\s+", " ", stripped.strip().lower())


@lru_cache(maxsize=_TOKENIZE_CACHE_SIZE)
def _tokenize_cached(text: str) -> Tuple[str, ...]:
    normalized = normalize_text(text)
    if not normalized:
        return ()
    return tuple(match.group(0) for match in _TOKEN_PATTERN.finditer(normalized))


def tokenize(text: str) -> List[str]:
    """Split a value into lowercase word tokens; empty values yield ``[]``."""
    if not isinstance(text, str):
        text = "" if text is None else str(text)
    return list(_tokenize_cached(text))


def crop_tokens(tokens: Sequence[str], crop_size: int = DEFAULT_CROP_SIZE) -> List[str]:
    """Keep at most ``crop_size`` tokens, as in the paper's configuration."""
    if crop_size <= 0:
        raise ValueError(f"crop_size must be positive, got {crop_size}")
    return list(tokens[:crop_size])


class Tokenizer:
    """Configurable tokeniser combining normalisation and cropping.

    Parameters
    ----------
    crop_size:
        Maximum number of tokens retained per attribute value (paper: 20).
    keep_punctuation:
        When False, punctuation-only tokens are dropped.
    """

    # One memo per (class, crop_size, keep_punctuation) configuration, shared
    # by all Tokenizer instances: trainers construct a fresh tokenizer per
    # fit, and sharing keeps the memo warm across fits within one process.
    # Keying on the concrete class keeps a subclass with changed behaviour
    # from sharing (and poisoning) the base class's memo.
    _shared_caches: Dict[Tuple[type, int, bool], Dict[str, Tuple[str, ...]]] = {}

    def __init__(self, crop_size: int = DEFAULT_CROP_SIZE, keep_punctuation: bool = False,
                 cache_size: int = _TOKENIZE_CACHE_SIZE) -> None:
        if crop_size <= 0:
            raise ValueError(f"crop_size must be positive, got {crop_size}")
        self.crop_size = crop_size
        self.keep_punctuation = keep_punctuation
        self._cache_size = cache_size
        # Subclasses may carry behaviour-changing state this base class does
        # not know about, so only plain Tokenizer instances share a memo (and
        # a config-based fingerprint); subclass instances get private ones.
        if type(self) is Tokenizer:
            self._cache = self._shared_caches.setdefault(
                (type(self), crop_size, keep_punctuation), {})
        else:
            self._cache = {}

    def clear_memo(self) -> None:
        """Drop this configuration's shared text -> tokens memo (benchmarks)."""
        self._cache.clear()

    def __call__(self, text: str) -> List[str]:
        if not isinstance(text, str):
            text = "" if text is None else str(text)
        cached = self._cache.get(text)
        if cached is not None:
            return list(cached)
        tokens = tokenize(text)
        if not self.keep_punctuation:
            tokens = [tok for tok in tokens if any(ch.isalnum() for ch in tok)]
        tokens = crop_tokens(tokens, self.crop_size)
        if len(self._cache) < self._cache_size:
            self._cache[text] = tuple(tokens)
        return tokens

    def fingerprint(self) -> str:
        """Configuration fingerprint used in encoding-cache keys.

        Only plain :class:`Tokenizer` output is a pure function of the config
        captured here; a subclass that does not override this gets a
        per-instance fingerprint (never reused within the process), so its
        cache entries can never be served to a differently-behaving instance.
        """
        if type(self) is Tokenizer:
            return f"tok:crop={self.crop_size}:punct={int(self.keep_punctuation)}"
        token = getattr(self, "_identity_token", None)
        if token is None:
            token = next(_IDENTITY_TOKENS)
            self._identity_token = token
        return f"tok[{type(self).__qualname__}]@{token}"

    def __repr__(self) -> str:
        return f"Tokenizer(crop_size={self.crop_size}, keep_punctuation={self.keep_punctuation})"
