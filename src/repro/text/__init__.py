"""Text substrate: tokenisation, fixed hashed embeddings, string similarity."""

from .embeddings import DEFAULT_EMBEDDING_DIM, HashedEmbedder, TokenEmbedder, missing_value_vector
from .hashing import HashedVectorTable, char_ngrams, stable_hash
from .similarity import (
    SIMILARITY_FUNCTIONS,
    dice_similarity,
    exact_match,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    length_difference,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan_similarity,
    overlap_coefficient,
    similarity_vector,
    token_cosine_similarity,
)
from .tokenizer import DEFAULT_CROP_SIZE, Tokenizer, crop_tokens, normalize_text, tokenize
from .vocab import Vocabulary

__all__ = [
    "Tokenizer",
    "tokenize",
    "normalize_text",
    "crop_tokens",
    "DEFAULT_CROP_SIZE",
    "Vocabulary",
    "HashedEmbedder",
    "TokenEmbedder",
    "missing_value_vector",
    "DEFAULT_EMBEDDING_DIM",
    "HashedVectorTable",
    "char_ngrams",
    "stable_hash",
    "SIMILARITY_FUNCTIONS",
    "similarity_vector",
    "jaccard_similarity",
    "overlap_coefficient",
    "dice_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "monge_elkan_similarity",
    "token_cosine_similarity",
    "exact_match",
    "length_difference",
]
