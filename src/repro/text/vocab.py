"""Vocabulary management for trainable-embedding baselines (Ditto)."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence

__all__ = ["Vocabulary"]

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"


class Vocabulary:
    """Token-to-id mapping with padding and unknown-token handling."""

    def __init__(self, min_frequency: int = 1, max_size: int = 50_000) -> None:
        if min_frequency < 1:
            raise ValueError("min_frequency must be >= 1")
        self.min_frequency = min_frequency
        self.max_size = max_size
        self._token_to_id: Dict[str, int] = {PAD_TOKEN: 0, UNK_TOKEN: 1}
        self._id_to_token: List[str] = [PAD_TOKEN, UNK_TOKEN]
        self._counts: Counter = Counter()
        self._finalized = False

    @property
    def pad_id(self) -> int:
        return 0

    @property
    def unk_id(self) -> int:
        return 1

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def update(self, tokens: Iterable[str]) -> None:
        """Accumulate token counts before :meth:`finalize`."""
        if self._finalized:
            raise RuntimeError("cannot update a finalized vocabulary")
        self._counts.update(tokens)

    def finalize(self) -> "Vocabulary":
        """Freeze the vocabulary, keeping the most frequent tokens."""
        if self._finalized:
            return self
        eligible = [(count, token) for token, count in self._counts.items()
                    if count >= self.min_frequency]
        eligible.sort(key=lambda item: (-item[0], item[1]))
        for _, token in eligible[: self.max_size - 2]:
            if token not in self._token_to_id:
                self._token_to_id[token] = len(self._id_to_token)
                self._id_to_token.append(token)
        self._finalized = True
        return self

    def encode(self, tokens: Sequence[str], length: int) -> List[int]:
        """Map tokens to ids, padding/truncating to exactly ``length``."""
        if not self._finalized:
            raise RuntimeError("vocabulary must be finalized before encoding")
        ids = [self._token_to_id.get(token, self.unk_id) for token in tokens[:length]]
        ids.extend([self.pad_id] * (length - len(ids)))
        return ids

    def token(self, token_id: int) -> str:
        """Return the token string for an id."""
        return self._id_to_token[token_id]

    @classmethod
    def build(cls, corpus: Iterable[Sequence[str]], min_frequency: int = 1,
              max_size: int = 50_000) -> "Vocabulary":
        """Build and finalize a vocabulary from an iterable of token lists."""
        vocab = cls(min_frequency=min_frequency, max_size=max_size)
        for tokens in corpus:
            vocab.update(tokens)
        return vocab.finalize()
