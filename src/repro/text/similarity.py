"""Classical string-similarity measures.

TLER (Thirumuruganathan et al., 2018), the non-deep transfer-learning baseline
reproduced in :mod:`repro.baselines.tler`, represents an entity pair with a
standard feature space of string similarities between corresponding attribute
values.  This module provides those measures; they are also reused by the
blocking stage.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

from .tokenizer import tokenize

__all__ = [
    "jaccard_similarity",
    "overlap_coefficient",
    "dice_similarity",
    "levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "monge_elkan_similarity",
    "token_cosine_similarity",
    "exact_match",
    "length_difference",
    "SIMILARITY_FUNCTIONS",
    "similarity_vector",
]


def jaccard_similarity(a: str, b: str) -> float:
    """Jaccard similarity between the token sets of ``a`` and ``b``."""
    set_a, set_b = set(tokenize(a)), set(tokenize(b))
    if not set_a and not set_b:
        return 0.0
    union = set_a | set_b
    return len(set_a & set_b) / len(union) if union else 0.0


def overlap_coefficient(a: str, b: str) -> float:
    """Szymkiewicz–Simpson overlap coefficient on token sets."""
    set_a, set_b = set(tokenize(a)), set(tokenize(b))
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def dice_similarity(a: str, b: str) -> float:
    """Sørensen–Dice coefficient on token sets."""
    set_a, set_b = set(tokenize(a)), set(tokenize(b))
    if not set_a and not set_b:
        return 0.0
    denom = len(set_a) + len(set_b)
    return 2.0 * len(set_a & set_b) / denom if denom else 0.0


def levenshtein_distance(a: str, b: str) -> int:
    """Edit distance between the raw strings (dynamic programming, O(len a * len b))."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalised to a similarity in [0, 1]."""
    if not a and not b:
        return 0.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest if longest else 0.0


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity between two strings."""
    if not a and not b:
        return 0.0
    if not a or not b:
        return 0.0
    if a == b:
        return 1.0
    match_window = max(len(a), len(b)) // 2 - 1
    match_window = max(match_window, 0)
    a_matches = [False] * len(a)
    b_matches = [False] * len(b)
    matches = 0
    for i, char_a in enumerate(a):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len(b))
        for j in range(start, end):
            if b_matches[j] or b[j] != char_a:
                continue
            a_matches[i] = True
            b_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(a_matches):
        if not matched:
            continue
        while not b_matches[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (matches / len(a) + matches / len(b) + (matches - transpositions) / matches) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler similarity boosting shared prefixes (up to 4 chars)."""
    jaro = jaro_similarity(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix += 1
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def monge_elkan_similarity(a: str, b: str) -> float:
    """Monge–Elkan: mean over tokens of ``a`` of the best Jaro-Winkler match in ``b``."""
    tokens_a, tokens_b = tokenize(a), tokenize(b)
    if not tokens_a or not tokens_b:
        return 0.0
    best_scores = [max(jaro_winkler_similarity(tok_a, tok_b) for tok_b in tokens_b)
                   for tok_a in tokens_a]
    return float(np.mean(best_scores))


def token_cosine_similarity(a: str, b: str) -> float:
    """Cosine similarity of token-frequency vectors."""
    tokens_a, tokens_b = tokenize(a), tokenize(b)
    if not tokens_a or not tokens_b:
        return 0.0
    vocab = sorted(set(tokens_a) | set(tokens_b))
    index = {token: i for i, token in enumerate(vocab)}
    vec_a = np.zeros(len(vocab))
    vec_b = np.zeros(len(vocab))
    for token in tokens_a:
        vec_a[index[token]] += 1
    for token in tokens_b:
        vec_b[index[token]] += 1
    denom = np.linalg.norm(vec_a) * np.linalg.norm(vec_b)
    return float(vec_a @ vec_b / denom) if denom else 0.0


def exact_match(a: str, b: str) -> float:
    """1.0 when the normalised strings are identical and non-empty."""
    norm_a = " ".join(tokenize(a))
    norm_b = " ".join(tokenize(b))
    return 1.0 if norm_a and norm_a == norm_b else 0.0


def length_difference(a: str, b: str) -> float:
    """Relative absolute difference in token counts (0 identical, →1 different)."""
    len_a, len_b = len(tokenize(a)), len(tokenize(b))
    if len_a == 0 and len_b == 0:
        return 0.0
    return abs(len_a - len_b) / max(len_a, len_b)


SIMILARITY_FUNCTIONS: Dict[str, Callable[[str, str], float]] = {
    "jaccard": jaccard_similarity,
    "overlap": overlap_coefficient,
    "dice": dice_similarity,
    "levenshtein": levenshtein_similarity,
    "jaro_winkler": jaro_winkler_similarity,
    "monge_elkan": monge_elkan_similarity,
    "cosine": token_cosine_similarity,
    "exact": exact_match,
    "length_diff": length_difference,
}


def similarity_vector(a: str, b: str, measures: Sequence[str] = None) -> np.ndarray:
    """Stack the selected similarity measures into a feature vector.

    This is TLER's per-attribute "standard feature space".
    """
    names: List[str] = list(measures) if measures else list(SIMILARITY_FUNCTIONS)
    unknown = [name for name in names if name not in SIMILARITY_FUNCTIONS]
    if unknown:
        raise KeyError(f"unknown similarity measures: {unknown}")
    return np.array([SIMILARITY_FUNCTIONS[name](a, b) for name in names], dtype=np.float64)
