"""Token embedders.

``HashedEmbedder`` is the offline substitute for pretrained FastText vectors
(see DESIGN.md): each token's vector is the average of its hashed character
n-gram vectors plus a whole-word hashed vector.  The embeddings are *fixed*
(never trained), matching how AdaMEL and the baselines use FastText.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .hashing import HashedVectorTable, char_ngrams
from .tokenizer import Tokenizer

__all__ = ["TokenEmbedder", "HashedEmbedder", "missing_value_vector"]

DEFAULT_EMBEDDING_DIM = 64

# Token embeddings are a pure function of the embedder configuration, so the
# token -> vector memo is shared process-wide across instances with the same
# configuration (trainers build a fresh embedder per fit).  The key includes
# the concrete class so a subclass with changed behaviour never shares a memo
# with its base.
_SHARED_TOKEN_CACHES: Dict[Tuple[Hashable, ...], Dict[str, np.ndarray]] = {}

# Monotonic tokens for identity-based fingerprints: unlike ``id()``, a token
# is never reused after an embedder is garbage collected, so a stale entry in
# the process-wide encoding cache can never match a new embedder.
_IDENTITY_TOKENS = itertools.count()


def missing_value_vector(dim: int, scale: float = 1.0) -> np.ndarray:
    """The fixed normalised non-zero vector used for missing attribute values.

    The paper initialises missing attribute values (challenges C1/C2) with "a
    fixed normalized non-zero vector" so that gradients still flow through the
    corresponding feature; this returns that vector.
    """
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    vector = np.ones(dim, dtype=np.float64)
    return scale * vector / np.linalg.norm(vector)


class TokenEmbedder:
    """Interface: map token sequences to a fixed-dimensional summary vector."""

    dim: int

    def embed_token(self, token: str) -> np.ndarray:
        raise NotImplementedError

    def embed_tokens(self, tokens: Sequence[str]) -> np.ndarray:
        """Sum the embeddings of ``tokens`` (paper Eq. 3 summarisation).

        Empty token lists map to the fixed missing-value vector.
        """
        if not tokens:
            return missing_value_vector(self.dim)
        total = np.zeros(self.dim, dtype=np.float64)
        for token in tokens:
            total += self.embed_token(token)
        return total

    def embed_token_batch(self, tokens: Sequence[str]) -> np.ndarray:
        """Embed many tokens at once into a ``(len(tokens), dim)`` matrix.

        The default implementation loops over :meth:`embed_token`; subclasses
        may override with a vectorised path that produces identical values.
        """
        out = np.empty((len(tokens), self.dim), dtype=np.float64)
        for i, token in enumerate(tokens):
            out[i] = self.embed_token(token)
        return out

    def embed_token_matrix(self, tokens: Sequence[str], length: int) -> np.ndarray:
        """Return a padded ``(length, dim)`` matrix of per-token embeddings."""
        matrix = np.zeros((length, self.dim), dtype=np.float64)
        for i, token in enumerate(tokens[:length]):
            matrix[i] = self.embed_token(token)
        return matrix

    def embed_text(self, text: str) -> np.ndarray:
        """Tokenise then embed a raw attribute value."""
        raise NotImplementedError

    def fingerprint(self) -> str:
        """Configuration fingerprint used in encoding-cache keys.

        The default is instance-identity based, which is always safe (never
        shares cache entries between embedders that could differ); embedders
        whose output is a pure function of their configuration override this.
        """
        token = getattr(self, "_identity_token", None)
        if token is None:
            token = next(_IDENTITY_TOKENS)
            self._identity_token = token
        return f"{type(self).__qualname__}@{token}"


class HashedEmbedder(TokenEmbedder):
    """FastText-style fixed embeddings via hashed character n-grams.

    Parameters
    ----------
    dim:
        Embedding dimensionality (the paper uses 300; smaller defaults keep
        CPU experiments fast without changing behaviour).
    min_n, max_n:
        Character n-gram range (FastText defaults: 3..6; we default to 3..5).
    tokenizer:
        Tokeniser used by :meth:`embed_text`; defaults to the paper's
        configuration (crop to 20 tokens).
    """

    def __init__(self, dim: int = DEFAULT_EMBEDDING_DIM, min_n: int = 3, max_n: int = 5,
                 seed: int = 13, tokenizer: Optional[Tokenizer] = None,
                 cache_size: int = 100_000) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self.min_n = min_n
        self.max_n = max_n
        self.table = HashedVectorTable(dim=dim, seed=seed)
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        # Subclasses may change embedding behaviour in ways this config does
        # not capture, so only plain HashedEmbedder instances share a memo.
        if type(self) is HashedEmbedder:
            self._cache = _SHARED_TOKEN_CACHES.setdefault(
                (dim, min_n, max_n, seed, self.table.num_buckets), {})
        else:
            self._cache = {}
        self._cache_size = cache_size

    def clear_memo(self) -> None:
        """Drop this configuration's shared token -> vector memo (benchmarks)."""
        self._cache.clear()

    def _piece_keys(self, token: str) -> List[str]:
        keys = [f"word::{token}"]
        keys.extend(f"ngram::{gram}" for gram in char_ngrams(token, self.min_n, self.max_n))
        return keys

    def embed_token(self, token: str) -> np.ndarray:
        cached = self._cache.get(token)
        if cached is not None:
            return cached
        pieces: List[np.ndarray] = [self.table.vector(key) for key in self._piece_keys(token)]
        vector = np.mean(pieces, axis=0)
        if len(self._cache) < self._cache_size:
            self._cache[token] = vector
        return vector

    def embed_token_batch(self, tokens: Sequence[str]) -> np.ndarray:
        """Vectorised batch embedding, bit-identical to :meth:`embed_token`.

        Uncached tokens are expanded into their hashed pieces, the piece
        vectors are gathered in one pass and averaged per token with a
        segmented reduction; the reduction order matches the sequential
        ``np.mean`` of :meth:`embed_token`, so cached and batch-computed
        vectors are interchangeable.
        """
        out = np.empty((len(tokens), self.dim), dtype=np.float64)
        miss_rows: List[int] = []
        miss_tokens: List[str] = []
        for i, token in enumerate(tokens):
            cached = self._cache.get(token)
            if cached is None:
                miss_rows.append(i)
                miss_tokens.append(token)
            else:
                out[i] = cached
        if miss_tokens:
            keys: List[str] = []
            counts = np.empty(len(miss_tokens), dtype=np.int64)
            for j, token in enumerate(miss_tokens):
                piece_keys = self._piece_keys(token)
                counts[j] = len(piece_keys)
                keys.extend(piece_keys)
            piece_vectors = self.table.vectors(keys)
            ends = np.cumsum(counts)
            start = 0
            for j, (row, token) in enumerate(zip(miss_rows, miss_tokens)):
                end = int(ends[j])
                # np.add.reduce over the contiguous block reproduces the exact
                # reduction np.mean performs in embed_token (bit-identical).
                vector = np.add.reduce(piece_vectors[start:end], axis=0) / counts[j]
                start = end
                out[row] = vector
                if len(self._cache) < self._cache_size:
                    self._cache[token] = vector
        return out

    def embed_text(self, text: str) -> np.ndarray:
        return self.embed_tokens(self.tokenizer(text))

    def fingerprint(self) -> str:
        """Configuration fingerprint used in encoding-cache keys.

        Only plain :class:`HashedEmbedder` output is a pure function of this
        configuration; subclasses that do not override this fall back to the
        identity-based default, which never matches another instance.
        """
        if type(self) is HashedEmbedder:
            return (f"hashed:dim={self.dim}:n={self.min_n}-{self.max_n}:"
                    f"{self.table.fingerprint()}")
        return super().fingerprint()

    def similarity(self, token_a: str, token_b: str) -> float:
        """Cosine similarity between two token embeddings (diagnostics)."""
        a = self.embed_token(token_a)
        b = self.embed_token(token_b)
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        return float(a @ b / denom) if denom > 0 else 0.0
