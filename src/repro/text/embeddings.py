"""Token embedders.

``HashedEmbedder`` is the offline substitute for pretrained FastText vectors
(see DESIGN.md): each token's vector is the average of its hashed character
n-gram vectors plus a whole-word hashed vector.  The embeddings are *fixed*
(never trained), matching how AdaMEL and the baselines use FastText.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .hashing import HashedVectorTable, char_ngrams
from .tokenizer import Tokenizer

__all__ = ["TokenEmbedder", "HashedEmbedder", "missing_value_vector"]

DEFAULT_EMBEDDING_DIM = 64


def missing_value_vector(dim: int, scale: float = 1.0) -> np.ndarray:
    """The fixed normalised non-zero vector used for missing attribute values.

    The paper initialises missing attribute values (challenges C1/C2) with "a
    fixed normalized non-zero vector" so that gradients still flow through the
    corresponding feature; this returns that vector.
    """
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    vector = np.ones(dim, dtype=np.float64)
    return scale * vector / np.linalg.norm(vector)


class TokenEmbedder:
    """Interface: map token sequences to a fixed-dimensional summary vector."""

    dim: int

    def embed_token(self, token: str) -> np.ndarray:
        raise NotImplementedError

    def embed_tokens(self, tokens: Sequence[str]) -> np.ndarray:
        """Sum the embeddings of ``tokens`` (paper Eq. 3 summarisation).

        Empty token lists map to the fixed missing-value vector.
        """
        if not tokens:
            return missing_value_vector(self.dim)
        total = np.zeros(self.dim, dtype=np.float64)
        for token in tokens:
            total += self.embed_token(token)
        return total

    def embed_token_matrix(self, tokens: Sequence[str], length: int) -> np.ndarray:
        """Return a padded ``(length, dim)`` matrix of per-token embeddings."""
        matrix = np.zeros((length, self.dim), dtype=np.float64)
        for i, token in enumerate(tokens[:length]):
            matrix[i] = self.embed_token(token)
        return matrix

    def embed_text(self, text: str) -> np.ndarray:
        """Tokenise then embed a raw attribute value."""
        raise NotImplementedError


class HashedEmbedder(TokenEmbedder):
    """FastText-style fixed embeddings via hashed character n-grams.

    Parameters
    ----------
    dim:
        Embedding dimensionality (the paper uses 300; smaller defaults keep
        CPU experiments fast without changing behaviour).
    min_n, max_n:
        Character n-gram range (FastText defaults: 3..6; we default to 3..5).
    tokenizer:
        Tokeniser used by :meth:`embed_text`; defaults to the paper's
        configuration (crop to 20 tokens).
    """

    def __init__(self, dim: int = DEFAULT_EMBEDDING_DIM, min_n: int = 3, max_n: int = 5,
                 seed: int = 13, tokenizer: Optional[Tokenizer] = None,
                 cache_size: int = 100_000) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self.min_n = min_n
        self.max_n = max_n
        self.table = HashedVectorTable(dim=dim, seed=seed)
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self._cache: Dict[str, np.ndarray] = {}
        self._cache_size = cache_size

    def embed_token(self, token: str) -> np.ndarray:
        cached = self._cache.get(token)
        if cached is not None:
            return cached
        pieces: List[np.ndarray] = [self.table.vector(f"word::{token}")]
        for gram in char_ngrams(token, self.min_n, self.max_n):
            pieces.append(self.table.vector(f"ngram::{gram}"))
        vector = np.mean(pieces, axis=0)
        if len(self._cache) < self._cache_size:
            self._cache[token] = vector
        return vector

    def embed_text(self, text: str) -> np.ndarray:
        return self.embed_tokens(self.tokenizer(text))

    def similarity(self, token_a: str, token_b: str) -> float:
        """Cosine similarity between two token embeddings (diagnostics)."""
        a = self.embed_token(token_a)
        b = self.embed_token(token_b)
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        return float(a @ b / denom) if denom > 0 else 0.0
