"""AdaMEL training loop shared by all four variants (Algorithms 1-3).

``AdaMELTrainer`` owns the pair encoder, the network and the optimiser, and
implements the mini-batch loop of the paper's algorithms:

* every epoch, the attention vector averaged over the unlabeled target domain
  is recomputed with the current parameters (Algorithm 1, line 5);
* every epoch, the positive/negative attention centroids of the source domain
  and the mean distances to them are recomputed (Algorithm 2, line 10);
* every mini-batch sampled from ``D_S`` contributes ``L_base`` and, depending
  on the variant, ``L_target`` (KL to the averaged target attention) and
  ``L_support`` (distance-weighted loss over the labeled support set).

The four public variants in :mod:`repro.core.variants` only differ in which
loss terms are switched on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.domain import MELScenario
from ..data.records import EntityPair
from ..data.sampling import BatchSampler
from ..data.schema import Schema
from ..eval.metrics import ClassificationReport, classification_report
from ..features.encoder import EncodedBatch, PairEncoder
from ..features.importance import ImportanceReport, aggregate_importance
from ..nn.optim import Adam, clip_grad_norm
from ..text.embeddings import HashedEmbedder, TokenEmbedder
from ..text.tokenizer import Tokenizer
from ..utils.rng import spawn_rng
from .config import AdaMELConfig
from .losses import (
    attention_centroids,
    base_loss,
    centroid_mean_distances,
    combine_losses,
    support_loss,
    target_adaptation_loss,
)
from .model import AdaMELNetwork

__all__ = ["TrainingHistory", "AdaMELTrainer"]


@dataclass
class TrainingHistory:
    """Per-epoch loss traces recorded during :meth:`AdaMELTrainer.fit`."""

    total_loss: List[float] = field(default_factory=list)
    base_loss: List[float] = field(default_factory=list)
    target_loss: List[float] = field(default_factory=list)
    support_loss: List[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.total_loss)

    def final_loss(self) -> float:
        return self.total_loss[-1] if self.total_loss else float("nan")

    def as_dict(self) -> Dict[str, List[float]]:
        return {
            "total_loss": list(self.total_loss),
            "base_loss": list(self.base_loss),
            "target_loss": list(self.target_loss),
            "support_loss": list(self.support_loss),
        }


class AdaMELTrainer:
    """Fit / predict interface shared by all AdaMEL variants.

    Subclasses set :attr:`uses_target` (domain adaptation on the unlabeled
    target domain) and :attr:`uses_support` (supervision from the labeled
    support set).  The base class with both flags off is AdaMEL-base.
    """

    variant: str = "base"
    uses_target: bool = False
    uses_support: bool = False

    def __init__(self, config: Optional[AdaMELConfig] = None,
                 embedder: Optional[TokenEmbedder] = None) -> None:
        self.config = config or AdaMELConfig()
        self._external_embedder = embedder
        self.encoder: Optional[PairEncoder] = None
        self.network: Optional[AdaMELNetwork] = None
        self.history: Optional[TrainingHistory] = None
        self.schema: Optional[Schema] = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, scenario: MELScenario) -> TrainingHistory:
        """Train on a :class:`MELScenario` following the variant's algorithm."""
        config = self.config
        scenario = scenario.align()
        self.schema = scenario.aligned_schema()
        tokenizer = Tokenizer(crop_size=config.crop_size)
        embedder = self._external_embedder or HashedEmbedder(dim=config.embedding_dim,
                                                             tokenizer=tokenizer)
        if embedder.dim != config.embedding_dim:
            raise ValueError(
                f"embedder dimension {embedder.dim} does not match config.embedding_dim "
                f"{config.embedding_dim}"
            )
        self.encoder = PairEncoder(self.schema, embedder=embedder, tokenizer=tokenizer,
                                   feature_kinds=config.feature_kinds)

        # The labeled pool for L_base is the source domain plus, when the
        # variant uses it, the labeled support set (goal G2: leverage the few
        # labeled target pairs).  The distance-weighted L_support term is
        # computed on the support set alone.
        labeled_pairs = list(scenario.source.pairs)
        support_batch: Optional[EncodedBatch] = None
        if self.uses_support and scenario.support is not None and len(scenario.support):
            support_batch = self.encoder.encode(scenario.support.pairs)
            labeled_pairs.extend(scenario.support.pairs)
        source_batch = self.encoder.encode(labeled_pairs)
        target_batch = self.encoder.encode(scenario.target.pairs) if self.uses_target else None

        rng = spawn_rng(config.seed)
        self.network = AdaMELNetwork(self.encoder.num_features, config.embedding_dim,
                                     config=config, rng=rng)
        optimizer = Adam(self.network.parameters(), lr=config.learning_rate)
        history = TrainingHistory()

        for epoch in range(config.epochs):
            epoch_losses = self._train_epoch(epoch, source_batch, target_batch, support_batch,
                                             optimizer)
            history.total_loss.append(epoch_losses["total"])
            history.base_loss.append(epoch_losses["base"])
            history.target_loss.append(epoch_losses["target"])
            history.support_loss.append(epoch_losses["support"])
            if config.verbose:
                print(f"[{self.variant}] epoch {epoch + 1}/{config.epochs} "
                      f"loss={epoch_losses['total']:.4f}")
        self.history = history
        return history

    def _train_epoch(self, epoch: int, source_batch: EncodedBatch,
                     target_batch: Optional[EncodedBatch],
                     support_batch: Optional[EncodedBatch], optimizer: Adam) -> Dict[str, float]:
        config = self.config
        network = self.network
        assert network is not None

        # Algorithm 1 line 5: attention averaged over the target domain,
        # recomputed with the current parameters once per epoch.
        target_mean: Optional[np.ndarray] = None
        if self.uses_target and target_batch is not None and len(target_batch):
            target_mean = network.attention_numpy(target_batch.features).mean(axis=0)

        # Algorithm 2 line 10: source-domain attention centroids and mean
        # distances, used to weight the support-set loss.
        centroids = None
        if self.uses_support and support_batch is not None and len(support_batch):
            source_attention = network.attention_numpy(source_batch.features)
            c_plus, c_minus = attention_centroids(source_attention, source_batch.labels)
            d_plus, d_minus = centroid_mean_distances(source_attention, source_batch.labels,
                                                      c_plus, c_minus)
            centroids = (c_plus, c_minus, d_plus, d_minus)

        sampler = BatchSampler(len(source_batch), config.batch_size, shuffle=True,
                               seed=config.seed * 1000 + epoch)
        support_rng = spawn_rng(config.seed * 7919 + epoch)
        sums = {"total": 0.0, "base": 0.0, "target": 0.0, "support": 0.0}
        num_batches = 0
        for indices in sampler:
            batch = source_batch.subset(indices)
            forward = network.forward(batch.features)
            l_base = base_loss(forward.probabilities, batch.labels)
            l_target = None
            if target_mean is not None:
                l_target = target_adaptation_loss(forward.attention, target_mean)
            l_support = None
            if centroids is not None and support_batch is not None:
                # Batch learning (Sec. 4.4): a random support mini-batch per
                # step rather than the full support set, which would otherwise
                # be revisited once per source batch and overfit quickly.
                take = min(config.batch_size, len(support_batch))
                support_indices = support_rng.choice(len(support_batch), size=take, replace=False)
                support_view = support_batch.subset(support_indices)
                support_forward = network.forward(support_view.features)
                c_plus, c_minus, d_plus, d_minus = centroids
                l_support = support_loss(support_forward.probabilities, support_forward.attention,
                                         support_view.labels, c_plus, c_minus, d_plus, d_minus)
            loss = combine_losses(l_base=l_base, l_target=l_target, l_support=l_support,
                                  adaptation_weight=config.adaptation_weight,
                                  support_weight=config.support_weight)
            optimizer.zero_grad()
            loss.backward()
            if config.grad_clip > 0:
                clip_grad_norm(network.parameters(), config.grad_clip)
            optimizer.step()

            sums["total"] += float(loss.data)
            sums["base"] += float(l_base.data)
            sums["target"] += float(l_target.data) if l_target is not None else 0.0
            sums["support"] += float(l_support.data) if l_support is not None else 0.0
            num_batches += 1
        if num_batches == 0:
            raise RuntimeError("no training batches were produced; source domain is empty")
        return {key: value / num_batches for key, value in sums.items()}

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def _require_fitted(self) -> None:
        if self.network is None or self.encoder is None:
            raise RuntimeError("the model must be fitted before inference; call fit() first")

    def predict_proba(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Matching probability for every pair."""
        self._require_fitted()
        if len(pairs) == 0:
            return np.zeros(0)
        batch = self.encoder.encode(pairs)
        return self.network.predict_proba(batch.features)

    def predict(self, pairs: Sequence[EntityPair], threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(pairs) >= threshold).astype(np.int64)

    def attention_scores(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Attention score vectors ``f(x)`` (shape ``(N, F)``) for ``pairs``."""
        self._require_fitted()
        if len(pairs) == 0:
            return np.zeros((0, self.encoder.num_features))
        batch = self.encoder.encode(pairs)
        return self.network.attention_numpy(batch.features)

    def feature_importance(self, pairs: Sequence[EntityPair]) -> ImportanceReport:
        """Learned feature importance averaged over ``pairs`` (Table 4)."""
        scores = self.attention_scores(pairs)
        return aggregate_importance(scores, self.encoder.feature_names)

    def evaluate(self, pairs: Sequence[EntityPair], threshold: float = 0.5) -> ClassificationReport:
        """Score labeled pairs and return the full metric bundle."""
        labeled = [pair for pair in pairs if pair.is_labeled]
        if not labeled:
            raise ValueError("evaluate() requires labeled pairs")
        scores = self.predict_proba(labeled)
        labels = np.array([pair.label for pair in labeled], dtype=np.int64)
        return classification_report(labels, scores, threshold=threshold)

    def num_parameters(self) -> int:
        """Number of learnable parameters (paper Section 4.5 / Section 5.5)."""
        self._require_fitted()
        return self.network.num_parameters()
