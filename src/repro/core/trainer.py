"""AdaMEL training loop shared by all four variants (Algorithms 1-3).

``AdaMELTrainer`` owns the pair encoder, the network and the optimiser, and
implements the mini-batch loop of the paper's algorithms:

* every epoch, the attention vector averaged over the unlabeled target domain
  is recomputed with the current parameters (Algorithm 1, line 5);
* every epoch, the positive/negative attention centroids of the source domain
  and the mean distances to them are recomputed (Algorithm 2, line 10);
* every mini-batch sampled from ``D_S`` contributes ``L_base`` and, depending
  on the variant, ``L_target`` (KL to the averaged target attention) and
  ``L_support`` (distance-weighted loss over the labeled support set).

The four public variants in :mod:`repro.core.variants` only differ in which
loss terms are switched on.

Execution engines (``AdaMELConfig.execution``, see ``docs/autograd.md``):

* ``"eager"`` rebuilds the autograd graph for every mini-batch — the
  historical behaviour, kept as the reference path;
* ``"auto"``/``"replay"`` record the per-step graph **once** (first full-size
  mini-batch) into a :class:`~repro.nn.graph.CompiledGraph` and replay it for
  every following step with zero per-step tensor/closure allocation; the
  per-epoch target-mean and centroid recomputations replay forward-only
  graphs over buffers captured once per fit.  Odd-shaped batches (the last
  partial mini-batch of an epoch) transparently fall back to the eager
  engine.  With the default float64 dtype the two engines are bit-exact
  (see ``tests/core/test_replay_lockstep.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import obs
from ..data.domain import MELScenario
from ..data.records import EntityPair
from ..data.sampling import BatchSampler
from ..data.schema import Schema
from ..eval.metrics import ClassificationReport, classification_report
from ..features.encoder import EncodedBatch, PairEncoder
from ..features.importance import ImportanceReport, aggregate_importance
from ..nn.dtypes import using_dtype
from ..nn.graph import CompiledGraph, Tape
from ..nn.optim import Adam, clip_grad_norm
from ..nn.tensor import Tensor, no_grad, recomputed_leaf
from ..text.embeddings import HashedEmbedder, TokenEmbedder
from ..text.tokenizer import Tokenizer
from ..utils.rng import spawn_rng
from .config import AdaMELConfig
from .losses import (
    attention_centroids,
    base_loss,
    centroid_mean_distances,
    combine_losses,
    support_weights,
    target_adaptation_loss,
    weighted_support_loss,
)
from .model import AdaMELNetwork

__all__ = ["TrainingHistory", "AdaMELTrainer"]


@dataclass
class TrainingHistory:
    """Per-epoch loss traces recorded during :meth:`AdaMELTrainer.fit`."""

    total_loss: List[float] = field(default_factory=list)
    base_loss: List[float] = field(default_factory=list)
    target_loss: List[float] = field(default_factory=list)
    support_loss: List[float] = field(default_factory=list)
    # Fraction of encoder-cache lookups served from cache during this fit
    # (None when the trainer encodes without a cache).
    encoder_cache_hit_rate: Optional[float] = None
    # Per-step wall-clock seconds, recorded when config.profile_steps is set.
    step_seconds: Optional[List[float]] = None

    @property
    def epochs(self) -> int:
        return len(self.total_loss)

    def final_loss(self) -> float:
        return self.total_loss[-1] if self.total_loss else float("nan")

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "total_loss": list(self.total_loss),
            "base_loss": list(self.base_loss),
            "target_loss": list(self.target_loss),
            "support_loss": list(self.support_loss),
        }
        if self.encoder_cache_hit_rate is not None:
            payload["encoder_cache_hit_rate"] = float(self.encoder_cache_hit_rate)
        if self.step_seconds is not None:
            payload["step_seconds"] = list(self.step_seconds)
        return payload


@dataclass
class _StepLosses:
    """Handles to one training step's loss tensors (read back per replay)."""

    loss: Tensor
    base: Tensor
    target: Optional[Tensor]
    support: Optional[Tensor]


class _SupportWalk:
    """Per-epoch permutation walk over the support set.

    Draws successive contiguous windows from one shuffled order — the same
    uniform-without-replacement distribution class as a per-step
    ``choice(..., replace=False)``, but with a single shuffle per epoch
    (re-shuffling only when a window would run off the end).
    """

    def __init__(self, num_items: int, take: int, rng: np.random.Generator) -> None:
        self.num_items = num_items
        self.take = take
        self._rng = rng
        self._order = rng.permutation(num_items)
        self._position = 0

    def next_indices(self) -> np.ndarray:
        if self._position + self.take > self.num_items:
            self._order = self._rng.permutation(self.num_items)
            self._position = 0
        indices = self._order[self._position:self._position + self.take]
        self._position += self.take
        return indices


class AdaMELTrainer:
    """Fit / predict interface shared by all AdaMEL variants.

    Subclasses set :attr:`uses_target` (domain adaptation on the unlabeled
    target domain) and :attr:`uses_support` (supervision from the labeled
    support set).  The base class with both flags off is AdaMEL-base.
    """

    variant: str = "base"
    uses_target: bool = False
    uses_support: bool = False

    def __init__(self, config: Optional[AdaMELConfig] = None,
                 embedder: Optional[TokenEmbedder] = None) -> None:
        self.config = config or AdaMELConfig()
        self._external_embedder = embedder
        self.encoder: Optional[PairEncoder] = None
        self.network: Optional[AdaMELNetwork] = None
        self.history: Optional[TrainingHistory] = None
        self.schema: Optional[Schema] = None
        self._reset_compiled_state()

    def _reset_compiled_state(self) -> None:
        """Drop graphs compiled against a previous network's buffers."""
        # One compiled step graph per mini-batch size: the full batch_size
        # plus (when the epoch length is not a multiple of it) the recurring
        # final partial batch.  Anything else falls back to eager.
        self._step_graphs: Dict[int, CompiledGraph] = {}
        self._step_losses: Dict[int, _StepLosses] = {}
        self._target_graph: Optional[CompiledGraph] = None
        self._target_attention: Optional[Tensor] = None
        self._source_graph: Optional[CompiledGraph] = None
        self._source_attention: Optional[Tensor] = None
        # [c_plus, c_minus, d_plus, d_minus]; mutated in place every epoch so
        # the recomputed-leaf weight closure always reads the current values.
        self._centroid_state: List[object] = [None, None, None, None]
        self._step_seconds: List[float] = []
        # Telemetry handles, rebound once per fit (None while disabled so the
        # inner loop's check is a plain identity test, not a registry lookup).
        self._obs_step_hist = None
        self._obs_steps_total = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, scenario: MELScenario) -> TrainingHistory:
        """Train on a :class:`MELScenario` following the variant's algorithm."""
        config = self.config
        scenario = scenario.align()
        self.schema = scenario.aligned_schema()
        tokenizer = Tokenizer(crop_size=config.crop_size)
        embedder = self._external_embedder or HashedEmbedder(dim=config.embedding_dim,
                                                             tokenizer=tokenizer)
        if embedder.dim != config.embedding_dim:
            raise ValueError(
                f"embedder dimension {embedder.dim} does not match config.embedding_dim "
                f"{config.embedding_dim}"
            )
        self.encoder = PairEncoder(self.schema, embedder=embedder, tokenizer=tokenizer,
                                   feature_kinds=config.feature_kinds)
        cache = self.encoder.cache
        # One locked read: unlocked hits/misses attribute reads can straddle a
        # concurrent lookup and tear the pair (serve threads share the cache).
        if cache is not None:
            hits_now, misses_now = cache.lookup_counts()
        else:
            hits_now = misses_now = 0
        cache_lookups_before = hits_now + misses_now
        cache_hits_before = hits_now

        # The labeled pool for L_base is the source domain plus, when the
        # variant uses it, the labeled support set (goal G2: leverage the few
        # labeled target pairs).  The distance-weighted L_support term is
        # computed on the support set alone.
        labeled_pairs = list(scenario.source.pairs)
        support_batch: Optional[EncodedBatch] = None
        if self.uses_support and scenario.support is not None and len(scenario.support):
            support_batch = self.encoder.encode(scenario.support.pairs)
            labeled_pairs.extend(scenario.support.pairs)
        source_batch = self.encoder.encode(labeled_pairs)
        target_batch = self.encoder.encode(scenario.target.pairs) if self.uses_target else None

        self._reset_compiled_state()
        # Bind the per-step telemetry handles once per fit: while disabled the
        # inner loop pays one `is None` check per step, nothing more.
        registry = obs.active_registry()
        epoch_hist = epochs_total = None
        if registry is not None:
            self._obs_step_hist = registry.histogram(
                "training_step_seconds", "Wall-clock per optimiser step")
            self._obs_steps_total = registry.counter(
                "training_steps_total", "Optimiser steps run")
            epoch_hist = registry.histogram("training_epoch_seconds",
                                            "Wall-clock per training epoch")
            epochs_total = registry.counter("training_epochs_total",
                                            "Training epochs completed")
        history = TrainingHistory()
        with using_dtype(config.dtype):
            rng = spawn_rng(config.seed)
            self.network = AdaMELNetwork(self.encoder.num_features, config.embedding_dim,
                                         config=config, rng=rng)
            # flatten=True: one fused Adam update over a single contiguous
            # buffer (must happen before any replay graph is captured, since
            # it rebinds param.data to views of the flat buffer).
            optimizer = Adam(self.network.parameters(), lr=config.learning_rate,
                             flatten=True)

            for epoch in range(config.epochs):
                epoch_started = time.perf_counter()
                with obs.trace("train.epoch", epoch=epoch, variant=self.variant):
                    epoch_losses = self._train_epoch(epoch, source_batch, target_batch,
                                                     support_batch, optimizer)
                if epoch_hist is not None:
                    epoch_hist.observe(time.perf_counter() - epoch_started)
                    epochs_total.inc()
                history.total_loss.append(epoch_losses["total"])
                history.base_loss.append(epoch_losses["base"])
                history.target_loss.append(epoch_losses["target"])
                history.support_loss.append(epoch_losses["support"])
                if config.verbose:
                    hit_rate = self._fit_cache_hit_rate(cache_lookups_before,
                                                        cache_hits_before)
                    cache_note = (f" cache_hit_rate={hit_rate:.2f}"
                                  if hit_rate is not None else "")
                    print(f"[{self.variant}] epoch {epoch + 1}/{config.epochs} "
                          f"loss={epoch_losses['total']:.4f}{cache_note}")
        history.encoder_cache_hit_rate = self._fit_cache_hit_rate(cache_lookups_before,
                                                                  cache_hits_before)
        if config.profile_steps:
            history.step_seconds = list(self._step_seconds)
        if registry is not None:
            if history.encoder_cache_hit_rate is not None:
                registry.gauge("training_encoder_cache_hit_ratio",
                               "Encoder-cache hit rate over the last fit").set(
                    history.encoder_cache_hit_rate)
            replay = self.replay_stats()
            if replay is not None:
                registry.gauge("training_tape_forward_ops",
                               "Forward ops in the compiled step graph").set(
                    replay["forward_ops"])
                registry.gauge("training_tape_backward_ops",
                               "Backward ops in the compiled step graph").set(
                    replay["backward_ops"])
                registry.gauge("training_tape_nodes_count",
                               "Nodes in the compiled step graph").set(replay["nodes"])
        self._obs_step_hist = None
        self._obs_steps_total = None
        self.history = history
        return history

    def _fit_cache_hit_rate(self, lookups_before: int, hits_before: int) -> Optional[float]:
        """Encoder-cache hit rate over the lookups issued by *this* fit."""
        cache = self.encoder.cache if self.encoder is not None else None
        if cache is None:
            return None
        hits, misses = cache.lookup_counts()
        lookups = (hits + misses) - lookups_before
        if lookups <= 0:
            return 0.0
        return (hits - hits_before) / lookups

    # ------------------------------------------------------------------ #
    # Per-epoch recomputations (Algorithm 1 line 5, Algorithm 2 line 10)
    # ------------------------------------------------------------------ #
    def _compile_attention_forward(self, features: np.ndarray):
        """Capture a forward-only attention graph over a fixed batch.

        The feature buffer is constant across epochs; the parameters are read
        through live references, so replaying the graph after each optimiser
        step recomputes the attention in the captured buffers without
        rebuilding tensors.
        """
        network = self.network
        assert network is not None
        with no_grad():
            tape = Tape()
            with tape:
                feat_t = Tensor(np.asarray(features, dtype=network.V.data.dtype))
                latent = network.latent_features(feat_t)
                attention = network.attention_scores(latent)
        return CompiledGraph(tape, inputs={}), attention

    def _epoch_target_mean(self, target_batch: Optional[EncodedBatch],
                           use_graph: bool) -> Optional[np.ndarray]:
        if not (self.uses_target and target_batch is not None and len(target_batch)):
            return None
        if use_graph:
            if self._target_graph is None:
                self._target_graph, self._target_attention = \
                    self._compile_attention_forward(target_batch.features)
            else:
                self._target_graph.forward()
            return self._target_attention.data.mean(axis=0)
        return self.network.attention_numpy(target_batch.features).mean(axis=0)

    def _epoch_centroids(self, source_batch: EncodedBatch,
                         support_batch: Optional[EncodedBatch], use_graph: bool) -> bool:
        if not (self.uses_support and support_batch is not None and len(support_batch)):
            return False
        if use_graph:
            if self._source_graph is None:
                self._source_graph, self._source_attention = \
                    self._compile_attention_forward(source_batch.features)
            else:
                self._source_graph.forward()
            source_attention = self._source_attention.data
        else:
            source_attention = self.network.attention_numpy(source_batch.features)
        c_plus, c_minus = attention_centroids(source_attention, source_batch.labels)
        d_plus, d_minus = centroid_mean_distances(source_attention, source_batch.labels,
                                                  c_plus, c_minus)
        self._centroid_state[:] = [c_plus, c_minus, d_plus, d_minus]
        return True

    # ------------------------------------------------------------------ #
    # One training step (shared by eager, capture and fallback paths)
    # ------------------------------------------------------------------ #
    def _build_step_losses(self, feat_t: Tensor, lab_t: Tensor,
                           mean_t: Optional[object],
                           sfeat_t: Optional[Tensor],
                           slab_t: Optional[Tensor]) -> _StepLosses:
        """Construct the variant's loss graph for one mini-batch.

        Runs identically with or without an active capture tape, so the
        replayed graph and the eager fallback execute the same ops in the
        same order — the basis of the float64 bit-exactness guarantee.
        """
        config = self.config
        network = self.network
        forward = network.forward(feat_t)
        l_base = base_loss(forward.probabilities, lab_t)
        l_target = None
        if mean_t is not None:
            l_target = target_adaptation_loss(forward.attention, mean_t,
                                              composed=config.legacy_kernels)
        l_support = None
        if sfeat_t is not None:
            support_forward = network.forward(sfeat_t)
            support_attention = support_forward.attention
            state = self._centroid_state
            weights = recomputed_leaf(lambda: support_weights(
                support_attention.data, slab_t.data,
                state[0], state[1], state[2], state[3]))
            l_support = weighted_support_loss(support_forward.probabilities, slab_t, weights)
        loss = combine_losses(l_base=l_base, l_target=l_target, l_support=l_support,
                              adaptation_weight=config.adaptation_weight,
                              support_weight=config.support_weight)
        return _StepLosses(loss=loss, base=l_base, target=l_target, support=l_support)

    def _apply_eager_step(self, losses: _StepLosses, optimizer: Adam) -> None:
        optimizer.zero_grad()
        losses.loss.backward()
        if self.config.grad_clip > 0:
            clip_grad_norm(self.network.parameters(), self.config.grad_clip)
        optimizer.step()

    def _accumulate_sums(self, sums: Dict[str, float], losses: _StepLosses) -> None:
        sums["total"] += float(losses.loss.data)
        sums["base"] += float(losses.base.data)
        sums["target"] += float(losses.target.data) if losses.target is not None else 0.0
        sums["support"] += float(losses.support.data) if losses.support is not None else 0.0

    def _make_support_drawer(self, support_batch: Optional[EncodedBatch],
                             have_support: bool, epoch: int):
        """Return ``(draw_indices, take)`` for per-step support mini-batches."""
        if not have_support:
            return None, 0
        config = self.config
        support_rng = spawn_rng(config.seed * 7919 + epoch)
        take = min(config.batch_size, len(support_batch))
        if config.support_sampling == "walk":
            walk = _SupportWalk(len(support_batch), take, support_rng)
            return walk.next_indices, take
        return (lambda: support_rng.choice(len(support_batch), size=take, replace=False)), take

    # ------------------------------------------------------------------ #
    # Epoch loops
    # ------------------------------------------------------------------ #
    def _train_epoch(self, epoch: int, source_batch: EncodedBatch,
                     target_batch: Optional[EncodedBatch],
                     support_batch: Optional[EncodedBatch], optimizer: Adam) -> Dict[str, float]:
        if self.config.execution in ("auto", "replay"):
            return self._train_epoch_replay(epoch, source_batch, target_batch,
                                            support_batch, optimizer)
        return self._train_epoch_eager(epoch, source_batch, target_batch,
                                       support_batch, optimizer)

    def _train_epoch_eager(self, epoch: int, source_batch: EncodedBatch,
                           target_batch: Optional[EncodedBatch],
                           support_batch: Optional[EncodedBatch],
                           optimizer: Adam) -> Dict[str, float]:
        """Reference engine: rebuild the autograd graph every mini-batch."""
        config = self.config
        network = self.network
        assert network is not None
        dtype = network.V.data.dtype
        profile = config.profile_steps
        step_hist = self._obs_step_hist
        steps_total = self._obs_steps_total
        timing = profile or step_hist is not None

        # Algorithm 1 line 5 / Algorithm 2 line 10, with current parameters.
        target_mean = self._epoch_target_mean(target_batch, use_graph=False)
        have_support = self._epoch_centroids(source_batch, support_batch, use_graph=False)
        draw_support, _ = self._make_support_drawer(support_batch, have_support, epoch)

        sampler = BatchSampler(len(source_batch), config.batch_size, shuffle=True,
                               seed=config.seed * 1000 + epoch)
        sums = {"total": 0.0, "base": 0.0, "target": 0.0, "support": 0.0}
        num_batches = 0
        for indices in sampler:
            started = time.perf_counter() if timing else 0.0
            batch = source_batch.subset(indices)
            feat_t = Tensor(np.asarray(batch.features, dtype=dtype))
            lab_t = Tensor(np.asarray(batch.labels, dtype=dtype))
            sfeat_t = slab_t = None
            if draw_support is not None:
                support_view = support_batch.subset(draw_support())
                sfeat_t = Tensor(np.asarray(support_view.features, dtype=dtype))
                slab_t = Tensor(np.asarray(support_view.labels, dtype=dtype))
            losses = self._build_step_losses(feat_t, lab_t, target_mean, sfeat_t, slab_t)
            self._apply_eager_step(losses, optimizer)
            self._accumulate_sums(sums, losses)
            num_batches += 1
            if timing:
                # One reading feeds both sinks, so the history list and the
                # histogram sum stay bit-identical.
                elapsed = time.perf_counter() - started
                if profile:
                    self._step_seconds.append(elapsed)
                if step_hist is not None:
                    step_hist.observe(elapsed)
                    steps_total.inc()
        if num_batches == 0:
            raise RuntimeError("no training batches were produced; source domain is empty")
        return {key: value / num_batches for key, value in sums.items()}

    def _compile_step(self, features: np.ndarray, labels: np.ndarray,
                      target_mean: Optional[np.ndarray],
                      support_features: Optional[np.ndarray],
                      support_labels: Optional[np.ndarray]) -> _StepLosses:
        """Record the per-step graph on the first full-size mini-batch.

        The capture run *is* the first step's forward pass — callers follow it
        with an eager backward/step, then replay the graph from the second
        full-size batch on.
        """
        network = self.network
        dtype = network.V.data.dtype
        inputs: Dict[str, Tensor] = {}
        tape = Tape()
        with tape:
            # np.array (not asarray): the graph's input buffers must own their
            # memory — a view into the current epoch's permuted arrays would
            # be overwritten by later replays.
            feat_t = Tensor(np.array(features, dtype=dtype))
            lab_t = Tensor(np.array(labels, dtype=dtype))
            inputs["features"] = feat_t
            inputs["labels"] = lab_t
            mean_t: Optional[Tensor] = None
            if target_mean is not None:
                mean_t = Tensor(np.asarray(target_mean, dtype=dtype))
                inputs["target_mean"] = mean_t
            sfeat_t = slab_t = None
            if support_features is not None:
                sfeat_t = Tensor(np.asarray(support_features, dtype=dtype))
                slab_t = Tensor(np.asarray(support_labels, dtype=dtype))
                inputs["support_features"] = sfeat_t
                inputs["support_labels"] = slab_t
            losses = self._build_step_losses(feat_t, lab_t, mean_t, sfeat_t, slab_t)
        size = len(labels)
        self._step_graphs[size] = CompiledGraph(tape, inputs=inputs, loss=losses.loss)
        self._step_losses[size] = losses
        return losses

    def _train_epoch_replay(self, epoch: int, source_batch: EncodedBatch,
                            target_batch: Optional[EncodedBatch],
                            support_batch: Optional[EncodedBatch],
                            optimizer: Adam) -> Dict[str, float]:
        """Fast engine: replay the recorded step graph for full-size batches."""
        config = self.config
        network = self.network
        assert network is not None
        dtype = network.V.data.dtype
        profile = config.profile_steps
        step_hist = self._obs_step_hist
        steps_total = self._obs_steps_total
        timing = profile or step_hist is not None

        target_mean = self._epoch_target_mean(target_batch, use_graph=True)
        have_support = self._epoch_centroids(source_batch, support_batch, use_graph=True)
        draw_support, _ = self._make_support_drawer(support_batch, have_support, epoch)

        sampler = BatchSampler(len(source_batch), config.batch_size, shuffle=True,
                               seed=config.seed * 1000 + epoch)

        # target_mean changes once per epoch, not per step.
        if target_mean is not None:
            for graph in self._step_graphs.values():
                graph.load_inputs({"target_mean": target_mean})

        sums = {"total": 0.0, "base": 0.0, "target": 0.0, "support": 0.0}
        num_batches = 0
        for indices in sampler:
            started = time.perf_counter() if timing else 0.0
            size = len(indices)
            support_indices = draw_support() if draw_support is not None else None

            graph = self._step_graphs.get(size)
            if graph is not None:
                # Gather each mini-batch straight into the recorded input
                # buffers with ``np.take(..., out=...)`` — one copy per
                # input, no intermediate fancy-index arrays.
                feature_buffer = graph.input_array("features")
                if source_batch.features.dtype == feature_buffer.dtype:
                    np.take(source_batch.features, indices, axis=0, out=feature_buffer)
                else:
                    feature_buffer[...] = source_batch.features[indices]
                graph.input_array("labels")[...] = source_batch.labels[indices]
                if support_indices is not None:
                    support_buffer = graph.input_array("support_features")
                    if support_batch.features.dtype == support_buffer.dtype:
                        np.take(support_batch.features, support_indices, axis=0,
                                out=support_buffer)
                    else:
                        support_buffer[...] = support_batch.features[support_indices]
                    graph.input_array("support_labels")[...] = \
                        support_batch.labels[support_indices]
                graph.step()
                if config.grad_clip > 0:
                    clip_grad_norm(network.parameters(), config.grad_clip)
                optimizer.step()
                losses = self._step_losses[size]
            else:
                features = source_batch.features[indices]
                labels = source_batch.labels[indices]
                support_features = support_labels = None
                if support_indices is not None:
                    support_features = support_batch.features[support_indices]
                    support_labels = support_batch.labels[support_indices]
                if len(self._step_graphs) < 8:
                    # First sighting of this batch size: record a graph for it
                    # (the capture run doubles as this step's forward pass).
                    # In practice there are at most two sizes — batch_size and
                    # the recurring final partial batch.
                    losses = self._compile_step(features, labels, target_mean,
                                                support_features, support_labels)
                else:
                    # Pathological shape churn: stay eager rather than caching
                    # ever more graphs.
                    feat_t = Tensor(np.asarray(features, dtype=dtype))
                    lab_t = Tensor(np.asarray(labels, dtype=dtype))
                    sfeat_t = slab_t = None
                    if support_features is not None:
                        sfeat_t = Tensor(np.asarray(support_features, dtype=dtype))
                        slab_t = Tensor(np.asarray(support_labels, dtype=dtype))
                    losses = self._build_step_losses(feat_t, lab_t, target_mean,
                                                     sfeat_t, slab_t)
                self._apply_eager_step(losses, optimizer)

            self._accumulate_sums(sums, losses)
            num_batches += 1
            if timing:
                elapsed = time.perf_counter() - started
                if profile:
                    self._step_seconds.append(elapsed)
                if step_hist is not None:
                    step_hist.observe(elapsed)
                    steps_total.inc()
        if num_batches == 0:
            raise RuntimeError("no training batches were produced; source domain is empty")
        return {key: value / num_batches for key, value in sums.items()}

    def replay_stats(self) -> Optional[Dict[str, int]]:
        """Op counts of the compiled step graph (None before compilation).

        Exposed so the bench harness can gate tape regressions on
        deterministic counters rather than wall-clock alone.
        """
        if not self._step_graphs:
            return None
        graph = self._step_graphs[max(self._step_graphs)]
        return {
            "forward_ops": int(graph.num_forward_ops),
            "backward_ops": int(graph.num_backward_ops),
            "nodes": int(graph.num_nodes),
        }

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def _require_fitted(self) -> None:
        if self.network is None or self.encoder is None:
            raise RuntimeError("the model must be fitted before inference; call fit() first")

    def predict_proba(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Matching probability for every pair."""
        self._require_fitted()
        if len(pairs) == 0:
            return np.zeros(0)
        batch = self.encoder.encode(pairs)
        return self.network.predict_proba(batch.features)

    def predict(self, pairs: Sequence[EntityPair], threshold: float = 0.5) -> np.ndarray:
        """Hard 0/1 predictions at the given probability threshold."""
        return (self.predict_proba(pairs) >= threshold).astype(np.int64)

    def attention_scores(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Attention score vectors ``f(x)`` (shape ``(N, F)``) for ``pairs``."""
        self._require_fitted()
        if len(pairs) == 0:
            return np.zeros((0, self.encoder.num_features))
        batch = self.encoder.encode(pairs)
        return self.network.attention_numpy(batch.features)

    def feature_importance(self, pairs: Sequence[EntityPair]) -> ImportanceReport:
        """Learned feature importance averaged over ``pairs`` (Table 4)."""
        scores = self.attention_scores(pairs)
        return aggregate_importance(scores, self.encoder.feature_names)

    def evaluate(self, pairs: Sequence[EntityPair], threshold: float = 0.5) -> ClassificationReport:
        """Score labeled pairs and return the full metric bundle."""
        labeled = [pair for pair in pairs if pair.is_labeled]
        if not labeled:
            raise ValueError("evaluate() requires labeled pairs")
        scores = self.predict_proba(labeled)
        labels = np.array([pair.label for pair in labeled], dtype=np.int64)
        return classification_report(labels, scores, threshold=threshold)

    def num_parameters(self) -> int:
        """Number of learnable parameters (paper Section 4.5 / Section 5.5)."""
        self._require_fitted()
        return self.network.num_parameters()
