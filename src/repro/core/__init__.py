"""Core AdaMEL implementation: network, losses, trainers, variants."""

from .config import AdaMELConfig
from .losses import (
    attention_centroids,
    base_loss,
    centroid_mean_distances,
    combine_losses,
    support_loss,
    target_adaptation_loss,
)
from .model import AdaMELForward, AdaMELNetwork
from .trainer import AdaMELTrainer, TrainingHistory
from .variants import VARIANTS, AdaMELBase, AdaMELFew, AdaMELHybrid, AdaMELZero, create_variant

__all__ = [
    "AdaMELConfig",
    "AdaMELNetwork",
    "AdaMELForward",
    "AdaMELTrainer",
    "TrainingHistory",
    "AdaMELBase",
    "AdaMELZero",
    "AdaMELFew",
    "AdaMELHybrid",
    "VARIANTS",
    "create_variant",
    "base_loss",
    "target_adaptation_loss",
    "support_loss",
    "attention_centroids",
    "centroid_mean_distances",
    "combine_losses",
]
