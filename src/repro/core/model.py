"""The AdaMEL network (Section 4.2-4.3 of the paper).

Architecture, for a pair encoded as ``F`` token-embedding features ``h_j`` of
dimension ``D``:

1. **Per-feature affine transformation** (Eq. 4):
   ``x_j = ReLU(V_j h_j + b_j)`` with a separate ``V_j (H×D)``, ``b_j (H)``
   for every feature.
2. **Attention embedding function** ``f`` (Eq. 5/6): shared ``W (H'×H)`` and
   ``a (H')``; ``f(x)_j = softmax_j(a^T tanh(W x_j))``.  The vector ``f(x)``
   is the transferable knowledge K — the learned feature importance.
3. **Classifier** Θ (Eq. 7): a 2-layer MLP over the concatenation of the
   attention-scaled features ``σ(f(x)_j · x_j)``, ending in a sigmoid that
   yields the matching probability ``ŷ``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..nn import functional as F
from ..nn.dtypes import get_default_dtype
from ..nn.attention import AdditiveAttention
from ..nn.layers import MLP
from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor
from .config import AdaMELConfig

__all__ = ["AdaMELNetwork", "AdaMELForward"]


@dataclass
class AdaMELForward:
    """Outputs of one forward pass."""

    probabilities: Tensor  # (N,) matching probability ŷ
    attention: Tensor  # (N, F) attention scores f(x) — the knowledge K
    latent: Tensor  # (N, F, H) latent feature vectors x


class AdaMELNetwork(Module):
    """AdaMEL's neural network: per-feature affine + shared attention + MLP."""

    def __init__(self, num_features: int, embedding_dim: int, config: Optional[AdaMELConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if embedding_dim <= 0:
            raise ValueError(f"embedding_dim must be positive, got {embedding_dim}")
        config = config or AdaMELConfig()
        rng = rng if rng is not None else np.random.default_rng(config.seed)
        self.num_features = num_features
        self.embedding_dim = embedding_dim
        self.hidden_dim = config.hidden_dim
        self.attention_dim = config.attention_dim
        self.legacy_kernels = config.legacy_kernels

        # Per-feature affine transformation (Eq. 4): V (F, D, H), b (F, H).
        # Cast to the active compute-dtype policy (float32 training runs).
        dtype = get_default_dtype()
        scale = np.sqrt(2.0 / (embedding_dim + config.hidden_dim))
        self.V = Parameter(rng.normal(0.0, scale, size=(num_features, embedding_dim,
                                                        config.hidden_dim)).astype(dtype, copy=False),
                           name="V")
        self.b = Parameter(np.zeros((num_features, config.hidden_dim), dtype=dtype), name="b")

        # Shared attention embedding function f (Eq. 5/6).
        self.attention_fn = AdditiveAttention(config.hidden_dim, config.attention_dim, rng=rng)

        # Classifier Θ (Eq. 7): 2-layer feed-forward network over F·H inputs.
        self.classifier = MLP(num_features * config.hidden_dim,
                              [config.classifier_hidden_dim], 1,
                              activation="relu", dropout=config.dropout, rng=rng)

    # ------------------------------------------------------------------ #
    def latent_features(self, features: "np.ndarray | Tensor") -> Tensor:
        """Eq. (4): per-feature non-linear affine transformation.

        Parameters
        ----------
        features:
            Array of shape ``(N, F, D)`` — the token-embedding features ``h``.
            A pre-built :class:`Tensor` passes through unchanged (the
            graph-replay trainer feeds a reusable input-leaf tensor here).

        Returns
        -------
        Tensor of shape ``(N, F, H)``.
        """
        if isinstance(features, Tensor):
            h = features
        else:
            # Cast to the parameters' dtype so float32 networks keep
            # computing in float32 at inference time as well.
            h = Tensor(np.asarray(features, dtype=self.V.data.dtype))
        if h.ndim != 3 or h.shape[1] != self.num_features:
            raise ValueError(
                f"expected features of shape (N, {self.num_features}, {self.embedding_dim}), "
                f"got {h.shape}"
            )
        # (F, N, D) @ (F, D, H) -> (F, N, H): one GEMM per feature.  The
        # broadcast form (N, F, 1, D) @ (F, D, H) computes the same per-pair
        # dot products but as N*F single-row matmuls, and its backward
        # materialises an (N, F, D, H) temporary that is then summed over N.
        # ``contiguous()`` collapses the transposed view once so every
        # downstream elementwise op and flattening reshape (attention, the
        # classifier input) runs on contiguous memory.
        projected = (h.transpose(1, 0, 2) @ self.V).transpose(1, 0, 2)
        if not self.legacy_kernels:
            projected = projected.contiguous()
        projected = projected + self.b
        return F.relu(projected)

    def attention_scores(self, latent: Tensor) -> Tensor:
        """Eq. (5)/(6): softmax-normalised attention over the F features."""
        if self.legacy_kernels:
            return F.softmax(self.attention_fn.energies(latent), axis=-1)
        return self.attention_fn(latent)

    def classify(self, latent: Tensor, attention: Tensor) -> Tensor:
        """Eq. (7): MLP over the attention-scaled latent features.

        The output layer runs as one fused ``linear+sigmoid`` node
        (:meth:`repro.nn.layers.MLP.forward_sigmoid`).
        """
        scaled = F.relu(attention.unsqueeze(-1) * latent)
        flattened = scaled.reshape(scaled.shape[0], self.num_features * self.hidden_dim)
        if self.legacy_kernels:
            return F.sigmoid(self.classifier(flattened).squeeze(-1))
        return self.classifier.forward_sigmoid(flattened).squeeze(-1)

    def forward(self, features: "np.ndarray | Tensor") -> AdaMELForward:
        """Full forward pass from encoded features to matching probabilities."""
        latent = self.latent_features(features)
        attention = self.attention_scores(latent)
        probabilities = self.classify(latent, attention)
        return AdaMELForward(probabilities=probabilities, attention=attention, latent=latent)

    # ------------------------------------------------------------------ #
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Inference-only matching probabilities (no autograd graph)."""
        with nn.no_grad():
            return self.forward(features).probabilities.data.copy()

    def attention_numpy(self, features: np.ndarray) -> np.ndarray:
        """Inference-only attention scores ``f(x)`` as a numpy array (N, F)."""
        with nn.no_grad():
            latent = self.latent_features(features)
            return self.attention_scores(latent).data.copy()

    def parameter_breakdown(self) -> dict:
        """Learnable-parameter counts per component (paper Section 4.5)."""
        affine = self.V.size + self.b.size
        attention = self.attention_fn.W.size + self.attention_fn.a.size
        classifier = sum(p.size for p in self.classifier.parameters())
        return {
            "per_feature_affine": int(affine),
            "attention_embedding": int(attention),
            "classifier": int(classifier),
            "total": int(affine + attention + classifier),
        }
