"""AdaMEL training objectives (Equations 8-14 of the paper).

* :func:`base_loss` — ``L_base``: binary cross-entropy over labeled source
  pairs (Eq. 8).
* :func:`target_adaptation_loss` — ``L_target``: KL divergence between the
  attention distribution averaged over the (unlabeled) target domain and each
  source pair's attention distribution (Eq. 10).
* :func:`attention_centroids` / :func:`centroid_mean_distances` — the
  positive/negative attention centroids of the source domain and the mean
  distances to them (Eq. 11).
* :func:`support_loss` — ``L_support``: cross-entropy over the support set
  weighted by each pair's attention-space distance to the corresponding
  source-domain centroid, normalised by the mean distance (Eq. 12); pairs
  that deviate from the seen sources get larger weights.
* :func:`combine_losses` — the λ/φ compositions of Eq. 9, 13, 14.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..nn.dtypes import get_default_dtype
from ..nn.losses import binary_cross_entropy, kl_divergence
from ..nn.tensor import Tensor, as_tensor

__all__ = [
    "base_loss",
    "target_adaptation_loss",
    "attention_centroids",
    "centroid_mean_distances",
    "support_weights",
    "support_loss",
    "weighted_support_loss",
    "combine_losses",
]

_EPS = 1e-9


def _as_target_tensor(values: object) -> Tensor:
    """Coerce labels/constants to a float tensor (pass-through for tensors).

    The graph-replay trainer hands pre-built input-leaf tensors to the loss
    functions so their buffers can be refreshed per step; plain arrays keep
    the historical behaviour of being wrapped per call.
    """
    if isinstance(values, Tensor):
        return values
    return Tensor(np.asarray(values, dtype=get_default_dtype()))


def base_loss(probabilities: Tensor, labels: object) -> Tensor:
    """``L_base`` (Eq. 8): mean binary cross-entropy on labeled pairs."""
    return binary_cross_entropy(probabilities, _as_target_tensor(labels))


def _composed_kl(p: Tensor, q: Tensor) -> Tensor:
    """KL(p‖q) from elementary ops — the pre-fused composition.

    Kept (behind ``AdaMELConfig.legacy_kernels``) as the reference point the
    ``train_epoch`` benchmark stage measures the fused/replay engines against.
    """
    p_safe = p.clip(_EPS, 1.0)
    q_safe = q.clip(_EPS, 1.0)
    divergence = (p_safe * (p_safe.log() - q_safe.log())).sum(axis=-1)
    return divergence.mean() if divergence.ndim > 0 else divergence


def target_adaptation_loss(source_attention: Tensor, target_attention_mean: object,
                           composed: bool = False) -> Tensor:
    """``L_target`` (Eq. 10): KL(mean target attention || per-pair source attention).

    Parameters
    ----------
    source_attention:
        Attention scores of the source-domain batch, shape ``(N, F)``
        (graph-connected so that gradients update ``W``, ``a``, ``V``, ``b``).
    target_attention_mean:
        The attention vector averaged over the (batched) unlabeled target
        domain, shape ``(F,)``.  Treated as a constant for the current step,
        mirroring Algorithm 1 where it is computed before the batch loop.
        May be a pre-built input-leaf :class:`Tensor` (graph-replay trainer).
    """
    mean_target = _as_target_tensor(target_attention_mean)
    if mean_target.ndim != 1:
        raise ValueError("target_attention_mean must be a 1-D vector of length F")
    if composed:
        return _composed_kl(mean_target, source_attention)
    return kl_divergence(mean_target, source_attention, axis=-1)


def attention_centroids(attention: np.ndarray, labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Eq. (11): centroids of positive / negative attention vectors in ``D_S``.

    Returns ``(c_plus, c_minus)``; when a class is absent its centroid falls
    back to the overall mean so that downstream distances remain defined.
    """
    attention = np.asarray(attention, dtype=np.float64)
    labels = np.asarray(labels)
    if attention.ndim != 2:
        raise ValueError("attention must have shape (N, F)")
    if attention.shape[0] != labels.shape[0]:
        raise ValueError("attention and labels must agree on N")
    overall = attention.mean(axis=0) if len(attention) else np.zeros(attention.shape[1])
    positive = attention[labels == 1]
    negative = attention[labels == 0]
    c_plus = positive.mean(axis=0) if len(positive) else overall
    c_minus = negative.mean(axis=0) if len(negative) else overall
    return c_plus, c_minus


def centroid_mean_distances(attention: np.ndarray, labels: np.ndarray,
                            c_plus: np.ndarray, c_minus: np.ndarray) -> Tuple[float, float]:
    """Mean Euclidean distance of source pairs to their class centroid (Eq. 12 denominators)."""
    attention = np.asarray(attention, dtype=np.float64)
    labels = np.asarray(labels)
    positive = attention[labels == 1]
    negative = attention[labels == 0]
    d_plus = float(np.linalg.norm(positive - c_plus, axis=1).mean()) if len(positive) else 1.0
    d_minus = float(np.linalg.norm(negative - c_minus, axis=1).mean()) if len(negative) else 1.0
    return max(d_plus, _EPS), max(d_minus, _EPS)


def support_weights(attention: np.ndarray, labels: np.ndarray,
                    c_plus: np.ndarray, c_minus: np.ndarray,
                    mean_distance_plus: float, mean_distance_minus: float) -> np.ndarray:
    """Per-pair weights of ``L_support`` (Eq. 12), normalised to mean 1.

    Pure numpy on detached attention scores — factored out so the eager loss
    and the graph-replay trainer (which refreshes the weights through a
    ``recomputed_leaf`` on every replay) share one code path.
    """
    labels = np.asarray(labels)
    attention = np.asarray(attention)
    # Follow the attention dtype so a float32 training run stays float32.
    weights = np.empty(len(labels), dtype=attention.dtype
                       if attention.dtype in (np.float32, np.float64) else np.float64)
    positive_mask = labels == 1
    negative_mask = ~positive_mask
    weights[positive_mask] = (np.linalg.norm(attention[positive_mask] - c_plus, axis=1)
                              / max(mean_distance_plus, _EPS))
    weights[negative_mask] = (np.linalg.norm(attention[negative_mask] - c_minus, axis=1)
                              / max(mean_distance_minus, _EPS))
    # Normalise to mean 1: the relative emphasis on deviating pairs is kept,
    # but the loss scale stays comparable to a plain cross-entropy even when
    # domain adaptation shrinks the source-domain attention spread (which
    # would otherwise make the d/d̄ ratios explode).
    return weights / max(float(weights.mean()), _EPS)


def weighted_support_loss(probabilities: Tensor, labels: object, weights: object) -> Tensor:
    """The differentiable part of ``L_support``: weighted cross-entropy.

    ``labels`` and ``weights`` may be plain arrays or pre-built tensors (the
    graph-replay trainer passes an input leaf and a recomputed-leaf weight
    tensor respectively).
    """
    clipped = probabilities.clip(_EPS, 1.0 - _EPS)
    targets = _as_target_tensor(labels)
    weight_t = _as_target_tensor(weights)
    per_sample = -(targets * clipped.log() + (1.0 - targets) * (1.0 - clipped).log())
    return (per_sample * weight_t).mean()


def support_loss(probabilities: Tensor, attention: Tensor, labels: np.ndarray,
                 c_plus: np.ndarray, c_minus: np.ndarray,
                 mean_distance_plus: float, mean_distance_minus: float) -> Tensor:
    """``L_support`` (Eq. 12): centroid-distance-weighted cross-entropy.

    Support pairs whose attention vector deviates from the corresponding
    source-domain centroid — i.e. pairs that look unlike anything seen in
    ``D_S`` — receive proportionally larger weights, steering the attention
    function towards the new data sources.
    """
    labels = np.asarray(labels, dtype=np.float64)
    if probabilities.shape[0] != labels.shape[0]:
        raise ValueError("probabilities and labels must agree on N")
    weights = support_weights(attention.data, labels, c_plus, c_minus,
                              mean_distance_plus, mean_distance_minus)
    return weighted_support_loss(probabilities, labels, weights)


def combine_losses(l_base: Optional[Tensor] = None, l_target: Optional[Tensor] = None,
                   l_support: Optional[Tensor] = None, adaptation_weight: float = 0.98,
                   support_weight: float = 1.0) -> Tensor:
    """Combine the component losses into the variant objectives.

    * base only                → ``L_base`` (AdaMEL-base)
    * base + target            → Eq. (9)   (AdaMEL-zero)
    * base + support           → Eq. (13)  (AdaMEL-few)
    * base + target + support  → Eq. (14)  (AdaMEL-hyb)
    """
    if l_base is None:
        raise ValueError("l_base is required")
    if l_target is not None:
        total = l_base * (1.0 - adaptation_weight) + l_target * adaptation_weight
    else:
        total = l_base
    if l_support is not None:
        total = total + l_support * support_weight
    return total
