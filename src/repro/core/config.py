"""Configuration of the AdaMEL model and its training loop.

Default hyperparameters follow Section 5.1 of the paper (per-feature latent
dimension ``H=64``, attention hidden dimension ``H'=256``, classifier hidden
dimension ``256``, Adam, batch size 16, λ=0.98, φ=1.0), but are scaled down by
default so the CPU-only experiments complete in seconds; every experiment can
pass a custom config to restore the paper's sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from ..utils.validation import require_fraction, require_positive

__all__ = ["AdaMELConfig"]


@dataclass(frozen=True)
class AdaMELConfig:
    """Hyperparameters of AdaMEL and its trainer.

    Attributes
    ----------
    embedding_dim:
        Dimension ``D`` of the fixed token embeddings (paper: 300 FastText).
    hidden_dim:
        Dimension ``H`` of the per-feature latent vectors ``x_j`` (paper: 64).
    attention_dim:
        Hidden dimension ``H'`` of the attention embedding function ``f``
        (paper: 256).
    classifier_hidden_dim:
        Hidden dimension of the 2-layer MLP classifier Θ (paper: 256).
    learning_rate, epochs, batch_size:
        Optimisation settings (paper: Adam, 1e-4, 100 epochs, batch 16).
    adaptation_weight:
        λ in Eq. (9)/(14) — weight of the unsupervised domain-adaptation loss.
    support_weight:
        φ in Eq. (13)/(14) — weight of the support-set loss.
    feature_kinds:
        Which contrastive relational features to use (Table 6 ablation).
    crop_size:
        Maximum tokens per attribute value (paper: 20).
    grad_clip:
        Global gradient-norm clip (0 disables clipping).
    seed:
        Seed controlling weight init and batch shuffling.
    execution:
        Autograd execution mode for training: ``"auto"`` (default) records
        the per-step graph once and replays it (falling back to the eager
        engine for odd-shaped batches), ``"replay"`` forces the same,
        ``"eager"`` rebuilds the graph every step (the historical behaviour;
        float64 replay is bit-exact with it).  See ``docs/autograd.md``.
    dtype:
        Compute dtype for training: ``"float64"`` (default, exact) or
        ``"float32"`` (≈2× less memory bandwidth, small accuracy drift).
    support_sampling:
        How support mini-batches are drawn per step: ``"choice"`` (default,
        seed-exact historical behaviour — a ``choice(..., replace=False)``
        per step) or ``"walk"`` (one permutation per epoch, consumed in
        contiguous windows; same uniform-without-replacement distribution
        class, far fewer RNG draws).
    profile_steps:
        Record per-step wall-clock into ``TrainingHistory.step_seconds``
        (used by the ``train_epoch`` bench stage).
    """

    embedding_dim: int = 48
    hidden_dim: int = 32
    attention_dim: int = 64
    classifier_hidden_dim: int = 64
    learning_rate: float = 5e-3
    epochs: int = 30
    batch_size: int = 16
    adaptation_weight: float = 0.98
    support_weight: float = 1.0
    feature_kinds: Tuple[str, ...] = ("shared", "unique")
    crop_size: int = 20
    grad_clip: float = 5.0
    dropout: float = 0.0
    seed: int = 0
    verbose: bool = False
    execution: str = "auto"
    dtype: str = "float64"
    support_sampling: str = "choice"
    profile_steps: bool = False
    # Reference mode for benchmarking: compose attention/classifier from
    # elementary ops (softmax(energies), sigmoid(mlp(x))) instead of the
    # fused kernels — the kernel composition the engine had before the
    # graph-replay work.  Numerically equivalent, slower; never needed
    # outside perf comparisons.
    legacy_kernels: bool = False

    def __post_init__(self) -> None:
        require_positive(self.embedding_dim, "embedding_dim")
        require_positive(self.hidden_dim, "hidden_dim")
        require_positive(self.attention_dim, "attention_dim")
        require_positive(self.classifier_hidden_dim, "classifier_hidden_dim")
        require_positive(self.learning_rate, "learning_rate")
        require_positive(self.epochs, "epochs")
        require_positive(self.batch_size, "batch_size")
        require_positive(self.crop_size, "crop_size")
        require_fraction(self.adaptation_weight, "adaptation_weight")
        if self.support_weight < 0:
            raise ValueError(f"support_weight must be >= 0, got {self.support_weight}")
        if not self.feature_kinds:
            raise ValueError("feature_kinds must not be empty")
        invalid = [k for k in self.feature_kinds if k not in ("shared", "unique")]
        if invalid:
            raise ValueError(f"invalid feature kinds: {invalid}")
        if self.dropout < 0 or self.dropout >= 1:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")
        if self.execution not in ("auto", "replay", "eager"):
            raise ValueError(
                f"execution must be 'auto', 'replay' or 'eager', got {self.execution!r}")
        if self.dtype not in ("float32", "float64"):
            raise ValueError(f"dtype must be 'float32' or 'float64', got {self.dtype!r}")
        if self.support_sampling not in ("choice", "walk"):
            raise ValueError(
                f"support_sampling must be 'choice' or 'walk', got {self.support_sampling!r}")

    def with_updates(self, **changes: object) -> "AdaMELConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    @classmethod
    def paper_scale(cls) -> "AdaMELConfig":
        """The configuration reported in the paper (slower; for full runs)."""
        return cls(embedding_dim=300, hidden_dim=64, attention_dim=256,
                   classifier_hidden_dim=256, learning_rate=1e-4, epochs=100,
                   batch_size=16)
