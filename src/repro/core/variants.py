"""The four AdaMEL variants (Section 4.4 of the paper).

* :class:`AdaMELBase` — supervised training on the labeled source domain only
  (Eq. 8); the attribute importance is *not* adapted to the target domain.
* :class:`AdaMELZero` — unsupervised domain adaptation (Algorithm 1): the KL
  divergence between the averaged target-domain attention distribution and
  each source pair's attention distribution regularises training (Eq. 9/10);
  no target labels are used (zero-shot).
* :class:`AdaMELFew` — semi-supervised adaptation via a small labeled support
  set (Algorithm 2, Eq. 12/13).
* :class:`AdaMELHybrid` — both the unlabeled target domain and the labeled
  support set (Algorithm 3, Eq. 14); the best-performing variant in the paper.
"""

from __future__ import annotations

from typing import Optional

from ..text.embeddings import TokenEmbedder
from .config import AdaMELConfig
from .trainer import AdaMELTrainer

__all__ = ["AdaMELBase", "AdaMELZero", "AdaMELFew", "AdaMELHybrid", "VARIANTS", "create_variant"]


class AdaMELBase(AdaMELTrainer):
    """AdaMEL-base: supervised learning on ``D_S`` only (no adaptation)."""

    variant = "adamel-base"
    uses_target = False
    uses_support = False


class AdaMELZero(AdaMELTrainer):
    """AdaMEL-zero: unsupervised domain adaptation on the unlabeled ``D_T``."""

    variant = "adamel-zero"
    uses_target = True
    uses_support = False


class AdaMELFew(AdaMELTrainer):
    """AdaMEL-few: semi-supervised adaptation via the labeled support set."""

    variant = "adamel-few"
    uses_target = False
    uses_support = True


class AdaMELHybrid(AdaMELTrainer):
    """AdaMEL-hyb: joint adaptation on ``D_T`` and supervision from ``S_U``."""

    variant = "adamel-hyb"
    uses_target = True
    uses_support = True


VARIANTS = {
    "base": AdaMELBase,
    "zero": AdaMELZero,
    "few": AdaMELFew,
    "hyb": AdaMELHybrid,
    "hybrid": AdaMELHybrid,
}


def create_variant(name: str, config: Optional[AdaMELConfig] = None,
                   embedder: Optional[TokenEmbedder] = None) -> AdaMELTrainer:
    """Instantiate an AdaMEL variant by short name (``base``/``zero``/``few``/``hyb``)."""
    key = name.lower().replace("adamel-", "")
    if key not in VARIANTS:
        raise KeyError(f"unknown AdaMEL variant {name!r}; available: {sorted(set(VARIANTS))}")
    return VARIANTS[key](config=config, embedder=embedder)
