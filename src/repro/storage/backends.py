"""SQLite-backed posting lists: the cold-shard bucket store.

The three blocking indexes of :class:`~repro.serve.EntityStore` delegate
bucket membership to a pluggable store
(:class:`~repro.pipeline.index.MemoryBucketStore` by default).
:class:`SQLiteIndexBackend` supplies the same interface on top of one
SQLite database — on disk, bucket state pages instead of living in RAM —
selected with ``StoreConfig(backend="sqlite")``.

Semantics are bit-identical to the in-memory store, cap-for-cap:

* a bucket grows to at most ``cap + 1`` rows — the extra row marks the
  overflow while bounding storage (enforced *in* the INSERT, a single
  guarded statement);
* probes see only live buckets (``size <= cap``);
* pair emission yields each live bucket's member combinations with the
  earlier-inserted member first.

The per-key scans batch ingestion would do in Python are single SQL
passes here: bucket-probe and pair-emission annotate every posting row
with its bucket size via a window function (``COUNT(*) OVER (PARTITION BY
key)``) and filter on it, so overflow semantics are evaluated inside the
database — the traversal-structure-in-SQL encoding the DMR-XPath line of
work demonstrates.

Layout: one ``postings`` table shared by all indexes of a store
(``index_id`` discriminates), rows in ``rowid`` order = insertion order,
keys JSON-encoded (injective across the ``str`` and ``(band, value)``
key types the indexes use).

Durability note: the WAL + snapshots of :mod:`repro.storage.engine` are
the source of truth; this database is the paging layer for bucket state.
A fresh backend therefore *clears* its tables (a new ``EntityStore`` is
empty by definition) and recovery refills it through
``load_state_dict``/replay.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from itertools import islice
from pathlib import Path
from typing import (Dict, Hashable, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple, Union)

__all__ = ["SQLiteIndexBackend", "SQLiteBucketStore"]

_PROBE_CHUNK = 400  # stay far below SQLite's bound-parameter limit


def _encode_key(key: Hashable) -> str:
    """Injective text encoding of a bucket key (str or flat tuple)."""
    if isinstance(key, tuple):
        key = list(key)
    return json.dumps(key, separators=(",", ":"), sort_keys=True)


def _decode_key(text: str) -> Hashable:
    value = json.loads(text)
    return tuple(value) if isinstance(value, list) else value


class SQLiteIndexBackend:
    """One SQLite database hosting the bucket stores of a store's indexes.

    ``path=None`` keeps the database in memory (same SQL path, no file) —
    useful for parity tests; a real path puts bucket state on disk.

    All statements run behind one lock: callers (the entity store) already
    serialize writers, but queries may probe from other threads.
    """

    def __init__(self, path: Union[str, Path, None] = None) -> None:
        self.path = Path(path) if path is not None else None
        target = str(self.path) if self.path is not None else ":memory:"
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(target, check_same_thread=False,
                                     isolation_level=None)
        self._stores: List["SQLiteBucketStore"] = []
        with self._lock:
            if self.path is not None:
                # Crash safety comes from the engine's WAL; the backend only
                # needs internal consistency, which SQLite's own WAL gives
                # cheaply.
                self._conn.execute("PRAGMA journal_mode=WAL")
                self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS postings ("
                " index_id INTEGER NOT NULL,"
                " key TEXT NOT NULL,"
                " position INTEGER NOT NULL)")
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS postings_by_key"
                " ON postings(index_id, key)")
            # The engine's snapshots/WAL own durability; a fresh backend
            # starts empty and is refilled by load_state_dict/replay.
            self._conn.execute("DELETE FROM postings")

    def bucket_store(self) -> "SQLiteBucketStore":
        """A new bucket store on the next free ``index_id``."""
        store = SQLiteBucketStore(self, len(self._stores))
        self._stores.append(store)
        return store

    def bucket_stores(self, count: int) -> List["SQLiteBucketStore"]:
        return [self.bucket_store() for _ in range(count)]

    def execute(self, sql: str, params: Sequence[object] = ()) -> sqlite3.Cursor:
        with self._lock:
            return self._conn.execute(sql, params)

    def executemany(self, sql: str, rows: Iterable[Sequence[object]]) -> None:
        with self._lock:
            self._conn.execute("BEGIN")
            try:
                self._conn.executemany(sql, rows)
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")

    def close(self) -> None:
        with self._lock:
            self._conn.close()


class SQLiteBucketStore:
    """The :class:`~repro.pipeline.index.MemoryBucketStore` interface over
    one ``index_id`` partition of a :class:`SQLiteIndexBackend`."""

    def __init__(self, backend: SQLiteIndexBackend, index_id: int) -> None:
        self._backend = backend
        self._index_id = index_id

    # ------------------------------------------------------------------ #
    # Bucket-store interface
    # ------------------------------------------------------------------ #
    def members(self, key: Hashable) -> List[int]:
        rows = self._backend.execute(
            "SELECT position FROM postings WHERE index_id = ? AND key = ?"
            " ORDER BY rowid",
            (self._index_id, _encode_key(key))).fetchall()
        return [row[0] for row in rows]

    def add(self, key: Hashable, position: int, cap: int) -> None:
        # Guarded append in one statement: grow while size <= cap, so the
        # bucket holds at most cap + 1 rows (the overflow marker) — the
        # exact bound MemoryBucketStore.add enforces.
        encoded = _encode_key(key)
        self._backend.execute(
            "INSERT INTO postings(index_id, key, position)"
            " SELECT ?, ?, ?"
            " WHERE (SELECT COUNT(*) FROM postings"
            "        WHERE index_id = ? AND key = ?) <= ?",
            (self._index_id, encoded, position, self._index_id, encoded, cap))

    def probe(self, keys: Iterable[Hashable], cap: int) -> Set[int]:
        positions: Set[int] = set()
        encoded = [_encode_key(key) for key in keys]
        iterator = iter(encoded)
        while True:
            chunk = list(islice(iterator, _PROBE_CHUNK))
            if not chunk:
                break
            placeholders = ",".join("?" for _ in chunk)
            rows = self._backend.execute(
                "WITH sized AS ("
                " SELECT position, COUNT(*) OVER (PARTITION BY key)"
                "        AS bucket_size"
                " FROM postings"
                f" WHERE index_id = ? AND key IN ({placeholders}))"
                " SELECT DISTINCT position FROM sized WHERE bucket_size <= ?",
                [self._index_id, *chunk, cap]).fetchall()
            positions.update(row[0] for row in rows)
        return positions

    def emit_pairs(self, cap: int) -> Iterator[Tuple[int, int]]:
        # Within a bucket rows arrive in position order (a record joins a
        # bucket at registration, positions only grow), so rowid order gives
        # (earlier, later) = (smaller, larger) position pairs, matching
        # itertools.combinations over an in-memory bucket.
        rows = self._backend.execute(
            "WITH sized AS ("
            " SELECT rowid AS rid, key, position,"
            "        COUNT(*) OVER (PARTITION BY key) AS bucket_size"
            " FROM postings WHERE index_id = ?)"
            " SELECT a.position, b.position"
            " FROM sized a JOIN sized b ON a.key = b.key AND a.rid < b.rid"
            " WHERE a.bucket_size BETWEEN 2 AND ?",
            (self._index_id, cap)).fetchall()
        return iter([(row[0], row[1]) for row in rows])

    def sizes(self) -> Dict[Hashable, int]:
        rows = self._backend.execute(
            "SELECT key, COUNT(*) FROM postings WHERE index_id = ?"
            " GROUP BY key", (self._index_id,)).fetchall()
        return {_decode_key(key): count for key, count in rows}

    def overflowed(self, cap: int) -> int:
        row = self._backend.execute(
            "SELECT COUNT(*) FROM (SELECT key FROM postings"
            " WHERE index_id = ? GROUP BY key HAVING COUNT(*) > ?)",
            (self._index_id, cap)).fetchone()
        return int(row[0])

    def entries(self) -> Iterator[Tuple[Hashable, List[int]]]:
        # rowid order means each key's first occurrence follows bucket
        # creation order and members stay in insertion order — the same
        # iteration order MemoryBucketStore (an insertion-ordered dict)
        # produces.
        rows = self._backend.execute(
            "SELECT key, position FROM postings WHERE index_id = ?"
            " ORDER BY rowid", (self._index_id,)).fetchall()
        buckets: Dict[str, List[int]] = {}
        for key, position in rows:
            buckets.setdefault(key, []).append(position)
        return iter([(_decode_key(key), members)
                     for key, members in buckets.items()])

    def load(self, entries: Iterable[Tuple[Hashable, Sequence[int]]]) -> None:
        self._backend.execute("DELETE FROM postings WHERE index_id = ?",
                              (self._index_id,))
        self._backend.executemany(
            "INSERT INTO postings(index_id, key, position) VALUES (?, ?, ?)",
            ((self._index_id, _encode_key(key), int(position))
             for key, members in entries for position in members))

    def __len__(self) -> int:
        row = self._backend.execute(
            "SELECT COUNT(DISTINCT key) FROM postings WHERE index_id = ?",
            (self._index_id,)).fetchone()
        return int(row[0])
