"""Injected crash points for property-testing durability.

The storage engine calls :func:`maybe_crash` at every point where a real
process could die between a WAL append and the corresponding in-memory
commit (or between a snapshot write and its rename).  In production the
calls are no-ops; a test harness arms one point through environment
variables, runs the workload in a subprocess, and the process dies with
``os._exit`` — no ``atexit`` hooks, no flushing, no unwinding — exactly
like a power cut at that instruction.

Environment contract (read per call, so a parent can arm a child through
``subprocess`` env):

* ``REPRO_STORAGE_CRASH_POINT`` — the crash-point name to die at;
* ``REPRO_STORAGE_CRASH_HITS`` — die on the N-th hit of that point
  (default 1), so a harness can survive the first k upserts and kill
  the (k+1)-th.

The process exits with :data:`CRASH_EXIT_CODE` so the harness can tell an
injected crash from an ordinary failure.
"""

from __future__ import annotations

import os

__all__ = ["CRASH_POINTS", "CRASH_EXIT_CODE", "CRASH_POINT_ENV",
           "CRASH_HITS_ENV", "armed", "maybe_crash", "reset_hits"]

#: Every point the engine injects, in upsert/snapshot order.
CRASH_POINTS = (
    "before_wal_append",      # upsert planned+scored, nothing durable yet
    "mid_wal_append",         # entry header written, payload missing (torn tail)
    "after_wal_append",       # entry durable, in-memory indexes NOT updated
    "after_commit",           # entry durable and applied
    "before_snapshot_rename", # snapshot temp file written, not yet visible
    "after_snapshot_rename",  # snapshot visible, WAL segments NOT yet pruned
)

#: Exit status of an injected crash (distinct from any pytest/python code).
CRASH_EXIT_CODE = 86

CRASH_POINT_ENV = "REPRO_STORAGE_CRASH_POINT"
CRASH_HITS_ENV = "REPRO_STORAGE_CRASH_HITS"

_hits: dict = {}


def reset_hits() -> None:
    """Forget hit counts (tests that arm points in-process between runs)."""
    _hits.clear()


def armed(point: str) -> bool:
    """Whether ``point`` is the armed crash point of this process."""
    return os.environ.get(CRASH_POINT_ENV) == point


def maybe_crash(point: str) -> None:
    """Die with ``os._exit(CRASH_EXIT_CODE)`` if ``point`` is armed and its
    hit count has been reached; otherwise do nothing."""
    if point not in CRASH_POINTS:
        raise ValueError(f"unknown crash point {point!r} "
                         f"(known: {', '.join(CRASH_POINTS)})")
    if not armed(point):
        return
    _hits[point] = _hits.get(point, 0) + 1
    target = int(os.environ.get(CRASH_HITS_ENV, "1"))
    if _hits[point] >= target:
        os._exit(CRASH_EXIT_CODE)
