"""Storage crash points — a thin shim over :mod:`repro.resilience.faults`.

This module pioneered injected-crash durability testing for the storage
engine; the mechanism has since been generalized into the cross-subsystem
fault registry.  The public surface here is kept verbatim (names, env
contract, exit code) so existing harnesses keep working, but every call now
delegates to the registry: a storage point ``p`` is the fault site
``storage.p``, and the legacy ``REPRO_STORAGE_CRASH_POINT`` /
``REPRO_STORAGE_CRASH_HITS`` environment variables are translated by the
registry into an equivalent ``kill`` spec.

New code should arm :class:`repro.resilience.FaultSpec` entries directly —
that unlocks the other fault kinds (``raise``/``delay``/``partial``) at the
same storage sites, e.g. a ``raise`` at ``storage.wal_append`` to drive the
engine's read-only degradation instead of killing the process.
"""

from __future__ import annotations

from ..resilience import faults

__all__ = ["CRASH_POINTS", "CRASH_EXIT_CODE", "CRASH_POINT_ENV",
           "CRASH_HITS_ENV", "armed", "maybe_crash", "reset_hits"]

#: Every point the engine injects, in upsert/snapshot order.
CRASH_POINTS = (
    "before_wal_append",      # upsert planned+scored, nothing durable yet
    "mid_wal_append",         # entry header written, payload missing (torn tail)
    "after_wal_append",       # entry durable, in-memory indexes NOT updated
    "after_commit",           # entry durable and applied
    "before_snapshot_rename", # snapshot temp file written, not yet visible
    "after_snapshot_rename",  # snapshot visible, WAL segments NOT yet pruned
)

#: Exit status of an injected crash (distinct from any pytest/python code).
CRASH_EXIT_CODE = faults.KILL_EXIT_CODE

CRASH_POINT_ENV = "REPRO_STORAGE_CRASH_POINT"
CRASH_HITS_ENV = "REPRO_STORAGE_CRASH_HITS"


def reset_hits() -> None:
    """Forget hit counts (tests that arm points in-process between runs)."""
    faults.reset_hits()


def armed(point: str) -> bool:
    """Whether any active fault targets ``point`` in this process.

    Call sites use this to pay a preparation cost only while armed — the
    WAL flushes its entry header before the mid-append hook precisely so
    an injected death there leaves a *real* torn entry.
    """
    return faults.armed(f"storage.{point}")


def maybe_crash(point: str) -> None:
    """Run whatever fault is armed at ``point`` (historically only ``kill``:
    die with ``os._exit(CRASH_EXIT_CODE)``); a no-op when nothing is armed."""
    if point not in CRASH_POINTS:
        raise ValueError(f"unknown crash point {point!r} "
                         f"(known: {', '.join(CRASH_POINTS)})")
    faults.check(f"storage.{point}")
