"""Storage exception hierarchy (its own module to avoid layering cycles:
the lock helper raises :class:`StorageLocked` and the engine imports the
lock helper, so neither can own the base class)."""

from __future__ import annotations

__all__ = ["StorageError", "StorageLocked", "StorageReadOnly"]


class StorageError(RuntimeError):
    """The data directory and the code disagree about recovery state."""


class StorageLocked(StorageError):
    """Another live :class:`Storage` instance holds the data directory.

    Two engines appending to the same WAL segment would interleave entries
    and corrupt the log; the advisory directory lock turns that silent
    corruption into this loud refusal at open time.
    """


class StorageReadOnly(StorageError):
    """A WAL append failed; the engine rejects writes, reads keep serving.

    Once an append errors the durable log can no longer be trusted to stay
    ahead of memory, so the engine fails the triggering upsert with the
    store untouched (the commit hook runs before any mutation) and refuses
    further writes.  Reads are unaffected — the in-memory state is still
    exactly the committed prefix.  Recovery: fix the disk, reopen via
    :meth:`Storage.recover`.
    """
