"""repro.storage — durability under the serve layer.

A write-ahead log (:mod:`~repro.storage.wal`), compacted snapshots
(:mod:`~repro.storage.snapshots`), the :class:`Storage` engine tying them
around an :class:`~repro.serve.EntityStore`
(:mod:`~repro.storage.engine`), a SQLite posting-list backend for the
blocking indexes (:mod:`~repro.storage.backends`), an advisory directory
lock guaranteeing one live engine per data dir
(:mod:`~repro.storage.locks`), and the injected crash points the recovery
property tests kill processes at (:mod:`~repro.storage.crashpoints` — now
a shim over the cross-subsystem :mod:`repro.resilience.faults` registry).

See ``docs/storage.md`` for the on-disk formats and the recovery
invariants, and ``docs/resilience.md`` for the failure modes
(:class:`StorageReadOnly`, :class:`StorageLocked`).
"""

from __future__ import annotations

from .backends import SQLiteBucketStore, SQLiteIndexBackend
from .crashpoints import CRASH_EXIT_CODE, CRASH_POINTS, maybe_crash
from .engine import (META_FILENAME, RecoveryReport, STORAGE_FORMAT_VERSION,
                     Storage, StorageConfig, StorageError, StorageLocked,
                     StorageReadOnly)
from .locks import DirectoryLock
from .snapshots import SnapshotError, SnapshotManager
from .wal import WALAppend, WALError, WriteAheadLog

__all__ = [
    "Storage", "StorageConfig", "StorageError", "StorageLocked",
    "StorageReadOnly", "RecoveryReport",
    "STORAGE_FORMAT_VERSION", "META_FILENAME", "DirectoryLock",
    "WriteAheadLog", "WALAppend", "WALError",
    "SnapshotManager", "SnapshotError",
    "SQLiteIndexBackend", "SQLiteBucketStore",
    "CRASH_POINTS", "CRASH_EXIT_CODE", "maybe_crash",
]
