"""The durable storage engine: WAL + snapshots around an ``EntityStore``.

:class:`Storage` owns a data directory and wires three pieces together:

* every committed upsert appends one fsync'd WAL entry (record, the pair
  scores the upsert produced, the bucket retractions it planned) *before*
  the store mutates — :mod:`repro.storage.wal`;
* periodic compacted snapshots of the materialized store state, taken
  without blocking upserts (freeze under the store lock, serialize and
  write outside it) and followed by WAL pruning —
  :mod:`repro.storage.snapshots`;
* :meth:`Storage.recover` = load newest snapshot + replay the WAL tail,
  restoring a state bit-exact with a never-crashed store in
  O(snapshot + tail) — not O(corpus).

Why replay is exact: the WAL entry carries the scores its upsert computed,
so replay re-runs the *deterministic* part of an upsert (blocking, support
bookkeeping, retraction, component re-resolution) against the *recorded*
stochastic part (model scores).  The entry's retraction plan is re-checked
during replay — a divergence means the log and the code disagree and
recovery refuses to guess.

Crash-safety contract (exercised point-by-point by ``tests/storage``):
the store lock is held from WAL append through in-memory commit, and the
append is durable first — so a crash anywhere leaves the WAL holding
exactly the committed prefix plus at most one torn entry, which open-time
truncation discards.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, NamedTuple, Optional, Union

import numpy as np

from .. import obs
from ..data.records import Record
from ..obs import BoundHandles
from ..resilience import faults
from ..resilience.faults import FaultInjected
from ..serve.store import EntityStore, ScoreFn, StoreConfig
from . import crashpoints
from .errors import StorageError, StorageLocked, StorageReadOnly
from .locks import DirectoryLock
from .snapshots import SnapshotManager
from .wal import WALError, WriteAheadLog

__all__ = ["Storage", "StorageConfig", "StorageError", "StorageLocked",
           "StorageReadOnly", "RecoveryReport",
           "STORAGE_FORMAT_VERSION", "META_FILENAME"]

STORAGE_FORMAT_VERSION = 1
META_FILENAME = "storage_meta.json"
_MAX_FSYNC_SAMPLES = 65536


@dataclass(frozen=True)
class StorageConfig:
    """Durability / compaction knobs of the storage engine."""

    fsync: bool = True                       # fsync every WAL append
    snapshot_every: Optional[int] = None     # auto-snapshot cadence (upserts)
    wal_segment_max_entries: int = 256       # rotation (= pruning) grain
    prune_wal: bool = True                   # drop segments a snapshot covers
    snapshots_keep: int = 2                  # retained snapshot generations


@dataclass(frozen=True)
class RecoveryReport:
    """What one :meth:`Storage.recover` call restored."""

    snapshot_lsn: int       # 0 when no snapshot existed
    replayed_entries: int   # WAL tail length
    records: int            # records in the restored store
    seconds: float


class _StorageInstruments(NamedTuple):
    wal_appends: object
    wal_bytes: object
    fsync_seconds: object
    snapshots: object
    compaction_seconds: object
    segments_pruned: object
    recovery_seconds: object
    recovered_entries: object


def _bind_storage_instruments(registry) -> _StorageInstruments:
    return _StorageInstruments(
        wal_appends=registry.counter("storage_wal_appends_total",
                                     "WAL entries appended"),
        wal_bytes=registry.counter("storage_wal_bytes",
                                   "WAL bytes written (headers + payloads)"),
        fsync_seconds=registry.histogram("storage_wal_fsync_seconds",
                                         "Per-append WAL fsync latency"),
        snapshots=registry.counter("storage_snapshots_total",
                                   "Snapshots published"),
        compaction_seconds=registry.histogram(
            "storage_compaction_seconds",
            "Snapshot serialize+write+prune duration"),
        segments_pruned=registry.counter("storage_segments_pruned_total",
                                         "WAL segments deleted by compaction"),
        recovery_seconds=registry.histogram("storage_recovery_seconds",
                                            "Snapshot-load + tail-replay time"),
        recovered_entries=registry.counter("storage_recovered_entries",
                                           "WAL tail entries replayed"),
    )


class Storage:
    """A durable :class:`~repro.serve.EntityStore` in one data directory.

    Construct directly over a fresh/empty directory, or via
    :meth:`recover` (snapshot + WAL tail) / :meth:`open` (recover when the
    directory holds state, else start fresh).  The wrapped store stays
    fully usable as-is — ``storage.store`` — with every committed upsert
    WAL-logged transparently through the store's commit hook.
    """

    def __init__(self, data_dir: Union[str, Path],
                 store: Optional[EntityStore] = None,
                 score_fn: Optional[ScoreFn] = None,
                 store_config: Optional[StoreConfig] = None,
                 config: Optional[StorageConfig] = None,
                 _wal: Optional[WriteAheadLog] = None,
                 _snapshot_lsn: int = 0,
                 _lock: Optional[DirectoryLock] = None) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        # One live engine per directory: two writers appending to the same
        # WAL segment would interleave entries.  ``recover`` passes the
        # lock it already took; a direct construction takes it here.
        self._lock = _lock if _lock is not None else DirectoryLock.acquire(
            self.data_dir)
        try:
            self.config = config or StorageConfig()
            if store is None:
                store_config = (store_config or self._meta_store_config()
                                or StoreConfig())
                store = EntityStore(score_fn=score_fn, config=store_config)
            self._store = store
            self._write_meta_if_absent()
            self._wal = _wal if _wal is not None else WriteAheadLog(
                self.data_dir, fsync=self.config.fsync,
                segment_max_entries=self.config.wal_segment_max_entries)
            if _wal is None and self._wal.last_lsn != len(store):
                raise StorageError(
                    f"data dir {self.data_dir} holds a WAL at lsn "
                    f"{self._wal.last_lsn} but the store has {len(store)} "
                    f"records; use Storage.recover() (or Storage.open())")
        except BaseException:
            self._lock.release()
            raise
        self._snapshots = SnapshotManager(self.data_dir,
                                          keep=self.config.snapshots_keep)
        self._snapshot_lsn = _snapshot_lsn
        self._obs = BoundHandles(_bind_storage_instruments)
        self._fsync_samples: List[float] = []
        self._read_only = False
        #: Optional per-append callback with the fsync latency (seconds);
        #: the serve layer points this at its SLO monitor.
        self.fsync_listener: Optional[Callable[[float], None]] = None
        self.last_recovery: Optional[RecoveryReport] = None
        store.set_commit_hook(self._on_commit)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> EntityStore:
        return self._store

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def read_only(self) -> bool:
        """True after a WAL append failure: writes refused, reads serving."""
        return self._read_only

    @property
    def snapshots(self) -> SnapshotManager:
        return self._snapshots

    def _meta_path(self) -> Path:
        return self.data_dir / META_FILENAME

    def _meta_store_config(self) -> Optional[StoreConfig]:
        path = self._meta_path()
        if not path.exists():
            return None
        meta = json.loads(path.read_text(encoding="utf-8"))
        version = meta.get("format_version")
        if version != STORAGE_FORMAT_VERSION:
            raise StorageError(f"unsupported storage meta version {version!r}")
        return StoreConfig.from_dict(meta["store_config"])

    def _write_meta_if_absent(self) -> None:
        path = self._meta_path()
        if path.exists():
            return
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps({
            "format_version": STORAGE_FORMAT_VERSION,
            "store_config": self._store.config.as_dict(),
        }, sort_keys=True, indent=2), encoding="utf-8")
        os.replace(tmp, path)

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def upsert(self, record: Record) -> str:
        """Upsert through the store (WAL entry first, via the commit hook),
        then take an automatic snapshot when the cadence says so."""
        if self._read_only:
            raise StorageReadOnly(
                f"storage at {self.data_dir} is read-only after a WAL "
                f"append failure; reads still serve — reopen via "
                f"Storage.recover() once the log is writable again")
        entity_id = self._store.upsert(record)
        crashpoints.maybe_crash("after_commit")
        every = self.config.snapshot_every
        if every and self._wal.last_lsn - self._snapshot_lsn >= every:
            self.snapshot()
        return entity_id

    def _on_commit(self, record: Record, pair_scores: Dict[str, float],
                   retracted: List[List[int]]) -> None:
        """The store's commit hook: durable WAL append before any mutation.

        Runs under the store lock, after scoring, before the in-memory
        commit — an exception here aborts the upsert with the store
        untouched, and a crash after it leaves a WAL entry recovery will
        replay.
        """
        crashpoints.maybe_crash("before_wal_append")
        try:
            faults.check("storage.wal_append")
            result = self._wal.append({
                "record": record.to_dict(),
                "scores": pair_scores,
                "retracted": [list(members) for members in retracted],
            })
        except (OSError, WALError, FaultInjected) as error:
            # The durable log can no longer be trusted to stay ahead of
            # memory.  The hook runs before any mutation, so the store is
            # still exactly the committed prefix — flip to read-only and
            # fail this upsert; reads keep serving that prefix.
            self._read_only = True
            obs.counter("storage_read_only_total",
                        "Engines flipped read-only by a WAL append failure"
                        ).inc()
            raise StorageReadOnly(
                f"WAL append failed at {self.data_dir} ({error}); storage "
                f"is now read-only") from error
        instruments = self._obs.get()
        if instruments is not None:
            instruments.wal_appends.inc()
            instruments.wal_bytes.inc(result.nbytes)
            instruments.fsync_seconds.observe(result.fsync_seconds)
        if len(self._fsync_samples) >= _MAX_FSYNC_SAMPLES:
            del self._fsync_samples[:_MAX_FSYNC_SAMPLES // 2]
        self._fsync_samples.append(result.fsync_seconds)
        if self.fsync_listener is not None:
            self.fsync_listener(result.fsync_seconds)
        crashpoints.maybe_crash("after_wal_append")

    def fsync_latency_samples(self) -> List[float]:
        """Recent per-append fsync latencies (seconds), oldest first."""
        return list(self._fsync_samples)

    # ------------------------------------------------------------------ #
    # Snapshot / compaction
    # ------------------------------------------------------------------ #
    def snapshot(self) -> Path:
        """Publish a compacted snapshot of the current state; prune the WAL.

        Upserts only block for the freeze (cheap python copies under the
        store lock); serialization, the fsync'd write, the atomic rename,
        and segment pruning all run outside it.
        """
        started = time.perf_counter()
        with obs.trace("storage.snapshot"):
            with self._store.lock:
                frozen = self._store.freeze_state()
                lsn = self._wal.last_lsn
            payload = {
                "format_version": STORAGE_FORMAT_VERSION,
                "lsn": lsn,
                "store": EntityStore.serialize_state(frozen),
            }
            path = self._snapshots.take(payload, lsn)
            pruned = self._wal.prune(lsn) if self.config.prune_wal else 0
            self._snapshot_lsn = lsn
        elapsed = time.perf_counter() - started
        instruments = self._obs.get()
        if instruments is not None:
            instruments.snapshots.inc()
            instruments.compaction_seconds.observe(elapsed)
            if pruned:
                instruments.segments_pruned.inc(pruned)
        return path

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    @classmethod
    def recover(cls, data_dir: Union[str, Path],
                score_fn: Optional[ScoreFn] = None,
                store_config: Optional[StoreConfig] = None,
                config: Optional[StorageConfig] = None) -> "Storage":
        """Restore a :class:`Storage` from its data directory.

        Loads the newest snapshot (if any), replays the WAL entries past
        its LSN through the normal upsert path with recorded scores, and
        returns a live engine whose store is bit-exact with one that never
        crashed.  ``score_fn`` is bound afterwards for further traffic;
        without it the store is read-only.
        """
        config = config or StorageConfig()
        data_dir = Path(data_dir)
        started = time.perf_counter()
        # Take the directory lock before reading anything: recovery must
        # not race a live engine still appending to the log it replays.
        lock = DirectoryLock.acquire(data_dir)
        try:
            return cls._recover_locked(data_dir, lock, score_fn,
                                       store_config, config, started)
        except BaseException:
            lock.release()
            raise

    @classmethod
    def _recover_locked(cls, data_dir: Path, lock: DirectoryLock,
                        score_fn: Optional[ScoreFn],
                        store_config: Optional[StoreConfig],
                        config: StorageConfig, started: float) -> "Storage":
        with obs.trace("storage.recover"):
            snapshots = SnapshotManager(data_dir, keep=config.snapshots_keep)
            snapshots.cleanup()
            loaded = snapshots.load_latest()
            if loaded is not None:
                snapshot_lsn, payload = loaded
                store = EntityStore.from_state_dict(payload["store"])
            else:
                snapshot_lsn = 0
                meta_path = data_dir / META_FILENAME
                if store_config is None and meta_path.exists():
                    meta = json.loads(meta_path.read_text(encoding="utf-8"))
                    store_config = StoreConfig.from_dict(meta["store_config"])
                store = EntityStore(config=store_config or StoreConfig())
            wal = WriteAheadLog(data_dir, fsync=config.fsync,
                                segment_max_entries=config.wal_segment_max_entries)
            if wal.last_lsn < snapshot_lsn:
                raise StorageError(
                    f"snapshot at lsn {snapshot_lsn} is ahead of the WAL "
                    f"(lsn {wal.last_lsn}); log segments are missing")
            replayed = cls._replay_tail(store, wal, snapshot_lsn)
            if len(store) != wal.last_lsn:
                raise StorageError(
                    f"recovery replayed to {len(store)} records but the WAL "
                    f"ends at lsn {wal.last_lsn}")
            store.set_commit_hook(None)
            store.bind_score_fn(score_fn)  # type: ignore[arg-type]
            storage = cls(data_dir, store=store, config=config,
                          _wal=wal, _snapshot_lsn=snapshot_lsn, _lock=lock)
        elapsed = time.perf_counter() - started
        storage.last_recovery = RecoveryReport(
            snapshot_lsn=snapshot_lsn, replayed_entries=replayed,
            records=len(store), seconds=elapsed)
        instruments = storage._obs.get()
        if instruments is not None:
            instruments.recovery_seconds.observe(elapsed)
            if replayed:
                instruments.recovered_entries.inc(replayed)
        return storage

    @staticmethod
    def _replay_tail(store: EntityStore, wal: WriteAheadLog,
                     after_lsn: int) -> int:
        """Replay WAL entries past ``after_lsn`` through the upsert path.

        Each entry's recorded scores stand in for the model; its recorded
        retraction plan is cross-checked against what the replayed upsert
        actually plans, so silent divergence fails loudly.
        """
        current: Dict[str, object] = {}

        def validator(record: Record, pair_scores: Dict[str, float],
                      retracted: List[List[int]]) -> None:
            entry = current["entry"]
            if [list(members) for members in retracted] != entry["retracted"]:
                raise StorageError(
                    f"replay of lsn {entry['lsn']} planned retractions "
                    f"{retracted!r}, but the WAL recorded "
                    f"{entry['retracted']!r}")
            if set(pair_scores) != set(entry["scores"]):
                raise StorageError(
                    f"replay of lsn {entry['lsn']} scored pairs "
                    f"{sorted(pair_scores)}, but the WAL recorded "
                    f"{sorted(entry['scores'])}")

        store.set_commit_hook(validator)
        replayed = 0
        for entry in wal.replay(after_lsn=after_lsn):
            scores = {pair_id: float(score)
                      for pair_id, score in entry["scores"].items()}

            def lookup(pairs, _scores=scores, _lsn=entry["lsn"]):
                try:
                    return np.array([_scores[pair.pair_id] for pair in pairs])
                except KeyError as error:
                    raise StorageError(
                        f"WAL entry {_lsn} is missing the score for pair "
                        f"{error.args[0]!r}") from error

            current["entry"] = entry
            store.bind_score_fn(lookup)
            store.upsert(Record.from_dict(entry["record"]))
            replayed += 1
        return replayed

    @classmethod
    def open(cls, data_dir: Union[str, Path],
             score_fn: Optional[ScoreFn] = None,
             store_config: Optional[StoreConfig] = None,
             config: Optional[StorageConfig] = None) -> "Storage":
        """Recover when ``data_dir`` holds prior state, else start fresh."""
        data_dir = Path(data_dir)
        if (data_dir / META_FILENAME).exists():
            return cls.recover(data_dir, score_fn=score_fn,
                               store_config=store_config, config=config)
        return cls(data_dir, score_fn=score_fn, store_config=store_config,
                   config=config)

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        wal_stats = self._wal.stats()
        return {
            "records": float(len(self._store)),
            "wal_last_lsn": float(wal_stats["last_lsn"]),
            "wal_segments": float(wal_stats["segments"]),
            "wal_entries": float(wal_stats["entries"]),
            "wal_bytes": float(wal_stats["bytes"]),
            "snapshot_lsn": float(self._snapshot_lsn),
            "wal_tail_entries": float(wal_stats["last_lsn"]
                                      - self._snapshot_lsn),
            "read_only": float(self._read_only),
        }

    def close(self) -> None:
        self._store.set_commit_hook(None)
        self._wal.close()
        self._lock.release()

    def __enter__(self) -> "Storage":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
