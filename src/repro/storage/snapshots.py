"""Compacted, atomically-published snapshots of the store state.

A snapshot is one JSON file, ``snapshot-<lsn:016d>.json``, holding the
*materialized* store state (records, pair scores and support, resolved
entities, index bucket state) as of WAL sequence number ``lsn``.  Restore is
therefore a deserialization, not a replay — the compaction half of the
O(snapshot + WAL tail) recovery bound.

Publication protocol (crash-safe at every instruction):

1. serialize to ``.snapshot-<lsn>.json.tmp`` in the same directory,
   ``flush`` + ``fsync``;
2. ``os.replace`` onto the final name — atomic on POSIX, so readers only
   ever see absent-or-complete snapshots;
3. fsync the directory, making the rename durable;
4. delete snapshots older than the retention count.

The serialization and write happen on the caller's thread *outside* the
store lock — the caller passes an already-frozen state copy — so upserts
never stall behind a snapshot write.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from . import crashpoints

__all__ = ["SnapshotManager", "SnapshotError", "SNAPSHOT_PREFIX"]

SNAPSHOT_PREFIX = "snapshot-"
SNAPSHOT_SUFFIX = ".json"
_TMP_SUFFIX = ".tmp"


class SnapshotError(RuntimeError):
    """No loadable snapshot where one was required."""


def _snapshot_name(lsn: int) -> str:
    return f"{SNAPSHOT_PREFIX}{lsn:016d}{SNAPSHOT_SUFFIX}"


def _parse_lsn(path: Path) -> Optional[int]:
    stem = path.name[len(SNAPSHOT_PREFIX):-len(SNAPSHOT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        return None


class SnapshotManager:
    """Takes, lists, prunes, and loads snapshots under one directory."""

    def __init__(self, directory: Union[str, Path], keep: int = 2) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Write
    # ------------------------------------------------------------------ #
    def take(self, payload: Dict[str, object], lsn: int) -> Path:
        """Serialize ``payload`` and atomically publish it as the snapshot
        at ``lsn``.  ``payload`` must be a frozen (no longer mutated) copy
        of the store state — this call does the slow work lock-free."""
        final = self.directory / _snapshot_name(lsn)
        tmp = self.directory / f".{_snapshot_name(lsn)}{_TMP_SUFFIX}"
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        with tmp.open("wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        crashpoints.maybe_crash("before_snapshot_rename")
        os.replace(tmp, final)
        self._fsync_directory()
        crashpoints.maybe_crash("after_snapshot_rename")
        self._prune_old()
        return final

    def _prune_old(self) -> None:
        snapshots = self.list()
        for _, path in snapshots[:-self.keep]:
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def cleanup(self) -> int:
        """Remove stale temp files a crash left behind (never a published
        snapshot).  Returns how many were removed."""
        removed = 0
        for path in self.directory.glob(f".{SNAPSHOT_PREFIX}*{_TMP_SUFFIX}"):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                pass
        return removed

    def _fsync_directory(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------ #
    # Read
    # ------------------------------------------------------------------ #
    def list(self) -> List[Tuple[int, Path]]:
        """Published snapshots as ``(lsn, path)``, oldest first."""
        found = []
        for path in self.directory.glob(SNAPSHOT_PREFIX + "*" + SNAPSHOT_SUFFIX):
            lsn = _parse_lsn(path)
            if lsn is not None:
                found.append((lsn, path))
        found.sort()
        return found

    def latest(self) -> Optional[Tuple[int, Path]]:
        snapshots = self.list()
        return snapshots[-1] if snapshots else None

    def load(self, path: Union[str, Path]) -> Dict[str, object]:
        with Path(path).open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def load_latest(self) -> Optional[Tuple[int, Dict[str, object]]]:
        """Newest loadable snapshot as ``(lsn, payload)``, or ``None``.

        The atomic-rename protocol makes a published snapshot complete by
        construction; this still walks newest → oldest so a manually
        damaged file degrades to the previous snapshot instead of failing
        recovery outright.
        """
        for lsn, path in reversed(self.list()):
            try:
                return lsn, self.load(path)
            except (OSError, json.JSONDecodeError):
                continue
        return None
