"""Append-only, checksummed, segmented write-ahead log.

One entry per committed upsert, written *before* the in-memory commit: if
the process dies at any instant, the WAL prefix that survives is exactly
the committed-upsert prefix (modulo the one in-flight entry, which torn-tail
truncation drops).  Entries are length-prefixed and CRC-checksummed::

    +----------------+----------------+------------------------+
    | length (4B BE) | crc32 (4B BE)  | payload (length bytes) |
    +----------------+----------------+------------------------+

where the payload is canonical JSON (``sort_keys=True``) of the entry dict
including its log sequence number (``lsn``, 1-based, dense).  Each append is
``flush`` + ``fsync`` (configurable) so a completed :meth:`append` is
durable.

The log is split into segments named ``wal-<first_lsn:016d>.log``; a segment
is closed after ``segment_max_entries`` entries and the next append starts a
new one.  Segments are the unit of pruning: after a snapshot at LSN *s*,
every segment whose entries are all ``<= s`` is deleted
(:meth:`prune`) — compaction without ever rewriting a live file.

Opening the log validates every retained entry (checksum + dense LSNs).  A
torn tail — a crash mid-append left a truncated or checksum-failing final
entry — is detected and truncated away; corruption anywhere *else* raises
:class:`WALError`, because append-only writes can only tear the tail.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union
from zlib import crc32

from . import crashpoints

__all__ = ["WriteAheadLog", "WALError", "WALAppend", "SEGMENT_PREFIX"]

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"
_HEADER = struct.Struct(">II")  # (payload length, payload crc32)


class WALError(RuntimeError):
    """The log on disk violates an invariant truncation cannot repair."""


@dataclass(frozen=True)
class WALAppend:
    """What one :meth:`WriteAheadLog.append` did."""

    lsn: int
    nbytes: int          # header + payload bytes written
    fsync_seconds: float  # 0.0 when fsync is disabled


def _segment_name(first_lsn: int) -> str:
    return f"{SEGMENT_PREFIX}{first_lsn:016d}{SEGMENT_SUFFIX}"


def _parse_first_lsn(path: Path) -> int:
    stem = path.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError as error:
        raise WALError(f"malformed WAL segment name {path.name!r}") from error


def _scan_blob(blob: bytes) -> Tuple[List[Dict[str, object]], int, bool]:
    """Parse one segment's bytes.

    Returns ``(entries, good_length, torn)``: the decoded entries, the byte
    offset up to which the segment is valid, and whether trailing bytes had
    to be discarded (truncated or checksum-failing final entry).
    """
    entries: List[Dict[str, object]] = []
    offset = 0
    total = len(blob)
    while offset < total:
        if offset + _HEADER.size > total:
            return entries, offset, True
        length, checksum = _HEADER.unpack_from(blob, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            return entries, offset, True
        payload = blob[start:end]
        if crc32(payload) != checksum:
            return entries, offset, True
        entries.append(json.loads(payload.decode("utf-8")))
        offset = end
    return entries, offset, False


class _Segment:
    __slots__ = ("first_lsn", "path", "entry_count")

    def __init__(self, first_lsn: int, path: Path, entry_count: int) -> None:
        self.first_lsn = first_lsn
        self.path = path
        self.entry_count = entry_count


class WriteAheadLog:
    """A durable log of upsert entries under ``directory``.

    Thread safety: appends are expected to be serialized by the caller (the
    store's single-writer lock), but :meth:`prune` may run concurrently from
    a snapshotting thread — all segment bookkeeping is behind an internal
    lock.
    """

    def __init__(self, directory: Union[str, Path], fsync: bool = True,
                 segment_max_entries: int = 256) -> None:
        if segment_max_entries < 1:
            raise ValueError(f"segment_max_entries must be >= 1, "
                             f"got {segment_max_entries}")
        self.directory = Path(directory)
        self.fsync = fsync
        self.segment_max_entries = segment_max_entries
        self._lock = threading.Lock()
        self._handle = None  # open append handle of the active segment
        self._segments: List[_Segment] = []
        self._last_lsn = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        self._open_existing()

    # ------------------------------------------------------------------ #
    # Open / validate
    # ------------------------------------------------------------------ #
    def _open_existing(self) -> None:
        paths = sorted(self.directory.glob(SEGMENT_PREFIX + "*" + SEGMENT_SUFFIX),
                       key=_parse_first_lsn)
        expected = None  # the first retained segment fixes the starting lsn
        for position, path in enumerate(paths):
            first_lsn = _parse_first_lsn(path)
            entries, good_length, torn = _scan_blob(path.read_bytes())
            if torn:
                if position != len(paths) - 1:
                    raise WALError(
                        f"WAL segment {path.name} is corrupt before the final "
                        f"segment; append-only logs can only tear at the tail")
                self._truncate(path, good_length)
            if entries and int(entries[0]["lsn"]) != first_lsn:
                raise WALError(f"segment {path.name} starts at lsn "
                               f"{entries[0]['lsn']}, not its named {first_lsn}")
            for entry in entries:
                lsn = int(entry["lsn"])
                if expected is not None and lsn != expected:
                    raise WALError(f"WAL lsn gap in {path.name}: found {lsn}, "
                                   f"expected {expected}")
                expected = lsn + 1
                self._last_lsn = lsn
            if not entries:
                # A torn-away or crash-created empty segment: rotation names
                # segments after their first lsn, so the log ends just below.
                self._last_lsn = max(self._last_lsn, first_lsn - 1)
                expected = first_lsn if expected is None else expected
            self._segments.append(_Segment(first_lsn, path, len(entries)))

    @staticmethod
    def _truncate(path: Path, good_length: int) -> None:
        with path.open("r+b") as handle:
            handle.truncate(good_length)
            handle.flush()
            os.fsync(handle.fileno())

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def last_lsn(self) -> int:
        """LSN of the newest durable entry (0 when the log is empty)."""
        with self._lock:
            return self._last_lsn

    def segments(self) -> List[Path]:
        """Paths of the retained segments, oldest first."""
        with self._lock:
            return [segment.path for segment in self._segments]

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "last_lsn": self._last_lsn,
                "segments": len(self._segments),
                "entries": sum(s.entry_count for s in self._segments),
                "bytes": sum(s.path.stat().st_size for s in self._segments
                             if s.path.exists()),
            }

    # ------------------------------------------------------------------ #
    # Append
    # ------------------------------------------------------------------ #
    def append(self, payload: Mapping[str, object]) -> WALAppend:
        """Durably append one entry; returns its assigned LSN.

        ``payload`` must be JSON-serializable and must not carry an ``lsn``
        key (the log owns sequencing).  The entry is on disk (fsync'd when
        ``fsync`` is on) before this returns.
        """
        if "lsn" in payload:
            raise ValueError("payload must not carry 'lsn'; the log assigns it")
        with self._lock:
            lsn = self._last_lsn + 1
            handle = self._active_handle(lsn)
            entry = {"lsn": lsn}
            entry.update(payload)
            blob = json.dumps(entry, sort_keys=True).encode("utf-8")
            header = _HEADER.pack(len(blob), crc32(blob))
            handle.write(header)
            if crashpoints.armed("mid_wal_append"):
                # Make the torn state real before dying: header durable,
                # payload missing.
                handle.flush()
                os.fsync(handle.fileno())
                crashpoints.maybe_crash("mid_wal_append")
            handle.write(blob)
            handle.flush()
            started = time.perf_counter()
            if self.fsync:
                os.fsync(handle.fileno())
                fsync_seconds = time.perf_counter() - started
            else:
                fsync_seconds = 0.0
            self._last_lsn = lsn
            self._segments[-1].entry_count += 1
            return WALAppend(lsn=lsn, nbytes=len(header) + len(blob),
                             fsync_seconds=fsync_seconds)

    def _active_handle(self, next_lsn: int):
        """The open handle of the segment ``next_lsn`` belongs in, rotating
        to a fresh segment when the active one is full."""
        if (not self._segments
                or self._segments[-1].entry_count >= self.segment_max_entries):
            self._close_handle()
            path = self.directory / _segment_name(next_lsn)
            self._segments.append(_Segment(next_lsn, path, 0))
            self._handle = path.open("ab")
            self._fsync_directory()
        elif self._handle is None:
            self._handle = self._segments[-1].path.open("ab")
        return self._handle

    def _fsync_directory(self) -> None:
        """Make segment creation/deletion durable (POSIX directory fsync)."""
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # platforms without directory fds
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------ #
    # Replay / prune
    # ------------------------------------------------------------------ #
    def replay(self, after_lsn: int = 0) -> Iterator[Dict[str, object]]:
        """Yield entries with ``lsn > after_lsn``, oldest first.

        Whole segments below the horizon are skipped without reading — the
        O(WAL tail) half of the recovery cost.
        """
        with self._lock:
            segments = list(self._segments)
        for position, segment in enumerate(segments):
            nxt = segments[position + 1] if position + 1 < len(segments) else None
            if nxt is not None and nxt.first_lsn <= after_lsn + 1:
                continue  # every entry here is <= after_lsn
            entries, _, torn = _scan_blob(segment.path.read_bytes())
            if torn and position != len(segments) - 1:
                raise WALError(f"WAL segment {segment.path.name} corrupt "
                               f"during replay")
            for entry in entries:
                if int(entry["lsn"]) > after_lsn:
                    yield entry

    def prune(self, up_to_lsn: int) -> int:
        """Delete segments whose entries are all ``<= up_to_lsn``.

        The active (last) segment is never deleted.  Returns the number of
        segments removed.
        """
        removed = 0
        with self._lock:
            while len(self._segments) > 1:
                nxt = self._segments[1]
                # The first segment's last entry is nxt.first_lsn - 1.
                if nxt.first_lsn - 1 > up_to_lsn:
                    break
                segment = self._segments.pop(0)
                try:
                    segment.path.unlink()
                except FileNotFoundError:
                    pass
                removed += 1
            if removed:
                self._fsync_directory()
        return removed

    def close(self) -> None:
        with self._lock:
            self._close_handle()

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
