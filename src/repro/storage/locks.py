"""Advisory data-directory lock: one live engine per directory.

``flock`` where available (POSIX): the lock dies with the process — even an
``os._exit`` crash (or SIGKILL) releases it, which is exactly the semantics
the crash-recovery harness needs; a stale lock file can never wedge a
restart.  Where ``fcntl`` is missing the fallback is an exclusive-create
pidfile with stale-owner detection (best effort — pidfiles cannot match
flock's kernel-enforced release).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from .errors import StorageLocked

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["DirectoryLock", "LOCK_FILENAME"]

LOCK_FILENAME = ".lock"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # alive, owned by someone else
        return True
    except OSError:
        return False
    return True


class DirectoryLock:
    """Holds the advisory lock on one data directory until released."""

    def __init__(self, path: Path, handle, pidfile: bool) -> None:
        self.path = path
        self._handle = handle
        self._pidfile = pidfile

    @classmethod
    def acquire(cls, directory: Union[str, Path]) -> "DirectoryLock":
        """Take the directory's lock or raise :class:`StorageLocked`.

        Contention raises immediately (``LOCK_NB``) — an engine open is not
        a queueing operation; whoever loses should surface the conflict to
        its operator, not silently wait on a lock of unknown tenure.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / LOCK_FILENAME
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return cls._acquire_pidfile(path)
        handle = open(path, "a+", encoding="utf-8")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.seek(0)
            owner = handle.read().strip() or "unknown"
            handle.close()
            raise StorageLocked(
                f"data dir {directory} is already held by a live Storage "
                f"(lock owner pid {owner}); close it first — two engines "
                f"appending to one WAL would corrupt the log")
        handle.seek(0)
        handle.truncate()
        handle.write(str(os.getpid()))
        handle.flush()
        return cls(path, handle, pidfile=False)

    @classmethod
    def _acquire_pidfile(cls, path: Path) -> "DirectoryLock":
        """Exclusive-create pidfile fallback with stale-owner reclaim."""
        for _ in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    owner = int(path.read_text(encoding="utf-8").strip() or "0")
                except (OSError, ValueError):
                    owner = 0
                if owner and owner != os.getpid() and not _pid_alive(owner):
                    try:  # stale: the owner died without releasing
                        path.unlink()
                    except OSError:
                        pass
                    continue
                raise StorageLocked(
                    f"data dir {path.parent} is already held by pid {owner}")
            os.write(fd, str(os.getpid()).encode("ascii"))
            os.close(fd)
            return cls(path, None, pidfile=True)
        raise StorageLocked(f"data dir {path.parent} lock contention")

    def release(self) -> None:
        """Drop the lock (idempotent).  The lock *file* is kept — unlinking
        under flock races with a concurrent acquire on the same path."""
        handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()  # closing the fd releases the flock
        if self._pidfile:
            self._pidfile = False
            try:
                self.path.unlink()
            except OSError:
                pass

    def __enter__(self) -> "DirectoryLock":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()
