"""Process-wide cache of encoded pair features.

Training and evaluating one multi-source scenario encodes the same support,
target and test pairs many times: once per AdaMEL variant, once per baseline
that shares the encoder, and once per figure/table that revisits the scenario.
The :class:`EncodingCache` memoises the ``(F, D)`` feature matrix and feature
mask of every pair so that work is done once per process.

Keys are exact, not probabilistic: a cache key combines the encoder
fingerprint (schema, contrastive feature kinds, tokenizer and embedder
configuration), the ``pair_id``, and the tuple of raw attribute values of both
records.  Two pairs that share an id but differ in content (e.g. the same
record ids generated under different corpus seeds) therefore never collide.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, NamedTuple, Optional, Tuple

import numpy as np

from ..obs import BoundHandles

__all__ = ["EncodingCache", "get_default_cache", "set_default_cache"]

DEFAULT_CACHE_BYTES = 256 * 1024 * 1024

CacheKey = Tuple[Hashable, ...]
CacheEntry = Tuple[np.ndarray, np.ndarray]  # (features (F, D), mask (F,))


class _CacheInstruments(NamedTuple):
    hits: object
    misses: object
    evictions: object
    size_bytes: object
    entries: object


def _bind_cache_instruments(registry) -> _CacheInstruments:
    return _CacheInstruments(
        hits=registry.counter("cache_hits_total", "Encoding cache lookups served"),
        misses=registry.counter("cache_misses_total", "Encoding cache lookups missed"),
        evictions=registry.counter("cache_evictions_total",
                                   "Entries evicted to stay within the byte budget"),
        size_bytes=registry.gauge("cache_size_bytes", "Bytes held by cached arrays"),
        entries=registry.gauge("cache_entries_count", "Entries in the encoding cache"),
    )


class EncodingCache:
    """Byte-bounded LRU cache of per-pair encoded features.

    All operations are thread-safe: concurrent serve workers share the
    process-wide cache, and the LRU reordering, byte-budget eviction and
    hit/miss counters are guarded by one internal lock.  The cached arrays
    themselves are immutable (write flag cleared), so handing the same entry
    to several threads is safe.

    Parameters
    ----------
    max_bytes:
        Approximate memory budget for the cached arrays; least-recently-used
        entries are evicted once the budget is exceeded.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Per-pair hot path: registry lookups are cached, one identity check
        # per event while telemetry stays in one state.
        self._obs = BoundHandles(_bind_cache_instruments)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def lookup(self, key: CacheKey) -> Optional[CacheEntry]:
        """Return the cached ``(features, mask)`` for ``key`` or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        instruments = self._obs.get()
        if instruments is not None:
            (instruments.misses if entry is None else instruments.hits).inc()
        return entry

    def store(self, key: CacheKey, features: np.ndarray, mask: np.ndarray) -> None:
        """Insert a pair's encoded arrays (copied, so later mutation of the
        batch the arrays were sliced from cannot corrupt the cache)."""
        # Copy outside the lock — only the structure mutation needs it.
        features = np.array(features, dtype=np.float64, copy=True)
        mask = np.array(mask, dtype=np.float64, copy=True)
        features.setflags(write=False)
        mask.setflags(write=False)
        nbytes = features.nbytes + mask.nbytes
        evicted = 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            if nbytes > self.max_bytes:
                # An entry that can never fit must not flush the whole cache.
                return
            while self._entries and self.current_bytes + nbytes > self.max_bytes:
                _, (old_features, old_mask) = self._entries.popitem(last=False)
                self.current_bytes -= old_features.nbytes + old_mask.nbytes
                self.evictions += 1
                evicted += 1
            self._entries[key] = (features, mask)
            self.current_bytes += nbytes
            current_bytes, num_entries = self.current_bytes, len(self._entries)
        instruments = self._obs.get()
        if instruments is not None:
            if evicted:
                instruments.evictions.inc(evicted)
            instruments.size_bytes.set(current_bytes)
            instruments.entries.set(num_entries)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def lookup_counts(self) -> Tuple[int, int]:
        """``(hits, misses)`` read atomically under the cache lock.

        Readers that want a consistent view (the trainer's hit-rate math,
        delta-based accounting across a fit) must use this instead of reading
        the ``hits`` / ``misses`` attributes separately — two unlocked reads
        can straddle a concurrent lookup and tear the pair.
        """
        with self._lock:
            return self.hits, self.misses

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 before any lookup)."""
        hits, misses = self.lookup_counts()
        total = hits + misses
        return hits / total if total else 0.0

    def stats(self) -> Dict[str, int]:
        """Counters for diagnostics and benchmark reports."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.current_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:
        return (f"EncodingCache(entries={len(self._entries)}, "
                f"bytes={self.current_bytes}, hits={self.hits}, misses={self.misses})")


_DEFAULT_CACHE = EncodingCache()


def get_default_cache() -> EncodingCache:
    """The process-wide cache shared by every encoder unless told otherwise."""
    return _DEFAULT_CACHE


def set_default_cache(cache: EncodingCache) -> EncodingCache:
    """Replace the process-wide default cache; returns the previous one."""
    global _DEFAULT_CACHE
    if not isinstance(cache, EncodingCache):
        raise TypeError(f"expected an EncodingCache, got {type(cache).__name__}")
    previous = _DEFAULT_CACHE
    _DEFAULT_CACHE = cache
    return previous
