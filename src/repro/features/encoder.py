"""Pair encoding: entity pairs -> fixed-shape token-embedding feature tensors.

Following Eq. (3) of the paper, an entity pair is represented by ``F = 2|A|``
token-embedding features ``h = [h_1, ..., h_F]`` where each ``h_j`` is the sum
of the (fixed, pretrained-style) embeddings of that relational feature's word
tokens.  Features with no tokens — missing attribute values, challenges C1/C2 —
are encoded with a fixed normalised non-zero vector so that their per-feature
affine transformation still receives gradient.

``PairEncoder.encode`` runs a vectorised hot path: tokens are embedded once
per unique token, the per-feature embedding sums are computed with grouped
numpy reductions over whole pair lists, and the resulting rows are memoised in
a process-wide :class:`~repro.features.cache.EncodingCache` so support/target
sets encoded once are reused across epochs, variants and experiments.  The
vectorised path is bit-identical to the per-pair reference implementation
(:meth:`PairEncoder.encode_pair` / :meth:`PairEncoder.encode_reference`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..data.records import EntityPair
from ..data.schema import Schema
from ..text.embeddings import HashedEmbedder, TokenEmbedder, missing_value_vector
from ..text.tokenizer import Tokenizer
from .cache import EncodingCache, get_default_cache
from .relational import RelationalFeatureExtractor

__all__ = ["EncodedPair", "EncodedBatch", "PairEncoder"]

# Fingerprint tokens for tokenizers/embedders that expose no fingerprint():
# monotonic, so they are never reused within a process (unlike ``id()``).
_ANONYMOUS_TOKENS = itertools.count()


@dataclass
class EncodedPair:
    """The encoded representation of one entity pair."""

    features: np.ndarray  # shape (F, D): token-embedding per relational feature
    label: Optional[int]
    pair_id: str
    feature_mask: np.ndarray  # shape (F,): 1.0 where the feature had tokens


@dataclass
class EncodedBatch:
    """A batch of encoded pairs stacked into arrays."""

    features: np.ndarray  # shape (N, F, D)
    labels: np.ndarray  # shape (N,), -1 for unlabeled
    pair_ids: List[str]
    feature_mask: np.ndarray  # shape (N, F)

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def embedding_dim(self) -> int:
        return self.features.shape[2]

    def labeled_view(self) -> "EncodedBatch":
        """Return the subset of the batch that carries labels."""
        mask = self.labels >= 0
        return EncodedBatch(
            features=self.features[mask],
            labels=self.labels[mask],
            pair_ids=[pid for pid, keep in zip(self.pair_ids, mask) if keep],
            feature_mask=self.feature_mask[mask],
        )

    def subset(self, indices: Sequence[int]) -> "EncodedBatch":
        """Return the pairs at ``indices`` as a new batch."""
        index_array = np.asarray(indices, dtype=np.int64)
        return EncodedBatch(
            features=self.features[index_array],
            labels=self.labels[index_array],
            pair_ids=[self.pair_ids[i] for i in index_array],
            feature_mask=self.feature_mask[index_array],
        )


class PairEncoder:
    """Encode entity pairs into ``(F, D)`` feature arrays.

    Parameters
    ----------
    schema:
        Aligned attribute schema shared by the source and target domain.
    embedder:
        Token embedder (defaults to the hashed FastText substitute).
    tokenizer:
        Tokeniser applied to attribute values (default: crop to 20 tokens).
    feature_kinds:
        Which contrastive features to produce (``("shared", "unique")`` by
        default; the ablation of Table 6 uses single-kind encoders).
    cache:
        Encoding cache to reuse per-pair feature rows across calls; defaults
        to the process-wide cache from :func:`~repro.features.cache.get_default_cache`.
    use_cache:
        Set ``False`` to always encode from scratch (diagnostics, benchmarks).
    """

    def __init__(self, schema: Schema, embedder: Optional[TokenEmbedder] = None,
                 tokenizer: Optional[Tokenizer] = None,
                 feature_kinds: Sequence[str] = ("shared", "unique"),
                 cache: Optional[EncodingCache] = None, use_cache: bool = True) -> None:
        self.schema = schema
        self.embedder = embedder if embedder is not None else HashedEmbedder()
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self.extractor = RelationalFeatureExtractor(schema, self.tokenizer, feature_kinds)
        self._missing = missing_value_vector(self.embedder.dim)
        # Explicit None check: an empty EncodingCache is falsy (it has __len__).
        self.cache: Optional[EncodingCache] = None
        if use_cache:
            self.cache = cache if cache is not None else get_default_cache()
        # Components without a fingerprint() get a fresh token per encoder
        # (never reused, unlike id()): cache entries are then private to this
        # encoder instead of potentially matching an unrelated component.
        self._fingerprint = "|".join((
            "schema:" + ",".join(schema.attributes),
            "kinds:" + ",".join(self.extractor.feature_kinds),
            self.tokenizer.fingerprint() if hasattr(self.tokenizer, "fingerprint")
            else f"tok@{next(_ANONYMOUS_TOKENS)}",
            self.embedder.fingerprint() if hasattr(self.embedder, "fingerprint")
            else f"emb@{next(_ANONYMOUS_TOKENS)}",
        ))

    @property
    def fingerprint(self) -> str:
        """Identity of this encoder's configuration (part of cache keys)."""
        return self._fingerprint

    @property
    def num_features(self) -> int:
        """``F``: number of relational features per pair."""
        return self.extractor.num_features

    @property
    def embedding_dim(self) -> int:
        """``D``: dimension of each feature's token embedding."""
        return self.embedder.dim

    @property
    def feature_names(self) -> List[str]:
        return self.extractor.names

    def encode_pair(self, pair: EntityPair) -> EncodedPair:
        """Encode one pair into its ``(F, D)`` feature matrix.

        Each feature's summed token embedding is L2-normalised so that feature
        vectors live on a common scale regardless of how many tokens the
        attribute value contains; the missing-value vector is unit-norm by
        construction, so present and missing features are comparable and the
        per-feature affine layers (Eq. 4) train stably.
        """
        relational = self.extractor(pair)
        features = np.empty((len(relational), self.embedder.dim), dtype=np.float64)
        mask = np.zeros(len(relational), dtype=np.float64)
        for index, feature in enumerate(relational):
            if feature.is_empty:
                features[index] = self._missing
            else:
                summed = self.embedder.embed_tokens(list(feature.tokens))
                norm = np.linalg.norm(summed)
                features[index] = summed / norm if norm > 0 else self._missing
                mask[index] = 1.0
        return EncodedPair(features=features, label=pair.label, pair_id=pair.pair_id,
                           feature_mask=mask)

    def encode_reference(self, pairs: Sequence[EntityPair]) -> EncodedBatch:
        """Per-pair reference encoding (the original, non-vectorised path).

        Kept for equivalence testing and benchmarking; :meth:`encode` must
        produce bit-identical output.
        """
        if len(pairs) == 0:
            return self._empty_batch()
        encoded = [self.encode_pair(pair) for pair in pairs]
        features = np.stack([item.features for item in encoded])
        labels = np.array([item.label if item.label is not None else -1 for item in encoded],
                          dtype=np.int64)
        mask = np.stack([item.feature_mask for item in encoded])
        return EncodedBatch(features=features, labels=labels,
                            pair_ids=[item.pair_id for item in encoded], feature_mask=mask)

    def encode(self, pairs: Sequence[EntityPair]) -> EncodedBatch:
        """Encode a sequence of pairs into a stacked :class:`EncodedBatch`.

        Cached pair rows are reused; the remaining pairs are encoded with the
        vectorised array path.  The output is bit-identical to
        :meth:`encode_reference`.
        """
        pairs = list(pairs)
        if not pairs:
            return self._empty_batch()
        num_pairs = len(pairs)
        features = np.empty((num_pairs, self.num_features, self.embedding_dim),
                            dtype=np.float64)
        mask = np.empty((num_pairs, self.num_features), dtype=np.float64)

        cache = self.cache
        keys: List[Tuple[Hashable, ...]] = []
        missing_rows: List[int] = []
        if cache is not None:
            attributes = self.schema.attributes
            for i, pair in enumerate(pairs):
                key = (self._fingerprint, pair.pair_id,
                       tuple(pair.left.value(a) for a in attributes),
                       tuple(pair.right.value(a) for a in attributes))
                keys.append(key)
                entry = cache.lookup(key)
                if entry is None:
                    missing_rows.append(i)
                else:
                    features[i] = entry[0]
                    mask[i] = entry[1]
        else:
            missing_rows = list(range(num_pairs))

        if missing_rows:
            fresh_features, fresh_mask = self._encode_arrays([pairs[i] for i in missing_rows])
            for j, i in enumerate(missing_rows):
                features[i] = fresh_features[j]
                mask[i] = fresh_mask[j]
                if cache is not None:
                    cache.store(keys[i], fresh_features[j], fresh_mask[j])

        labels = np.array([pair.label if pair.label is not None else -1 for pair in pairs],
                          dtype=np.int64)
        return EncodedBatch(features=features, labels=labels,
                            pair_ids=[pair.pair_id for pair in pairs], feature_mask=mask)

    def _empty_batch(self) -> EncodedBatch:
        empty = np.zeros((0, self.num_features, self.embedding_dim))
        return EncodedBatch(features=empty, labels=np.zeros(0, dtype=np.int64),
                            pair_ids=[], feature_mask=np.zeros((0, self.num_features)))

    def _encode_arrays(self, pairs: Sequence[EntityPair]) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised encoding of ``pairs`` into ``(N, F, D)`` + ``(N, F)`` arrays.

        Tokens are embedded once per unique token; the per-feature embedding
        sums run as grouped reductions (one per distinct token count), whose
        row-sequential accumulation order and batched-BLAS row norms are
        bit-identical to the sequential ``embed_tokens`` + ``np.linalg.norm``
        of :meth:`encode_pair`.
        """
        num_pairs = len(pairs)
        num_features, dim = self.num_features, self.embedding_dim
        flat_features = np.empty((num_pairs * num_features, dim), dtype=np.float64)
        flat_mask = np.zeros(num_pairs * num_features, dtype=np.float64)

        # Token ids per (pair, feature) slot, deduplicating tokens globally.
        token_ids: Dict[str, int] = {}
        unique_tokens: List[str] = []
        slots_by_length: Dict[int, Tuple[List[int], List[List[int]]]] = {}
        empty_slots: List[int] = []
        slot = 0
        for pair in pairs:
            for feature in self.extractor(pair):
                tokens = feature.tokens
                if not tokens:
                    empty_slots.append(slot)
                else:
                    ids = []
                    for token in tokens:
                        token_id = token_ids.get(token)
                        if token_id is None:
                            token_id = len(unique_tokens)
                            token_ids[token] = token_id
                            unique_tokens.append(token)
                        ids.append(token_id)
                    slots, id_lists = slots_by_length.setdefault(len(tokens), ([], []))
                    slots.append(slot)
                    id_lists.append(ids)
                slot += 1

        if empty_slots:
            flat_features[empty_slots] = self._missing

        if unique_tokens:
            token_matrix = self.embedder.embed_token_batch(unique_tokens)
            for length, (slots, id_lists) in slots_by_length.items():
                ids = np.asarray(id_lists, dtype=np.int64)  # (M, length)
                # Reducing axis 1 of the C-contiguous (M, length, D) gather
                # accumulates rows sequentially — the same order as the
                # token-by-token sum of TokenEmbedder.embed_tokens.
                summed = token_matrix[ids].sum(axis=1)
                # Batched row norms via BLAS dot, matching np.linalg.norm on
                # each 1-D row exactly.
                norms = np.sqrt(np.matmul(summed[:, None, :], summed[:, :, None]))[:, 0, 0]
                zero_norm = norms == 0.0
                safe_norms = np.where(zero_norm, 1.0, norms)
                rows = summed / safe_norms[:, None]
                if np.any(zero_norm):
                    rows[zero_norm] = self._missing
                flat_features[slots] = rows
                flat_mask[slots] = 1.0

        return (flat_features.reshape(num_pairs, num_features, dim),
                flat_mask.reshape(num_pairs, num_features))
