"""Pair encoding: entity pairs -> fixed-shape token-embedding feature tensors.

Following Eq. (3) of the paper, an entity pair is represented by ``F = 2|A|``
token-embedding features ``h = [h_1, ..., h_F]`` where each ``h_j`` is the sum
of the (fixed, pretrained-style) embeddings of that relational feature's word
tokens.  Features with no tokens — missing attribute values, challenges C1/C2 —
are encoded with a fixed normalised non-zero vector so that their per-feature
affine transformation still receives gradient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..data.records import EntityPair
from ..data.schema import Schema
from ..text.embeddings import HashedEmbedder, TokenEmbedder, missing_value_vector
from ..text.tokenizer import Tokenizer
from .relational import RelationalFeatureExtractor

__all__ = ["EncodedPair", "EncodedBatch", "PairEncoder"]


@dataclass
class EncodedPair:
    """The encoded representation of one entity pair."""

    features: np.ndarray  # shape (F, D): token-embedding per relational feature
    label: Optional[int]
    pair_id: str
    feature_mask: np.ndarray  # shape (F,): 1.0 where the feature had tokens


@dataclass
class EncodedBatch:
    """A batch of encoded pairs stacked into arrays."""

    features: np.ndarray  # shape (N, F, D)
    labels: np.ndarray  # shape (N,), -1 for unlabeled
    pair_ids: List[str]
    feature_mask: np.ndarray  # shape (N, F)

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def embedding_dim(self) -> int:
        return self.features.shape[2]

    def labeled_view(self) -> "EncodedBatch":
        """Return the subset of the batch that carries labels."""
        mask = self.labels >= 0
        return EncodedBatch(
            features=self.features[mask],
            labels=self.labels[mask],
            pair_ids=[pid for pid, keep in zip(self.pair_ids, mask) if keep],
            feature_mask=self.feature_mask[mask],
        )

    def subset(self, indices: Sequence[int]) -> "EncodedBatch":
        """Return the pairs at ``indices`` as a new batch."""
        index_array = np.asarray(indices, dtype=np.int64)
        return EncodedBatch(
            features=self.features[index_array],
            labels=self.labels[index_array],
            pair_ids=[self.pair_ids[i] for i in index_array],
            feature_mask=self.feature_mask[index_array],
        )


class PairEncoder:
    """Encode entity pairs into ``(F, D)`` feature arrays.

    Parameters
    ----------
    schema:
        Aligned attribute schema shared by the source and target domain.
    embedder:
        Token embedder (defaults to the hashed FastText substitute).
    tokenizer:
        Tokeniser applied to attribute values (default: crop to 20 tokens).
    feature_kinds:
        Which contrastive features to produce (``("shared", "unique")`` by
        default; the ablation of Table 6 uses single-kind encoders).
    """

    def __init__(self, schema: Schema, embedder: Optional[TokenEmbedder] = None,
                 tokenizer: Optional[Tokenizer] = None,
                 feature_kinds: Sequence[str] = ("shared", "unique")) -> None:
        self.schema = schema
        self.embedder = embedder if embedder is not None else HashedEmbedder()
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self.extractor = RelationalFeatureExtractor(schema, self.tokenizer, feature_kinds)
        self._missing = missing_value_vector(self.embedder.dim)

    @property
    def num_features(self) -> int:
        """``F``: number of relational features per pair."""
        return self.extractor.num_features

    @property
    def embedding_dim(self) -> int:
        """``D``: dimension of each feature's token embedding."""
        return self.embedder.dim

    @property
    def feature_names(self) -> List[str]:
        return self.extractor.names

    def encode_pair(self, pair: EntityPair) -> EncodedPair:
        """Encode one pair into its ``(F, D)`` feature matrix.

        Each feature's summed token embedding is L2-normalised so that feature
        vectors live on a common scale regardless of how many tokens the
        attribute value contains; the missing-value vector is unit-norm by
        construction, so present and missing features are comparable and the
        per-feature affine layers (Eq. 4) train stably.
        """
        relational = self.extractor(pair)
        features = np.empty((len(relational), self.embedder.dim), dtype=np.float64)
        mask = np.zeros(len(relational), dtype=np.float64)
        for index, feature in enumerate(relational):
            if feature.is_empty:
                features[index] = self._missing
            else:
                summed = self.embedder.embed_tokens(list(feature.tokens))
                norm = np.linalg.norm(summed)
                features[index] = summed / norm if norm > 0 else self._missing
                mask[index] = 1.0
        return EncodedPair(features=features, label=pair.label, pair_id=pair.pair_id,
                           feature_mask=mask)

    def encode(self, pairs: Sequence[EntityPair]) -> EncodedBatch:
        """Encode a sequence of pairs into a stacked :class:`EncodedBatch`."""
        if len(pairs) == 0:
            empty = np.zeros((0, self.num_features, self.embedding_dim))
            return EncodedBatch(features=empty, labels=np.zeros(0, dtype=np.int64),
                                pair_ids=[], feature_mask=np.zeros((0, self.num_features)))
        encoded = [self.encode_pair(pair) for pair in pairs]
        features = np.stack([item.features for item in encoded])
        labels = np.array([item.label if item.label is not None else -1 for item in encoded],
                          dtype=np.int64)
        mask = np.stack([item.feature_mask for item in encoded])
        return EncodedBatch(features=features, labels=labels,
                            pair_ids=[item.pair_id for item in encoded], feature_mask=mask)
