"""Feature pipeline: contrastive relational features and pair encoding."""

from .encoder import EncodedBatch, EncodedPair, PairEncoder
from .importance import FeatureImportance, ImportanceReport, aggregate_importance, top_attributes
from .relational import (
    RelationalFeature,
    RelationalFeatureExtractor,
    extract_relational_features,
    feature_names,
)

__all__ = [
    "RelationalFeature",
    "RelationalFeatureExtractor",
    "extract_relational_features",
    "feature_names",
    "PairEncoder",
    "EncodedPair",
    "EncodedBatch",
    "FeatureImportance",
    "ImportanceReport",
    "aggregate_importance",
    "top_attributes",
]
