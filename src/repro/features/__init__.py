"""Feature pipeline: contrastive relational features and pair encoding."""

from .cache import EncodingCache, get_default_cache, set_default_cache
from .encoder import EncodedBatch, EncodedPair, PairEncoder
from .importance import FeatureImportance, ImportanceReport, aggregate_importance, top_attributes
from .relational import (
    RelationalFeature,
    RelationalFeatureExtractor,
    extract_relational_features,
    feature_names,
)

__all__ = [
    "RelationalFeature",
    "RelationalFeatureExtractor",
    "extract_relational_features",
    "feature_names",
    "PairEncoder",
    "EncodedPair",
    "EncodedBatch",
    "EncodingCache",
    "get_default_cache",
    "set_default_cache",
    "FeatureImportance",
    "ImportanceReport",
    "aggregate_importance",
    "top_attributes",
]
