"""Feature-importance reporting (paper Table 4 and Table 5 support).

AdaMEL's transferable knowledge is the attention score per relational feature.
This module aggregates per-pair attention vectors into a ranked importance
report and maps important features back to their attributes, which Table 5
uses to retrain on "top attributes only".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["FeatureImportance", "ImportanceReport", "aggregate_importance", "top_attributes"]


@dataclass(frozen=True)
class FeatureImportance:
    """Importance (mean attention score) of one relational feature."""

    name: str
    score: float

    @property
    def attribute(self) -> str:
        """The attribute this feature belongs to (strips ``_shared``/``_unique``)."""
        for suffix in ("_shared", "_unique"):
            if self.name.endswith(suffix):
                return self.name[: -len(suffix)]
        return self.name


@dataclass
class ImportanceReport:
    """Ranked feature importances with helpers used by the experiments."""

    importances: List[FeatureImportance]

    def __post_init__(self) -> None:
        self.importances = sorted(self.importances, key=lambda fi: -fi.score)

    def __len__(self) -> int:
        return len(self.importances)

    def __iter__(self):
        return iter(self.importances)

    def top(self, k: int) -> List[FeatureImportance]:
        """The ``k`` highest-scoring features (Table 4 reports the top 5)."""
        return self.importances[:k]

    def score_of(self, feature_name: str) -> float:
        for importance in self.importances:
            if importance.name == feature_name:
                return importance.score
        raise KeyError(f"unknown feature {feature_name!r}")

    def as_dict(self) -> Dict[str, float]:
        return {importance.name: importance.score for importance in self.importances}

    def attribute_scores(self) -> Dict[str, float]:
        """Total importance per attribute (shared + unique scores summed)."""
        totals: Dict[str, float] = {}
        for importance in self.importances:
            totals[importance.attribute] = totals.get(importance.attribute, 0.0) + importance.score
        return totals

    def gini_coefficient(self) -> float:
        """Inequality of the importance distribution (the paper's "long tail").

        0 means all features equally important, values near 1 mean a few
        features dominate (as observed on Monitor in Table 4).
        """
        scores = np.sort(np.array([fi.score for fi in self.importances], dtype=np.float64))
        if scores.sum() <= 0 or len(scores) == 0:
            return 0.0
        n = len(scores)
        index = np.arange(1, n + 1)
        return float((2.0 * (index * scores).sum() / (n * scores.sum())) - (n + 1.0) / n)


def aggregate_importance(attention_scores: np.ndarray, feature_names: Sequence[str]
                         ) -> ImportanceReport:
    """Average per-pair attention vectors into an :class:`ImportanceReport`.

    Parameters
    ----------
    attention_scores:
        Array of shape ``(N, F)`` — attention score of each feature for each
        pair (each row sums to one).
    feature_names:
        The ``F`` feature names in column order.
    """
    scores = np.asarray(attention_scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"attention_scores must be 2-D (N, F), got shape {scores.shape}")
    if scores.shape[1] != len(feature_names):
        raise ValueError(
            f"feature_names length {len(feature_names)} does not match F={scores.shape[1]}"
        )
    means = scores.mean(axis=0) if scores.shape[0] else np.zeros(scores.shape[1])
    return ImportanceReport([FeatureImportance(name, float(score))
                             for name, score in zip(feature_names, means)])


def top_attributes(report: ImportanceReport, k: int) -> List[str]:
    """The ``k`` attributes with the highest total importance (Table 5 setup)."""
    ranked = sorted(report.attribute_scores().items(), key=lambda item: -item[1])
    return [attribute for attribute, _ in ranked[:k]]
