"""Contrastive relational features (Equation 2 of the paper).

Each attribute ``A`` of an entity pair ``(r, r')`` is parsed into two features:

* ``sim(A)`` — the word tokens shared by both records' values of ``A``;
* ``uni(A)`` — the tokens appearing in exactly one of the two values.

The similarity and uniqueness of an attribute give independent, complementary
evidence for linkage (the "original" vs "remix" example in Section 4.2), so
a pair with ``|A|`` attributes yields ``F = 2|A|`` relational features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..data.records import EntityPair
from ..data.schema import Schema
from ..text.tokenizer import Tokenizer

__all__ = ["RelationalFeature", "feature_names", "extract_relational_features", "RelationalFeatureExtractor"]

SHARED_SUFFIX = "shared"
UNIQUE_SUFFIX = "unique"


@dataclass(frozen=True)
class RelationalFeature:
    """One contrastive relational feature: an attribute and its token list."""

    attribute: str
    kind: str  # "shared" or "unique"
    tokens: Tuple[str, ...]

    @property
    def name(self) -> str:
        """Feature name as reported in the paper's Table 4, e.g. ``Page_title_shared``."""
        return f"{self.attribute}_{self.kind}"

    @property
    def is_empty(self) -> bool:
        return len(self.tokens) == 0


def feature_names(schema: Schema, feature_kinds: Sequence[str] = (SHARED_SUFFIX, UNIQUE_SUFFIX)
                  ) -> List[str]:
    """Ordered feature names for a schema: ``[A1_shared, A1_unique, A2_shared, ...]``."""
    names: List[str] = []
    for attribute in schema:
        for kind in feature_kinds:
            names.append(f"{attribute}_{kind}")
    return names


def extract_relational_features(pair: EntityPair, schema: Schema, tokenizer: Tokenizer,
                                feature_kinds: Sequence[str] = (SHARED_SUFFIX, UNIQUE_SUFFIX)
                                ) -> List[RelationalFeature]:
    """Extract the contrastive features of every schema attribute for a pair.

    Token multiplicity is ignored (set semantics), matching Eq. (2).  The
    order of tokens within a feature follows their first appearance in the
    left then right value so that extraction is deterministic.
    """
    features: List[RelationalFeature] = []
    for attribute in schema:
        left_tokens = tokenizer(pair.left.value(attribute))
        right_tokens = tokenizer(pair.right.value(attribute))
        left_set = set(left_tokens)
        right_set = set(right_tokens)
        shared_set = left_set & right_set
        ordered = left_tokens + [tok for tok in right_tokens if tok not in left_set]
        shared = tuple(tok for tok in ordered if tok in shared_set)
        unique = tuple(tok for tok in ordered if tok not in shared_set)
        for kind in feature_kinds:
            if kind == SHARED_SUFFIX:
                features.append(RelationalFeature(attribute, SHARED_SUFFIX, shared))
            elif kind == UNIQUE_SUFFIX:
                features.append(RelationalFeature(attribute, UNIQUE_SUFFIX, unique))
            else:
                raise ValueError(f"unknown feature kind {kind!r}")
    return features


class RelationalFeatureExtractor:
    """Configured extractor: schema + tokenizer + which contrastive kinds to keep.

    The ablation study (Table 6) compares using only ``shared``, only
    ``unique``, or both kinds of features; ``feature_kinds`` selects the mode.
    """

    def __init__(self, schema: Schema, tokenizer: Tokenizer = None,
                 feature_kinds: Sequence[str] = (SHARED_SUFFIX, UNIQUE_SUFFIX)) -> None:
        if not feature_kinds:
            raise ValueError("feature_kinds must not be empty")
        invalid = [kind for kind in feature_kinds if kind not in (SHARED_SUFFIX, UNIQUE_SUFFIX)]
        if invalid:
            raise ValueError(f"invalid feature kinds: {invalid}")
        self.schema = schema
        self.tokenizer = tokenizer if tokenizer is not None else Tokenizer()
        self.feature_kinds = tuple(feature_kinds)

    @property
    def num_features(self) -> int:
        """``F`` — the number of relational features per pair."""
        return len(self.schema) * len(self.feature_kinds)

    @property
    def names(self) -> List[str]:
        return feature_names(self.schema, self.feature_kinds)

    def __call__(self, pair: EntityPair) -> List[RelationalFeature]:
        return extract_relational_features(pair, self.schema, self.tokenizer, self.feature_kinds)

    def tokens_by_feature(self, pair: EntityPair) -> Dict[str, Tuple[str, ...]]:
        """Mapping of feature name to its token tuple (diagnostics/tests)."""
        return {feature.name: feature.tokens for feature in self(pair)}
