"""DeepMatcher baseline (Mudgal et al., SIGMOD 2018) — hybrid variant.

DeepMatcher represents each attribute value as an attention-weighted RNN
summary of its word embeddings, compares the two summaries of an attribute
(element-wise absolute difference and product), and classifies the
concatenated per-attribute similarity representations with a feed-forward
network.  The paper's experiments use the best-performing "hybrid" variant
(bidirectional RNN with attention); this reproduction keeps exactly that
structure on top of the :mod:`repro.nn` substrate, with batched tensor ops so
it runs efficiently on CPU.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.records import EntityPair
from ..nn import functional as F
from ..nn.attention import AdditiveAttention
from ..nn.layers import MLP
from ..nn.module import Module
from ..nn.recurrent import GRU
from ..nn.tensor import Tensor
from .common import BaselineConfig, SupervisedPairModel

__all__ = ["DeepMatcherNetwork", "DeepMatcher"]


class DeepMatcherNetwork(Module):
    """Attribute summarisation with attentive bi-GRU + similarity MLP."""

    # Forward wraps a contiguous reshape *view* of the caller's batch buffer,
    # so the shared training loop may capture and replay it.
    replay_safe = True

    def __init__(self, num_attributes: int, embedding_dim: int, hidden_dim: int,
                 classifier_hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.num_attributes = num_attributes
        self.embedding_dim = embedding_dim
        self.hidden_dim = hidden_dim
        self.summary_dim = 2 * hidden_dim  # bidirectional
        self.encoder = GRU(embedding_dim, hidden_dim, bidirectional=True, rng=rng)
        self.token_attention = AdditiveAttention(self.summary_dim, hidden_dim, rng=rng)
        # Similarity representation per attribute: [|left-right| ; left*right].
        self.classifier = MLP(num_attributes * 2 * self.summary_dim,
                              [classifier_hidden_dim, classifier_hidden_dim], 1,
                              activation="relu", rng=rng)

    def _summarize(self, tokens: Tensor) -> Tensor:
        """Summarise token matrices ``(B, L, D)`` into ``(B, 2H)`` vectors."""
        outputs, _ = self.encoder(tokens)
        weights = self.token_attention(outputs)  # (B, L)
        return (weights.unsqueeze(-1) * outputs).sum(axis=1)

    def forward(self, features: np.ndarray) -> Tensor:
        """``features``: (N, A, 2, L, D) per-attribute token matrices."""
        n, num_attrs, _, length, dim = features.shape
        flat = Tensor(features.reshape(n * num_attrs * 2, length, dim))
        summaries = self._summarize(flat)                              # (N*A*2, 2H)
        summaries = summaries.reshape(n, num_attrs, 2, self.summary_dim)
        left = summaries[:, :, 0, :]
        right = summaries[:, :, 1, :]
        similarity = F.concatenate([(left - right).abs(), left * right], axis=-1)
        flattened = similarity.reshape(n, num_attrs * 2 * self.summary_dim)
        return F.sigmoid(self.classifier(flattened).squeeze(-1))


class DeepMatcher(SupervisedPairModel):
    """DeepMatcher-hybrid with fixed (FastText-substitute) token embeddings."""

    name = "deepmatcher"

    def _encode_pairs(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        return self._pair_token_tensor(pairs)

    def _build_network(self, sample_input: np.ndarray, rng: np.random.Generator) -> Module:
        _, num_attrs, _, _, dim = sample_input.shape
        return DeepMatcherNetwork(num_attributes=num_attrs, embedding_dim=dim,
                                  hidden_dim=self.config.hidden_dim,
                                  classifier_hidden_dim=self.config.classifier_hidden_dim,
                                  rng=rng)
