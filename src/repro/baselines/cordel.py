"""CorDel baseline (Wang et al., 2020) — contrastive deep entity linkage.

CorDel departs from the "twin tower" architecture: before embedding, it
*compares and contrasts* the two attribute values, splitting their tokens into
the shared part and the differing part, so that small but critical differences
are not washed out by long common substrings.  The attention variant
(CorDel-Attention, the strongest on dirty data per the original paper and the
one used in the AdaMEL comparison) learns word-level attention within each
attribute group before classification.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..data.records import EntityPair
from ..nn import functional as F
from ..nn.attention import AdditiveAttention
from ..nn.layers import MLP, Linear
from ..nn.module import Module
from ..nn.tensor import Tensor
from .common import BaselineConfig, SupervisedPairModel

__all__ = ["CorDelNetwork", "CorDelAttention"]


class CorDelNetwork(Module):
    """Word-level attention over contrasted token groups + MLP classifier."""

    # Forward wraps a contiguous reshape *view* of the caller's batch buffer,
    # so the shared training loop may capture and replay it.
    replay_safe = True

    def __init__(self, num_attributes: int, embedding_dim: int, hidden_dim: int,
                 classifier_hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.num_attributes = num_attributes
        self.embedding_dim = embedding_dim
        self.hidden_dim = hidden_dim
        self.token_proj = Linear(embedding_dim, hidden_dim, rng=rng)
        self.word_attention = AdditiveAttention(hidden_dim, hidden_dim, rng=rng)
        # Two groups (shared / difference) per attribute.
        self.classifier = MLP(num_attributes * 2 * hidden_dim, [classifier_hidden_dim], 1,
                              activation="relu", rng=rng)

    def forward(self, features: np.ndarray) -> Tensor:
        """``features``: (N, A, 2, L, D) — per attribute the shared-token and
        difference-token matrices produced by the compare-and-contrast step."""
        n, num_attrs, groups, length, dim = features.shape
        flat = Tensor(features.reshape(n * num_attrs * groups, length, dim))
        projected = F.relu(self.token_proj(flat))                 # (B, L, H)
        weights = self.word_attention(projected)                  # (B, L)
        summaries = (weights.unsqueeze(-1) * projected).sum(axis=1)
        summaries = summaries.reshape(n, num_attrs * groups * self.hidden_dim)
        return F.sigmoid(self.classifier(summaries).squeeze(-1))


class CorDelAttention(SupervisedPairModel):
    """CorDel-Attention: contrast attribute values, attend over words, classify."""

    name = "cordel-attention"

    def _encode_pairs(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Compare-and-contrast encoding: (N, A, 2, L, D).

        Group 0 holds the tokens shared by both values of the attribute,
        group 1 the symmetric difference (tokens present in exactly one
        value) — the "contrast" signal CorDel is built around.
        """
        num_attrs = len(self.schema)
        length = self.config.tokens_per_attribute
        dim = self.embedder.dim
        out = np.zeros((len(pairs), num_attrs, 2, length, dim), dtype=np.float64)
        for i, pair in enumerate(pairs):
            for j, attribute in enumerate(self.schema):
                left_tokens = self.tokenizer(pair.left.value(attribute))
                right_tokens = self.tokenizer(pair.right.value(attribute))
                left_set, right_set = set(left_tokens), set(right_tokens)
                ordered = left_tokens + [tok for tok in right_tokens if tok not in left_set]
                shared = [tok for tok in ordered if tok in left_set and tok in right_set]
                difference = [tok for tok in ordered if (tok in left_set) ^ (tok in right_set)]
                out[i, j, 0] = self.embedder.embed_token_matrix(shared, length)
                out[i, j, 1] = self.embedder.embed_token_matrix(difference, length)
        return out

    def _build_network(self, sample_input: np.ndarray, rng: np.random.Generator) -> Module:
        _, num_attrs, _, _, dim = sample_input.shape
        return CorDelNetwork(num_attributes=num_attrs, embedding_dim=dim,
                             hidden_dim=self.config.hidden_dim,
                             classifier_hidden_dim=self.config.classifier_hidden_dim, rng=rng)
