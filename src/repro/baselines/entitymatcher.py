"""EntityMatcher baseline (Fu et al., IJCAI 2020) — hierarchical matching.

EntityMatcher matches heterogeneous records at three granularities: tokens are
soft-aligned *across attributes* (so a value that moved to a different column
can still be compared), token comparisons are aggregated per attribute, and an
entity-level representation feeds the classifier.  This reproduction keeps the
hierarchy — cross-attribute token alignment → attribute aggregation with a
bi-GRU → entity-level attention — in fully batched tensor operations.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.records import EntityPair
from ..nn import functional as F
from ..nn.attention import AdditiveAttention
from ..nn.layers import MLP, Linear
from ..nn.module import Module
from ..nn.recurrent import GRU
from ..nn.tensor import Tensor, recomputed_leaf
from .common import BaselineConfig, SupervisedPairModel

__all__ = ["EntityMatcherNetwork", "EntityMatcher"]


class EntityMatcherNetwork(Module):
    """Token-level cross-attribute alignment with hierarchical aggregation."""

    # Forward reads its input through recomputed leaves over a stable batch
    # buffer, so the shared training loop may capture and replay it.
    replay_safe = True

    def __init__(self, num_attributes: int, tokens_per_attribute: int, embedding_dim: int,
                 hidden_dim: int, classifier_hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.num_attributes = num_attributes
        self.tokens_per_attribute = tokens_per_attribute
        self.embedding_dim = embedding_dim
        self.hidden_dim = hidden_dim
        # Token comparison vector: [|t - aligned| ; t * aligned]  (2D per token).
        self.compare_proj = Linear(2 * embedding_dim, hidden_dim, rng=rng)
        self.attribute_encoder = GRU(hidden_dim, hidden_dim, bidirectional=True, rng=rng)
        self.attribute_attention = AdditiveAttention(2 * hidden_dim, hidden_dim, rng=rng)
        self.classifier = MLP(2 * 2 * hidden_dim, [classifier_hidden_dim], 1,
                              activation="relu", rng=rng)

    def _align(self, queries: Tensor, keys: Tensor) -> Tensor:
        """Soft-align each query token against all key tokens (cross-attribute)."""
        scores = (queries @ keys.transpose(0, 2, 1)) / float(np.sqrt(self.embedding_dim))
        weights = F.softmax(scores, axis=-1)
        return weights @ keys

    def _side_representation(self, own: Tensor, other: Tensor, batch: int) -> Tensor:
        """Compare one record's tokens against the other record and aggregate."""
        aligned = self._align(own, other)                                 # (N, T, D)
        comparison = F.concatenate([(own - aligned).abs(), own * aligned], axis=-1)
        projected = F.relu(self.compare_proj(comparison))                 # (N, T, H)
        per_attribute = projected.reshape(batch * self.num_attributes,
                                          self.tokens_per_attribute, self.hidden_dim)
        _, attribute_state = self.attribute_encoder(per_attribute)        # (N*A, 2H)
        attribute_state = attribute_state.reshape(batch, self.num_attributes,
                                                  2 * self.hidden_dim)
        weights = self.attribute_attention(attribute_state)               # (N, A)
        return (weights.unsqueeze(-1) * attribute_state).sum(axis=1)      # (N, 2H)

    def forward(self, features: np.ndarray) -> Tensor:
        """``features``: (N, A, 2, L, D) per-attribute token matrices."""
        n, num_attrs, _, length, dim = features.shape
        tokens = features.reshape(n, num_attrs, 2, length, dim)
        # The side slices reshape non-contiguous views (numpy must copy), so
        # wrap them as recomputed leaves: on a graph replay they re-read the
        # current contents of the caller's batch buffer.
        left = recomputed_leaf(
            lambda: tokens[:, :, 0].reshape(n, num_attrs * length, dim))
        right = recomputed_leaf(
            lambda: tokens[:, :, 1].reshape(n, num_attrs * length, dim))
        left_repr = self._side_representation(left, right, n)
        right_repr = self._side_representation(right, left, n)
        combined = F.concatenate([left_repr, right_repr], axis=-1)
        return F.sigmoid(self.classifier(combined).squeeze(-1))


class EntityMatcher(SupervisedPairModel):
    """Hierarchical heterogeneous matcher with cross-attribute token alignment."""

    name = "entitymatcher"

    def _encode_pairs(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        return self._pair_token_tensor(pairs)

    def _build_network(self, sample_input: np.ndarray, rng: np.random.Generator) -> Module:
        _, num_attrs, _, length, dim = sample_input.shape
        return EntityMatcherNetwork(num_attributes=num_attrs, tokens_per_attribute=length,
                                    embedding_dim=dim, hidden_dim=self.config.hidden_dim,
                                    classifier_hidden_dim=self.config.classifier_hidden_dim,
                                    rng=rng)
