"""Ditto baseline (Li et al., VLDB 2020) — language-model entity matcher.

Ditto serialises an entity pair into a single token sequence
(``[COL] attr [VAL] value ... [SEP] ...``), feeds it to a fine-tuned
pretrained Transformer and classifies the contextualised representation.  Its
optimisations include domain-knowledge injection, TF-IDF summarisation of long
values, and data augmentation (token span deletion).

Offline substitution (see DESIGN.md): the pretrained Transformer is replaced
by a single-block self-attention encoder trained from scratch on top of fixed
hashed token embeddings with learnable segment/structure embeddings.  The
serialisation format, the TF-IDF-style value summarisation and the span-
deletion augmentation are kept, so the baseline exercises the same pipeline
shape as the original system.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.records import EntityPair, Record
from ..nn import functional as F
from ..nn.attention import SelfAttentionEncoder
from ..nn.layers import MLP
from ..nn.module import Module, Parameter
from ..nn.tensor import Tensor
from .common import BaselineConfig, SupervisedPairModel

__all__ = ["DittoNetwork", "Ditto"]

_COL_MARKER = "[col]"
_VAL_MARKER = "[val]"
_SEP_MARKER = "[sep]"


class DittoNetwork(Module):
    """Self-attention encoder over the serialised pair + classification head."""

    def __init__(self, sequence_length: int, embedding_dim: int, classifier_hidden_dim: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.sequence_length = sequence_length
        self.embedding_dim = embedding_dim
        self.encoder = SelfAttentionEncoder(embedding_dim, rng=rng)
        # Learnable position embeddings stand in for the pretrained LM's.
        self.position_embedding = Parameter(rng.normal(0.0, 0.02, size=(sequence_length, embedding_dim)),
                                            name="position_embedding")
        self.classifier = MLP(embedding_dim, [classifier_hidden_dim], 1, activation="relu", rng=rng)

    def forward(self, features: np.ndarray) -> Tensor:
        """``features``: (N, T, D) serialised token embeddings."""
        tokens = Tensor(features) + self.position_embedding
        mask = (np.abs(features).sum(axis=-1) > 0).astype(np.float64)
        contextualised = self.encoder(tokens, mask=mask)
        # Mean-pool over non-padding positions (the [CLS]-style summary).
        mask_t = Tensor(mask)
        denom = Tensor(np.maximum(mask.sum(axis=-1, keepdims=True), 1.0))
        pooled = (contextualised * mask_t.unsqueeze(-1)).sum(axis=1) / denom
        return F.sigmoid(self.classifier(pooled).squeeze(-1))


class Ditto(SupervisedPairModel):
    """Ditto-style matcher: serialisation + contextual encoder + augmentation."""

    name = "ditto"

    def __init__(self, config: Optional[BaselineConfig] = None, embedder=None,
                 tokens_per_value: int = 4, augmentation_rate: float = 0.2,
                 summarize_values: bool = True) -> None:
        super().__init__(config=config, embedder=embedder)
        if tokens_per_value <= 0:
            raise ValueError("tokens_per_value must be positive")
        if not 0.0 <= augmentation_rate <= 1.0:
            raise ValueError("augmentation_rate must be in [0, 1]")
        self.tokens_per_value = tokens_per_value
        self.augmentation_rate = augmentation_rate
        self.summarize_values = summarize_values
        self._idf: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def _fit_idf(self, pairs: Sequence[EntityPair]) -> None:
        """Document frequencies used for TF-IDF value summarisation."""
        document_frequency: Counter = Counter()
        num_documents = 0
        for pair in pairs:
            for record in (pair.left, pair.right):
                for attribute in self.schema:
                    tokens = set(self.tokenizer(record.value(attribute)))
                    if tokens:
                        num_documents += 1
                        document_frequency.update(tokens)
        self._idf = {token: math.log((1 + num_documents) / (1 + freq)) + 1.0
                     for token, freq in document_frequency.items()}

    def _summarized_tokens(self, value: str) -> List[str]:
        """Keep the ``tokens_per_value`` highest-TF-IDF tokens of a value."""
        tokens = self.tokenizer(value)
        if not tokens:
            return []
        if not self.summarize_values or not self._idf:
            return tokens[: self.tokens_per_value]
        ranked = sorted(tokens, key=lambda tok: -self._idf.get(tok, 1.0))
        kept = set(ranked[: self.tokens_per_value])
        return [tok for tok in tokens if tok in kept][: self.tokens_per_value]

    def _serialize_record(self, record: Record) -> List[str]:
        tokens: List[str] = []
        for attribute in self.schema:
            tokens.append(_COL_MARKER)
            tokens.append(attribute.lower())
            tokens.append(_VAL_MARKER)
            tokens.extend(self._summarized_tokens(record.value(attribute)))
        return tokens

    @property
    def _sequence_length(self) -> int:
        per_record = len(self.schema) * (3 + self.tokens_per_value)
        return 2 * per_record + 1  # + [SEP]

    def _encode_pairs(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        length = self._sequence_length
        out = np.zeros((len(pairs), length, self.embedder.dim), dtype=np.float64)
        for i, pair in enumerate(pairs):
            tokens = (self._serialize_record(pair.left) + [_SEP_MARKER]
                      + self._serialize_record(pair.right))
            for position, token in enumerate(tokens[:length]):
                out[i, position] = self.embedder.embed_token(token)
        return out

    # ------------------------------------------------------------------ #
    # Augmentation (token span deletion)
    # ------------------------------------------------------------------ #
    def _augment(self, pairs: Sequence[EntityPair], rng: np.random.Generator) -> List[EntityPair]:
        augmented = list(pairs)
        for pair in pairs:
            if pair.label != 1 or rng.random() >= self.augmentation_rate:
                continue
            attribute = list(self.schema)[int(rng.integers(len(self.schema)))]
            value = pair.left.value(attribute)
            tokens = value.split()
            if len(tokens) <= 1:
                continue
            drop = int(rng.integers(len(tokens)))
            new_value = " ".join(tokens[:drop] + tokens[drop + 1:])
            new_left = pair.left.with_attributes({**pair.left.attributes, attribute: new_value})
            augmented.append(EntityPair(left=new_left, right=pair.right, label=pair.label,
                                        pair_id=f"{pair.pair_id}::aug"))
        return augmented

    # ------------------------------------------------------------------ #
    def fit(self, scenario) -> List[float]:  # type: ignore[override]
        # TF-IDF statistics must exist before encoding; compute them from the
        # training pairs once the schema/tokenizer are known, then defer to the
        # shared loop.  The base fit() sets schema/tokenizer/embedder before
        # calling _encode_pairs, so we hook via _augment which runs in between.
        self._pending_idf = True
        return super().fit(scenario)

    def _training_pairs(self, scenario) -> List[EntityPair]:  # type: ignore[override]
        pairs = super()._training_pairs(scenario)
        if getattr(self, "_pending_idf", False):
            self._fit_idf(pairs)
            self._pending_idf = False
        return pairs

    def _build_network(self, sample_input: np.ndarray, rng: np.random.Generator) -> Module:
        _, length, dim = sample_input.shape
        return DittoNetwork(sequence_length=length, embedding_dim=dim,
                            classifier_hidden_dim=self.config.classifier_hidden_dim, rng=rng)
