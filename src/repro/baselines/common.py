"""Shared infrastructure for the supervised deep baselines.

DeepMatcher, EntityMatcher, Ditto and CorDel are all *supervised* matchers:
they train on the labeled source-domain pairs only (this is exactly the
limitation the paper exposes in the MEL setting).  They share a training loop
— encode pairs into dense arrays, minimise binary cross-entropy with Adam —
and differ only in how a pair is encoded and which network consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.domain import MELScenario
from ..data.records import EntityPair
from ..data.sampling import BatchSampler
from ..data.schema import Schema
from ..eval.metrics import ClassificationReport, classification_report
from ..nn.graph import CompiledGraph, Tape
from ..nn.losses import binary_cross_entropy
from ..nn.module import Module
from ..nn.optim import Adam, clip_grad_norm
from ..nn.tensor import Tensor, no_grad
from ..text.embeddings import HashedEmbedder, TokenEmbedder
from ..text.tokenizer import Tokenizer
from ..utils.rng import spawn_rng

__all__ = ["BaselineConfig", "SupervisedPairModel"]


@dataclass(frozen=True)
class BaselineConfig:
    """Hyperparameters shared by the deep baselines.

    The paper fine-tunes each baseline per its original publication; these
    defaults are scaled-down equivalents so the comparison runs on CPU.
    """

    embedding_dim: int = 48
    tokens_per_attribute: int = 8
    hidden_dim: int = 32
    classifier_hidden_dim: int = 64
    learning_rate: float = 5e-3
    epochs: int = 20
    batch_size: int = 16
    grad_clip: float = 5.0
    seed: int = 0
    use_support_set: bool = False
    verbose: bool = False
    # Autograd execution for the training loop: "auto"/"replay" record the
    # per-step graph once and replay it for networks that declare themselves
    # ``replay_safe`` (see docs/autograd.md); "eager" forces the historical
    # rebuild-every-step behaviour.  Float64 replay is bit-exact with eager.
    execution: str = "auto"

    def __post_init__(self) -> None:
        for name in ("embedding_dim", "tokens_per_attribute", "hidden_dim",
                     "classifier_hidden_dim", "epochs", "batch_size"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.execution not in ("auto", "replay", "eager"):
            raise ValueError(
                f"execution must be 'auto', 'replay' or 'eager', got {self.execution!r}")


class SupervisedPairModel:
    """Base class: supervised entity matcher with a fit/predict interface.

    Subclasses implement :meth:`_encode_pairs` (pairs → numpy arrays) and
    :meth:`_build_network` (arrays' shapes → an ``nn.Module`` whose forward
    returns matching probabilities).
    """

    name: str = "baseline"

    def __init__(self, config: Optional[BaselineConfig] = None,
                 embedder: Optional[TokenEmbedder] = None) -> None:
        self.config = config or BaselineConfig()
        self._external_embedder = embedder
        self.embedder: Optional[TokenEmbedder] = None
        self.tokenizer: Optional[Tokenizer] = None
        self.schema: Optional[Schema] = None
        self.network: Optional[Module] = None
        self.loss_history: List[float] = []

    # ------------------------------------------------------------------ #
    # Hooks for subclasses
    # ------------------------------------------------------------------ #
    def _encode_pairs(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Encode pairs into the dense array the network consumes."""
        raise NotImplementedError

    def _build_network(self, sample_input: np.ndarray, rng: np.random.Generator) -> Module:
        """Construct the network given an example encoded batch."""
        raise NotImplementedError

    def _augment(self, pairs: Sequence[EntityPair], rng: np.random.Generator
                 ) -> List[EntityPair]:
        """Optional training-set augmentation (Ditto overrides this)."""
        return list(pairs)

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def _training_pairs(self, scenario: MELScenario) -> List[EntityPair]:
        pairs = list(scenario.source.pairs)
        if self.config.use_support_set and scenario.support is not None:
            pairs.extend(scenario.support.pairs)
        return pairs

    def fit(self, scenario: MELScenario) -> List[float]:
        """Train on the scenario's labeled pairs; returns per-epoch losses."""
        config = self.config
        scenario = scenario.align()
        self.schema = scenario.aligned_schema()
        self.tokenizer = Tokenizer(crop_size=config.tokens_per_attribute)
        self.embedder = self._external_embedder or HashedEmbedder(dim=config.embedding_dim,
                                                                  tokenizer=self.tokenizer)
        rng = spawn_rng(config.seed)
        train_pairs = self._augment(self._training_pairs(scenario), rng)
        labels = np.array([pair.label for pair in train_pairs], dtype=np.float64)
        encoded = self._encode_pairs(train_pairs)
        self.network = self._build_network(encoded, rng)
        optimizer = Adam(self.network.parameters(), lr=config.learning_rate,
                         flatten=True)

        # Graph replay (see docs/autograd.md): the per-step graph is static,
        # so for networks that declare their forward capture-safe
        # (``replay_safe``) we record it once per batch size — the network
        # reads its features through views of a stable batch buffer — and
        # replay it for every later step.  Float64 replay is bit-exact with
        # the eager loop below.
        use_replay = (config.execution in ("auto", "replay")
                      and getattr(self.network, "replay_safe", False))
        step_graphs: Dict[int, tuple] = {}

        def eager_step(indices: np.ndarray) -> float:
            batch_probs = self.network(self._slice(encoded, indices))
            loss = binary_cross_entropy(batch_probs, Tensor(labels[indices]))
            optimizer.zero_grad()
            loss.backward()
            if config.grad_clip > 0:
                clip_grad_norm(self.network.parameters(), config.grad_clip)
            optimizer.step()
            return float(loss.data)

        self.loss_history = []
        for epoch in range(config.epochs):
            sampler = BatchSampler(len(train_pairs), config.batch_size, shuffle=True,
                                   seed=config.seed * 997 + epoch)
            epoch_loss = 0.0
            batches = 0
            for indices in sampler:
                size = len(indices)
                entry = step_graphs.get(size) if use_replay else None
                if entry is not None:
                    graph, loss_t, feature_buffer, label_buffer = entry
                    np.take(encoded, np.asarray(indices, dtype=np.int64), axis=0,
                            out=feature_buffer)
                    label_buffer[...] = labels[indices]
                    graph.step()
                    if config.grad_clip > 0:
                        clip_grad_norm(self.network.parameters(), config.grad_clip)
                    optimizer.step()
                    epoch_loss += float(loss_t.data)
                elif use_replay and len(step_graphs) < 8:
                    # Record a graph for this batch size; the capture run is
                    # this step's forward pass.
                    feature_buffer = np.array(self._slice(encoded, indices))
                    label_buffer = np.array(labels[indices])
                    tape = Tape()
                    with tape:
                        probs = self.network(feature_buffer)
                        loss = binary_cross_entropy(probs, Tensor(label_buffer))
                    graph = CompiledGraph(tape, inputs={}, loss=loss)
                    step_graphs[size] = (graph, loss, feature_buffer, label_buffer)
                    optimizer.zero_grad()
                    loss.backward()
                    if config.grad_clip > 0:
                        clip_grad_norm(self.network.parameters(), config.grad_clip)
                    optimizer.step()
                    epoch_loss += float(loss.data)
                else:
                    epoch_loss += eager_step(indices)
                batches += 1
            self.loss_history.append(epoch_loss / max(batches, 1))
            if config.verbose:
                print(f"[{self.name}] epoch {epoch + 1}/{config.epochs} "
                      f"loss={self.loss_history[-1]:.4f}")
        return self.loss_history

    @staticmethod
    def _slice(encoded: np.ndarray, indices: np.ndarray) -> np.ndarray:
        return encoded[np.asarray(indices, dtype=np.int64)]

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def predict_proba(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Matching probabilities for ``pairs``."""
        if self.network is None:
            raise RuntimeError("the model must be fitted before inference; call fit() first")
        if len(pairs) == 0:
            return np.zeros(0)
        encoded = self._encode_pairs(pairs)
        with no_grad():
            probabilities = self.network(encoded)
        return probabilities.data.copy()

    def predict(self, pairs: Sequence[EntityPair], threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(pairs) >= threshold).astype(np.int64)

    def evaluate(self, pairs: Sequence[EntityPair], threshold: float = 0.5) -> ClassificationReport:
        labeled = [pair for pair in pairs if pair.is_labeled]
        if not labeled:
            raise ValueError("evaluate() requires labeled pairs")
        scores = self.predict_proba(labeled)
        labels = np.array([pair.label for pair in labeled], dtype=np.int64)
        return classification_report(labels, scores, threshold=threshold)

    def num_parameters(self) -> int:
        if self.network is None:
            raise RuntimeError("the model must be fitted first")
        return self.network.num_parameters()

    # ------------------------------------------------------------------ #
    # Shared encoding helpers
    # ------------------------------------------------------------------ #
    def _token_matrix(self, value: str) -> np.ndarray:
        """(L, D) matrix of the value's token embeddings, zero-padded."""
        tokens = self.tokenizer(value)
        return self.embedder.embed_token_matrix(tokens, self.config.tokens_per_attribute)

    def _pair_token_tensor(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Encode pairs as ``(N, |A|, 2, L, D)`` per-attribute token matrices."""
        num_attrs = len(self.schema)
        length = self.config.tokens_per_attribute
        dim = self.embedder.dim
        out = np.zeros((len(pairs), num_attrs, 2, length, dim), dtype=np.float64)
        for i, pair in enumerate(pairs):
            for j, attribute in enumerate(self.schema):
                out[i, j, 0] = self._token_matrix(pair.left.value(attribute))
                out[i, j, 1] = self._token_matrix(pair.right.value(attribute))
        return out
