"""Baseline entity-linkage systems used in the paper's evaluation.

All baselines expose the same ``fit(scenario)`` / ``predict_proba(pairs)``
interface as the AdaMEL variants so they can be swapped into any experiment.
"""

from .common import BaselineConfig, SupervisedPairModel
from .cordel import CorDelAttention, CorDelNetwork
from .deepmatcher import DeepMatcher, DeepMatcherNetwork
from .ditto import Ditto, DittoNetwork
from .entitymatcher import EntityMatcher, EntityMatcherNetwork
from .tler import TLER, TLERConfig

__all__ = [
    "BaselineConfig",
    "SupervisedPairModel",
    "TLER",
    "TLERConfig",
    "DeepMatcher",
    "DeepMatcherNetwork",
    "EntityMatcher",
    "EntityMatcherNetwork",
    "Ditto",
    "DittoNetwork",
    "CorDelAttention",
    "CorDelNetwork",
]
