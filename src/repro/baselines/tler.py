"""TLER — non-deep transfer learning for entity resolution.

Thirumuruganathan et al. (2018) transfer entity-resolution models across
datasets by (i) mapping every pair into a *standard feature space* of classic
string similarities computed per attribute and (ii) reusing the labeled data
of the seen domain (optionally together with any labeled data from the new
domain) to train a shallow classifier.  This reproduction uses the similarity
measures in :mod:`repro.text.similarity` and a logistic-regression classifier
trained with gradient descent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.domain import MELScenario
from ..data.records import EntityPair
from ..data.schema import Schema
from ..eval.metrics import ClassificationReport, classification_report
from ..text.similarity import SIMILARITY_FUNCTIONS, similarity_vector
from ..utils.rng import spawn_rng

__all__ = ["TLERConfig", "TLER"]


@dataclass(frozen=True)
class TLERConfig:
    """Hyperparameters of the TLER baseline."""

    measures: Tuple[str, ...] = ("jaccard", "overlap", "dice", "levenshtein",
                                 "jaro_winkler", "monge_elkan", "cosine", "exact", "length_diff")
    learning_rate: float = 0.1
    epochs: int = 200
    l2_penalty: float = 1e-3
    use_support_set: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        # Accept any iterable of measure names; the tuple form is also what
        # the similarity memo uses as (part of) its hashable cache key.
        object.__setattr__(self, "measures", tuple(self.measures))
        unknown = [m for m in self.measures if m not in SIMILARITY_FUNCTIONS]
        if unknown:
            raise ValueError(f"unknown similarity measures: {unknown}")
        if self.learning_rate <= 0 or self.epochs <= 0:
            raise ValueError("learning_rate and epochs must be positive")


class TLER:
    """Feature-engineered transfer baseline (logistic regression on similarities)."""

    name = "tler"

    def __init__(self, config: Optional[TLERConfig] = None) -> None:
        self.config = config or TLERConfig()
        self.schema: Optional[Schema] = None
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self._feature_mean: Optional[np.ndarray] = None
        self._feature_std: Optional[np.ndarray] = None

    # Similarity measures are pure functions of the two value strings, and
    # attribute values repeat heavily across pairs, models and scenario modes
    # (entity names recur; schema alignment yields many empty values), so the
    # per-value-pair vectors are memoized process-wide, keyed by the measure
    # tuple alongside both strings.  Bounded so a long-running process that
    # sweeps many generated corpora cannot grow it without limit.
    _sim_cache: Dict[Tuple[Tuple[str, ...], str, str], np.ndarray] = {}
    _SIM_CACHE_MAX = 200_000

    # ------------------------------------------------------------------ #
    def _featurize(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        """Standard feature space: per-attribute similarity vectors, concatenated."""
        assert self.schema is not None
        measures = self.config.measures
        cache = self._sim_cache
        features = np.zeros((len(pairs), len(self.schema) * len(measures)))
        for i, pair in enumerate(pairs):
            blocks: List[np.ndarray] = []
            for attribute in self.schema:
                left, right = pair.values(attribute)
                key = (measures, left, right)
                vector = cache.get(key)
                if vector is None:
                    vector = similarity_vector(left, right, measures)
                    if len(cache) < self._SIM_CACHE_MAX:
                        cache[key] = vector
                blocks.append(vector)
            features[i] = np.concatenate(blocks)
        return features

    def _normalize(self, features: np.ndarray, fit: bool = False) -> np.ndarray:
        if fit:
            self._feature_mean = features.mean(axis=0)
            self._feature_std = features.std(axis=0) + 1e-8
        return (features - self._feature_mean) / self._feature_std

    # ------------------------------------------------------------------ #
    def fit(self, scenario: MELScenario) -> List[float]:
        """Train on the source domain (plus the support set, TLER's reuse step)."""
        config = self.config
        scenario = scenario.align()
        self.schema = scenario.aligned_schema()
        pairs = list(scenario.source.pairs)
        if config.use_support_set and scenario.support is not None:
            pairs.extend(scenario.support.pairs)
        labels = np.array([pair.label for pair in pairs], dtype=np.float64)
        features = self._normalize(self._featurize(pairs), fit=True)

        rng = spawn_rng(config.seed)
        self.weights = rng.normal(0.0, 0.01, size=features.shape[1])
        self.bias = 0.0
        losses: List[float] = []
        n = len(pairs)
        for _ in range(config.epochs):
            logits = np.clip(features @ self.weights + self.bias, -30.0, 30.0)
            probabilities = 1.0 / (1.0 + np.exp(-logits))
            error = probabilities - labels
            grad_w = features.T @ error / n + config.l2_penalty * self.weights
            grad_b = float(error.mean())
            self.weights -= config.learning_rate * grad_w
            self.bias -= config.learning_rate * grad_b
            eps = 1e-9
            loss = float(-(labels * np.log(probabilities + eps)
                           + (1 - labels) * np.log(1 - probabilities + eps)).mean())
            losses.append(loss)
        return losses

    def predict_proba(self, pairs: Sequence[EntityPair]) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("TLER must be fitted before inference")
        if len(pairs) == 0:
            return np.zeros(0)
        features = self._normalize(self._featurize(pairs), fit=False)
        logits = np.clip(features @ self.weights + self.bias, -30.0, 30.0)
        return 1.0 / (1.0 + np.exp(-logits))

    def predict(self, pairs: Sequence[EntityPair], threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(pairs) >= threshold).astype(np.int64)

    def evaluate(self, pairs: Sequence[EntityPair], threshold: float = 0.5) -> ClassificationReport:
        labeled = [pair for pair in pairs if pair.is_labeled]
        if not labeled:
            raise ValueError("evaluate() requires labeled pairs")
        scores = self.predict_proba(labeled)
        labels = np.array([pair.label for pair in labeled], dtype=np.int64)
        return classification_report(labels, scores, threshold=threshold)

    def num_parameters(self) -> int:
        if self.weights is None:
            raise RuntimeError("TLER must be fitted first")
        return int(self.weights.size + 1)
