"""Evaluation: metrics, model comparison harness, projections, reporting."""

from .evaluation import EvaluationResult, compare_models, evaluate_model
from .metrics import (
    ClassificationReport,
    accuracy,
    average_precision,
    best_f1,
    classification_report,
    confusion_counts,
    f1_at_threshold,
    pr_auc,
    precision_recall_curve,
    precision_recall_f1,
)
from .projection import domain_alignment_score, pca_project, tsne_project
from .reporting import format_results_table, format_series, format_table

__all__ = [
    "pr_auc",
    "average_precision",
    "precision_recall_curve",
    "precision_recall_f1",
    "f1_at_threshold",
    "best_f1",
    "accuracy",
    "confusion_counts",
    "ClassificationReport",
    "classification_report",
    "EvaluationResult",
    "evaluate_model",
    "compare_models",
    "pca_project",
    "tsne_project",
    "domain_alignment_score",
    "format_table",
    "format_results_table",
    "format_series",
]
