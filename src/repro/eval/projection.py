"""Low-dimensional projections of attention vectors (paper Figure 7).

Figure 7 visualises the feature-attention vectors of source- and target-domain
pairs with t-SNE to show that adaptation (λ→0.98) aligns the two domains.
This module provides PCA and a light-weight t-SNE implementation, plus a
quantitative *domain alignment score* so the experiment can assert the claim
without eyeballing a plot.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..utils.rng import SeedLike, spawn_rng

__all__ = ["pca_project", "tsne_project", "domain_alignment_score"]


def pca_project(points: np.ndarray, dim: int = 2) -> np.ndarray:
    """Project ``points`` (N, F) to ``dim`` dimensions with PCA."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    if dim <= 0 or dim > points.shape[1]:
        raise ValueError(f"dim must be in [1, {points.shape[1]}], got {dim}")
    centered = points - points.mean(axis=0, keepdims=True)
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:dim].T


def _pairwise_squared_distances(points: np.ndarray) -> np.ndarray:
    squared = np.sum(points ** 2, axis=1)
    distances = squared[:, None] + squared[None, :] - 2.0 * points @ points.T
    np.fill_diagonal(distances, 0.0)
    return np.maximum(distances, 0.0)


def _joint_probabilities(distances: np.ndarray, perplexity: float) -> np.ndarray:
    """Binary-search per-point bandwidths to match ``perplexity``; symmetrise."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    conditional = np.zeros((n, n))
    for i in range(n):
        beta_low, beta_high = 1e-20, 1e20
        beta = 1.0
        row = np.delete(distances[i], i)
        for _ in range(50):
            exponent = np.exp(-row * beta)
            total = exponent.sum()
            if total <= 0:
                beta /= 2.0
                continue
            probabilities = exponent / total
            entropy = -np.sum(probabilities * np.log(np.maximum(probabilities, 1e-12)))
            if abs(entropy - target_entropy) < 1e-4:
                break
            if entropy > target_entropy:
                beta_low = beta
                beta = beta * 2 if beta_high >= 1e20 else (beta + beta_high) / 2
            else:
                beta_high = beta
                beta = beta / 2 if beta_low <= 1e-20 else (beta + beta_low) / 2
        full = np.insert(probabilities, i, 0.0)
        conditional[i] = full
    joint = (conditional + conditional.T) / (2.0 * n)
    return np.maximum(joint, 1e-12)


def tsne_project(points: np.ndarray, dim: int = 2, perplexity: float = 15.0,
                 iterations: int = 250, learning_rate: float = 100.0,
                 seed: SeedLike = 0) -> np.ndarray:
    """A compact t-SNE (gradient descent on the KL between P and Q).

    This is a faithful but unoptimised implementation suitable for the few
    hundred attention vectors the Figure 7 experiment projects.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    n = points.shape[0]
    if n < 5:
        raise ValueError("tsne_project needs at least 5 points")
    perplexity = min(perplexity, (n - 1) / 3.0)
    rng = spawn_rng(seed)

    # Optional PCA pre-reduction for stability, as standard t-SNE pipelines do.
    reduced = pca_project(points, dim=min(points.shape[1], 10)) if points.shape[1] > 10 else points
    joint_p = _joint_probabilities(_pairwise_squared_distances(reduced), perplexity)

    embedding = rng.normal(0.0, 1e-2, size=(n, dim))
    velocity = np.zeros_like(embedding)
    momentum = 0.5
    for iteration in range(iterations):
        distances = _pairwise_squared_distances(embedding)
        inv = 1.0 / (1.0 + distances)
        np.fill_diagonal(inv, 0.0)
        q = inv / np.maximum(inv.sum(), 1e-12)
        q = np.maximum(q, 1e-12)

        pq_diff = (joint_p - q) * inv
        gradient = 4.0 * ((np.diag(pq_diff.sum(axis=1)) - pq_diff) @ embedding)

        momentum = 0.5 if iteration < 100 else 0.8
        velocity = momentum * velocity - learning_rate * gradient
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0, keepdims=True)
    return embedding


def domain_alignment_score(source_points: np.ndarray, target_points: np.ndarray,
                           num_neighbors: int = 5) -> float:
    """Quantify how well two point clouds are mixed (1 = indistinguishable).

    For every point we look at its ``num_neighbors`` nearest neighbours and
    measure the fraction that come from the *other* domain; the score is that
    fraction normalised by its expectation under perfect mixing.  Well-aligned
    attention spaces (λ=0.98 in Fig. 7) score close to 1, unadapted ones
    (λ=0) score close to 0.
    """
    source_points = np.asarray(source_points, dtype=np.float64)
    target_points = np.asarray(target_points, dtype=np.float64)
    if source_points.ndim != 2 or target_points.ndim != 2:
        raise ValueError("inputs must be 2-D arrays")
    if len(source_points) == 0 or len(target_points) == 0:
        raise ValueError("both domains must contain points")
    points = np.vstack([source_points, target_points])
    labels = np.concatenate([np.zeros(len(source_points)), np.ones(len(target_points))])
    n = len(points)
    k = min(num_neighbors, n - 1)
    distances = _pairwise_squared_distances(points)
    np.fill_diagonal(distances, np.inf)
    cross_fractions = np.empty(n)
    for i in range(n):
        neighbors = np.argpartition(distances[i], k)[:k]
        cross_fractions[i] = np.mean(labels[neighbors] != labels[i])
    expected = np.empty(n)
    expected[labels == 0] = len(target_points) / (n - 1)
    expected[labels == 1] = len(source_points) / (n - 1)
    ratio = cross_fractions.mean() / expected.mean()
    return float(min(ratio, 1.0))
