"""Plain-text table formatting for experiment outputs.

Every benchmark harness prints the rows/series of the corresponding paper
table or figure; these helpers render them consistently.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_results_table", "format_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None, float_format: str = "{:.4f}") -> str:
    """Render a monospace table with aligned columns."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_results_table(results: Mapping[str, Mapping[str, float]], metric_order: Optional[Sequence[str]] = None,
                         title: Optional[str] = None) -> str:
    """Render ``{method: {column: value}}`` as a table with methods as rows."""
    if not results:
        return title or ""
    columns: List[str] = list(metric_order) if metric_order else sorted(
        {column for values in results.values() for column in values})
    headers = ["method"] + columns
    rows = [[method] + [values.get(column, float("nan")) for column in columns]
            for method, values in results.items()]
    return format_table(headers, rows, title=title)


def format_series(x_label: str, x_values: Sequence[object],
                  series: Mapping[str, Sequence[float]], title: Optional[str] = None) -> str:
    """Render figure-style series (one column per named series)."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(x_values):
        row: List[object] = [x]
        for name in series:
            values = series[name]
            row.append(values[index] if index < len(values) else float("nan"))
        rows.append(row)
    return format_table(headers, rows, title=title)
