"""Model-agnostic evaluation harness.

Every model in this library — the AdaMEL variants and all baselines — exposes
``fit(scenario)`` and ``predict_proba(pairs)``.  :func:`evaluate_model` runs
that protocol on a :class:`~repro.data.domain.MELScenario` and returns the
metric bundle; :func:`compare_models` runs several models on the same scenario
which is the shape of the paper's Figure 6 / Tables 8-9.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..data.domain import MELScenario
from .metrics import ClassificationReport, classification_report

__all__ = ["EvaluationResult", "evaluate_model", "compare_models"]


@dataclass
class EvaluationResult:
    """The outcome of fitting and scoring one model on one scenario."""

    model_name: str
    scenario_name: str
    report: ClassificationReport
    fit_seconds: float
    predict_seconds: float

    @property
    def pr_auc(self) -> float:
        return self.report.pr_auc

    @property
    def f1(self) -> float:
        return self.report.f1

    def as_dict(self) -> Dict[str, float]:
        payload = self.report.as_dict()
        payload.update({
            "model": self.model_name,
            "scenario": self.scenario_name,
            "fit_seconds": self.fit_seconds,
            "predict_seconds": self.predict_seconds,
        })
        return payload


def evaluate_model(model, scenario: MELScenario, model_name: Optional[str] = None,
                   threshold: float = 0.5) -> EvaluationResult:
    """Fit ``model`` on the scenario and score it on the scenario's test split."""
    name = model_name or getattr(model, "variant", None) or type(model).__name__
    start = time.perf_counter()
    model.fit(scenario)
    fit_seconds = time.perf_counter() - start

    labeled = [pair for pair in scenario.test if pair.is_labeled]
    if not labeled:
        raise ValueError("scenario test split has no labeled pairs")
    start = time.perf_counter()
    scores = np.asarray(model.predict_proba(labeled), dtype=np.float64)
    predict_seconds = time.perf_counter() - start
    labels = np.array([pair.label for pair in labeled], dtype=np.int64)
    report = classification_report(labels, scores, threshold=threshold)
    return EvaluationResult(model_name=name, scenario_name=scenario.name, report=report,
                            fit_seconds=fit_seconds, predict_seconds=predict_seconds)


def compare_models(model_factories: Mapping[str, Callable[[], object]], scenario: MELScenario,
                   threshold: float = 0.5) -> Dict[str, EvaluationResult]:
    """Evaluate several freshly constructed models on the same scenario.

    ``model_factories`` maps a display name to a zero-argument callable
    returning an unfitted model, so each method trains from scratch.
    """
    results: Dict[str, EvaluationResult] = {}
    for name, factory in model_factories.items():
        model = factory()
        results[name] = evaluate_model(model, scenario, model_name=name, threshold=threshold)
    return results
