"""Evaluation metrics: precision-recall curves, PRAUC, F1.

The paper evaluates multi-source entity linkage with PRAUC (area under the
precision-recall curve, computed as average precision), which is robust to the
heavy class imbalance of the Monitor dataset, and reports F1 for the
single-domain benchmark comparison (Table 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "precision_recall_curve",
    "average_precision",
    "pr_auc",
    "precision_recall_f1",
    "f1_at_threshold",
    "best_f1",
    "confusion_counts",
    "accuracy",
    "ClassificationReport",
    "classification_report",
]


def _validate(labels: np.ndarray, scores: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels, dtype=np.int64).reshape(-1)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError(f"labels and scores must align, got {labels.shape} vs {scores.shape}")
    if labels.size == 0:
        raise ValueError("cannot compute metrics on empty inputs")
    if not np.isin(labels, (0, 1)).all():
        raise ValueError("labels must be binary (0/1)")
    return labels, scores


def precision_recall_curve(labels: Sequence[int], scores: Sequence[float]
                           ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(precision, recall, thresholds)`` sorted by decreasing score.

    Matches scikit-learn's convention: one point per distinct threshold plus
    the final (precision=1, recall=0) anchor.
    """
    labels_arr, scores_arr = _validate(np.asarray(labels), np.asarray(scores))
    order = np.argsort(-scores_arr, kind="mergesort")
    sorted_scores = scores_arr[order]
    sorted_labels = labels_arr[order]

    # Indices where the threshold changes (last occurrence of each score).
    distinct = np.where(np.diff(sorted_scores))[0]
    threshold_idx = np.append(distinct, sorted_labels.size - 1)

    true_positives = np.cumsum(sorted_labels)[threshold_idx]
    false_positives = np.cumsum(1 - sorted_labels)[threshold_idx]
    total_positives = sorted_labels.sum()

    precision = np.where(true_positives + false_positives > 0,
                         true_positives / np.maximum(true_positives + false_positives, 1), 0.0)
    recall = true_positives / total_positives if total_positives > 0 else np.zeros_like(true_positives,
                                                                                        dtype=np.float64)
    thresholds = sorted_scores[threshold_idx]

    precision = np.concatenate(([1.0], precision))
    recall = np.concatenate(([0.0], recall))
    return precision, recall, thresholds


def average_precision(labels: Sequence[int], scores: Sequence[float]) -> float:
    """Average precision = sum over thresholds of (ΔR · P) — the PRAUC the paper reports."""
    labels_arr, scores_arr = _validate(np.asarray(labels), np.asarray(scores))
    if labels_arr.sum() == 0:
        return 0.0
    precision, recall, _ = precision_recall_curve(labels_arr, scores_arr)
    return float(np.sum(np.diff(recall) * precision[1:]))


def pr_auc(labels: Sequence[int], scores: Sequence[float]) -> float:
    """Alias of :func:`average_precision` (the metric called PRAUC in the paper)."""
    return average_precision(labels, scores)


def confusion_counts(labels: Sequence[int], predictions: Sequence[int]) -> Dict[str, int]:
    """Return true/false positive/negative counts."""
    labels_arr = np.asarray(labels, dtype=np.int64).reshape(-1)
    preds_arr = np.asarray(predictions, dtype=np.int64).reshape(-1)
    if labels_arr.shape != preds_arr.shape:
        raise ValueError("labels and predictions must have the same length")
    return {
        "tp": int(np.sum((labels_arr == 1) & (preds_arr == 1))),
        "fp": int(np.sum((labels_arr == 0) & (preds_arr == 1))),
        "tn": int(np.sum((labels_arr == 0) & (preds_arr == 0))),
        "fn": int(np.sum((labels_arr == 1) & (preds_arr == 0))),
    }


def precision_recall_f1(labels: Sequence[int], predictions: Sequence[int]
                        ) -> Tuple[float, float, float]:
    """Precision, recall and F1 of hard 0/1 predictions."""
    counts = confusion_counts(labels, predictions)
    tp, fp, fn = counts["tp"], counts["fp"], counts["fn"]
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1


def f1_at_threshold(labels: Sequence[int], scores: Sequence[float], threshold: float = 0.5) -> float:
    """F1 after thresholding scores at ``threshold``."""
    labels_arr, scores_arr = _validate(np.asarray(labels), np.asarray(scores))
    predictions = (scores_arr >= threshold).astype(np.int64)
    return precision_recall_f1(labels_arr, predictions)[2]


def best_f1(labels: Sequence[int], scores: Sequence[float]) -> Tuple[float, float]:
    """Best F1 over all thresholds and the threshold achieving it.

    Deep EM papers (DeepMatcher, Ditto) tune the decision threshold on a
    validation set; ``best_f1`` provides the threshold-free upper bound used
    by the Table 7 comparison.
    """
    labels_arr, scores_arr = _validate(np.asarray(labels), np.asarray(scores))
    precision, recall, thresholds = precision_recall_curve(labels_arr, scores_arr)
    precision, recall = precision[1:], recall[1:]
    denom = precision + recall
    f1 = np.where(denom > 0, 2 * precision * recall / np.maximum(denom, 1e-12), 0.0)
    best_index = int(np.argmax(f1))
    return float(f1[best_index]), float(thresholds[best_index])


def accuracy(labels: Sequence[int], predictions: Sequence[int]) -> float:
    """Fraction of correct hard predictions."""
    labels_arr = np.asarray(labels, dtype=np.int64).reshape(-1)
    preds_arr = np.asarray(predictions, dtype=np.int64).reshape(-1)
    if labels_arr.size == 0:
        raise ValueError("cannot compute accuracy on empty inputs")
    return float(np.mean(labels_arr == preds_arr))


@dataclass(frozen=True)
class ClassificationReport:
    """Bundle of the metrics reported across the paper's experiments."""

    pr_auc: float
    f1: float
    best_f1: float
    best_threshold: float
    precision: float
    recall: float
    accuracy: float
    num_pairs: int
    positive_rate: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "pr_auc": self.pr_auc,
            "f1": self.f1,
            "best_f1": self.best_f1,
            "best_threshold": self.best_threshold,
            "precision": self.precision,
            "recall": self.recall,
            "accuracy": self.accuracy,
            "num_pairs": self.num_pairs,
            "positive_rate": self.positive_rate,
        }


def classification_report(labels: Sequence[int], scores: Sequence[float],
                          threshold: float = 0.5) -> ClassificationReport:
    """Compute the full metric bundle from scores."""
    labels_arr, scores_arr = _validate(np.asarray(labels), np.asarray(scores))
    predictions = (scores_arr >= threshold).astype(np.int64)
    precision, recall, f1 = precision_recall_f1(labels_arr, predictions)
    best, best_threshold = best_f1(labels_arr, scores_arr)
    return ClassificationReport(
        pr_auc=average_precision(labels_arr, scores_arr),
        f1=f1,
        best_f1=best,
        best_threshold=best_threshold,
        precision=precision,
        recall=recall,
        accuracy=accuracy(labels_arr, predictions),
        num_pairs=int(labels_arr.size),
        positive_rate=float(labels_arr.mean()),
    )
