"""Table 7: single-domain benchmark comparison (DeepMatcher vs AdaMEL).

On classic single-domain, fully labeled EM benchmarks (no missing attributes,
no unseen sources), AdaMEL-zero — which spends part of its capacity matching
attention distributions rather than fitting labels — tends to trail
DeepMatcher, while AdaMEL-hyb is comparable.  This experiment reproduces that
qualitative finding on the synthetic single-domain benchmark datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines import DeepMatcher
from ..core import AdaMELHybrid, AdaMELZero
from ..data.domain import MELScenario, PairCollection, SourceDomain, SupportSet, TargetDomain
from ..data.generators import BENCHMARK_PROFILES, load_benchmark
from ..data.sampling import sample_support_set
from ..data.splits import stratified_split
from ..eval.metrics import best_f1
from ..eval.reporting import format_table
from .scenarios import ExperimentScale

__all__ = ["Table7Result", "run_table7", "single_domain_scenario"]

DEFAULT_BENCHMARKS = ("amazon-google", "beer", "dblp-acm", "itunes-amazon", "dirty-itunes-amazon",
                      "dirty-walmart-amazon")


def single_domain_scenario(benchmark: str, seed: int = 0, test_fraction: float = 0.35,
                           support_size: int = 30) -> MELScenario:
    """Build a single-domain scenario from a benchmark corpus.

    The labeled pairs are split into train/test; the target domain is the
    (unlabeled view of the) test split, and a small support set is carved out
    of the training split, mirroring how AdaMEL is applied when no genuinely
    new sources exist.
    """
    corpus = load_benchmark(benchmark, seed=seed)
    train, test = stratified_split(corpus.pairs, test_fraction=test_fraction, seed=seed)
    if not train or not test:
        raise ValueError(f"benchmark {benchmark!r} produced an empty split")
    support = sample_support_set(train, size=min(support_size, max(len(train) // 4, 2)), seed=seed)
    support_ids = {pair.pair_id for pair in support}
    train_remaining = [pair for pair in train if pair.pair_id not in support_ids]
    return MELScenario(
        source=SourceDomain(train_remaining, name=f"{benchmark}-train"),
        target=TargetDomain(test, name=f"{benchmark}-target"),
        test=PairCollection(test, name=f"{benchmark}-test"),
        support=SupportSet(support, name=f"{benchmark}-support") if support else None,
        name=f"{benchmark}-single-domain",
        entity_type=corpus.entity_type,
    ).align()


@dataclass
class Table7Result:
    """``results[benchmark][method] = best F1``."""

    results: Dict[str, Dict[str, float]]

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return self.results

    def format(self) -> str:
        methods = ["deepmatcher", "adamel-zero", "adamel-hyb"]
        rows = [[benchmark] + [scores.get(method, float("nan")) for method in methods]
                for benchmark, scores in self.results.items()]
        return format_table(["benchmark"] + methods, rows,
                            title="[Table 7] single-domain entity linkage (best F1)")


def run_table7(benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
               scale: Optional[ExperimentScale] = None, seed: int = 0) -> Table7Result:
    """Evaluate DeepMatcher, AdaMEL-zero and AdaMEL-hyb on single-domain benchmarks."""
    scale = scale or ExperimentScale()
    unknown = [name for name in benchmarks if name not in BENCHMARK_PROFILES]
    if unknown:
        raise KeyError(f"unknown benchmarks {unknown}")
    results: Dict[str, Dict[str, float]] = {}
    for benchmark in benchmarks:
        scenario = single_domain_scenario(benchmark, seed=seed)
        scores: Dict[str, float] = {}
        methods = {
            "deepmatcher": lambda: DeepMatcher(scale.baseline_config()),
            "adamel-zero": lambda: AdaMELZero(scale.adamel_config()),
            "adamel-hyb": lambda: AdaMELHybrid(scale.adamel_config()),
        }
        for name, factory in methods.items():
            model = factory()
            model.fit(scenario)
            labeled = [pair for pair in scenario.test if pair.is_labeled]
            probabilities = model.predict_proba(labeled)
            labels = [pair.label for pair in labeled]
            scores[name], _ = best_f1(labels, probabilities)
        results[benchmark] = scores
    return Table7Result(results=results)
