"""Table 4: the top learned feature importances.

AdaMEL-hyb is trained with the paper's best configuration (λ=0.98, φ=1.0) on
the Monitor and Music-3K(artist) scenarios, and the attention scores averaged
over the target-domain test pairs give the learned feature importance.  The
paper reports a long-tailed distribution on Monitor (``page_title_shared``
dominates) and a more uniform, name-centric distribution on Music-3K artist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import AdaMELHybrid
from ..eval.reporting import format_table
from ..features.importance import ImportanceReport
from .scenarios import ExperimentScale, build_scenario

__all__ = ["Table4Result", "run_table4"]


@dataclass
class Table4Result:
    """Learned feature-importance reports, keyed by dataset."""

    reports: Dict[str, ImportanceReport]
    top_k: int = 5

    def top_features(self, dataset: str) -> List[str]:
        return [fi.name for fi in self.reports[dataset].top(self.top_k)]

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {dataset: report.as_dict() for dataset, report in self.reports.items()}

    def format(self) -> str:
        blocks: List[str] = []
        for dataset, report in self.reports.items():
            rows = [[fi.name, fi.score] for fi in report.top(self.top_k)]
            blocks.append(format_table(["feature", "score"], rows,
                                       title=f"[Table 4] learned importance — {dataset} "
                                             f"(gini={report.gini_coefficient():.3f})"))
        return "\n\n".join(blocks)


def run_table4(datasets: Optional[Dict[str, Dict[str, str]]] = None, top_k: int = 5,
               scale: Optional[ExperimentScale] = None, seed: int = 0) -> Table4Result:
    """Train AdaMEL-hyb per dataset and report the top-``k`` features.

    ``datasets`` maps a display name to ``{"dataset": ..., "entity_type": ...}``;
    defaults to the paper's two panels (Monitor, Music-3K artist).
    """
    scale = scale or ExperimentScale()
    if datasets is None:
        datasets = {
            "monitor": {"dataset": "monitor", "entity_type": "monitor"},
            "music3k-artist": {"dataset": "music3k", "entity_type": "artist"},
        }
    reports: Dict[str, ImportanceReport] = {}
    for name, spec in datasets.items():
        scenario = build_scenario(spec["dataset"], entity_type=spec.get("entity_type", "artist"),
                                  mode="overlapping", scale=scale, seed=seed)
        model = AdaMELHybrid(scale.adamel_config())
        model.fit(scenario)
        reports[name] = model.feature_importance(scenario.test.pairs)
    return Table4Result(reports=reports, top_k=top_k)
