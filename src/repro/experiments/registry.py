"""Registry mapping paper table/figure identifiers to experiment runners.

Each entry points at the ``run_*`` function that regenerates the corresponding
table or figure; the benchmark harness under ``benchmarks/`` and the
EXPERIMENTS.md index both follow this mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .figure6 import run_figure6
from .figure7 import run_figure7
from .figure8 import run_figure8
from .figure9 import run_figure9
from .figure10 import run_figure10
from .figure11 import run_figure11
from .figure12 import run_figure12
from .table4 import run_table4
from .table5 import run_table5
from .table6 import run_table6
from .table7 import run_table7

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment tied to a paper table or figure."""

    identifier: str
    description: str
    runner: Callable
    benchmark: str


EXPERIMENTS: Dict[str, Experiment] = {
    "figure6-music3k": Experiment(
        "figure6-music3k", "MEL PRAUC on Music-3K (Fig. 6a / Table 9)", run_figure6,
        "benchmarks/test_bench_figure6_music3k.py"),
    "figure6-music1m": Experiment(
        "figure6-music1m", "MEL PRAUC on weakly-labeled Music-1M (Fig. 6b / Table 9)", run_figure6,
        "benchmarks/test_bench_figure6_music1m.py"),
    "figure6-monitor": Experiment(
        "figure6-monitor", "MEL PRAUC on Monitor (Fig. 6c / Table 8)", run_figure6,
        "benchmarks/test_bench_figure6_monitor.py"),
    "figure7": Experiment(
        "figure7", "Attention-space alignment of source/target domains", run_figure7,
        "benchmarks/test_bench_figure7_alignment.py"),
    "figure8": Experiment(
        "figure8", "PRAUC vs adaptation weight λ", run_figure8,
        "benchmarks/test_bench_figure8_lambda.py"),
    "figure9": Experiment(
        "figure9", "Stability vs incrementally added sources + runtime", run_figure9,
        "benchmarks/test_bench_figure9_sources.py"),
    "figure10": Experiment(
        "figure10", "PRAUC vs support-set size", run_figure10,
        "benchmarks/test_bench_figure10_support.py"),
    "figure11": Experiment(
        "figure11", "Monitor missing-value / new-attribute analysis", run_figure11,
        "benchmarks/test_bench_figure11_missingness.py"),
    "figure12": Experiment(
        "figure12", "Monitor prod_type token distribution shift", run_figure12,
        "benchmarks/test_bench_figure12_tokendist.py"),
    "table4": Experiment(
        "table4", "Top-5 learned feature importances", run_table4,
        "benchmarks/test_bench_table4_importance.py"),
    "table5": Experiment(
        "table5", "Top vs other vs all attributes", run_table5,
        "benchmarks/test_bench_table5_topfeatures.py"),
    "table6": Experiment(
        "table6", "Contrastive-feature ablation", run_table6,
        "benchmarks/test_bench_table6_ablation.py"),
    "table7": Experiment(
        "table7", "Single-domain benchmark F1", run_table7,
        "benchmarks/test_bench_table7_single_domain.py"),
}


def get_experiment(identifier: str) -> Experiment:
    """Look up an experiment by identifier (raises ``KeyError`` when unknown)."""
    if identifier not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {identifier!r}; available: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[identifier]


def list_experiments() -> List[str]:
    """All registered experiment identifiers."""
    return sorted(EXPERIMENTS)
