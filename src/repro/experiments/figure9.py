"""Figure 9: stability under incrementally arriving data sources + runtime.

New data sources arrive in batches; after each batch the target domain grows
by pairs that touch the newly added sources.  AdaMEL-hyb (which keeps adapting
its attention function to the enlarged ``D_T``) is compared against the
best-performing baseline (EntityMatcher) and the fastest baseline
(CorDel-Attention).  The paper reports that AdaMEL-hyb stays stable at a
higher PRAUC and trains in a fraction of the baselines' time; the inset
runtime table is reproduced as :attr:`Figure9Result.runtime_seconds`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..baselines import CorDelAttention, EntityMatcher
from ..core import AdaMELHybrid
from ..data.domain import MELScenario, PairCollection, SourceDomain, SupportSet, TargetDomain
from ..data.generators import MONITOR_SEEN_SOURCES, MonitorCorpusGenerator, MonitorGeneratorConfig
from ..data.sampling import sample_support_set
from ..eval.reporting import format_series, format_table
from .scenarios import ExperimentScale

__all__ = ["Figure9Result", "run_figure9"]


@dataclass
class Figure9Result:
    """PRAUC per number of target sources, plus total training runtime."""

    num_sources: List[int]
    series: Dict[str, List[float]]
    runtime_seconds: Dict[str, float]

    def stability_range(self, method: str) -> float:
        """Max minus min PRAUC across the sweep (smaller = more stable)."""
        values = self.series[method]
        return float(max(values) - min(values))

    def as_dict(self) -> Dict[str, object]:
        return {"num_sources": self.num_sources, "series": self.series,
                "runtime_seconds": self.runtime_seconds}

    def format(self) -> str:
        series_table = format_series("|D*_T|", self.num_sources, self.series,
                                     title="[Figure 9] PRAUC vs number of target sources")
        runtime_rows = [[name, seconds] for name, seconds in self.runtime_seconds.items()]
        runtime_table = format_table(["method", "total runtime (s)"], runtime_rows,
                                     title="[Figure 9, inset] total training runtime")
        return series_table + "\n\n" + runtime_table


def _scenario_with_sources(corpus, target_sources: Sequence[str], support_size: int,
                           test_size: int, seed: int) -> MELScenario:
    """Build a scenario whose target domain is limited to ``target_sources``."""
    seen = set(MONITOR_SEEN_SOURCES)
    allowed = set(target_sources) | seen
    source_pairs = [pair for pair in corpus.pairs if pair.source_set() <= seen]
    target_pool = [pair for pair in corpus.pairs
                   if (pair.source_set() <= allowed) and (pair.source_set() - seen)]
    rng = np.random.default_rng(seed)
    support = sample_support_set(target_pool, size=support_size, seed=seed)
    support_ids = {pair.pair_id for pair in support}
    remaining = [pair for pair in target_pool if pair.pair_id not in support_ids]
    if len(remaining) > test_size:
        indices = rng.choice(len(remaining), size=test_size, replace=False)
        test_pairs = [remaining[i] for i in indices]
    else:
        test_pairs = remaining
    return MELScenario(
        source=SourceDomain(source_pairs, name="monitor-source"),
        target=TargetDomain(target_pool, name="monitor-target"),
        test=PairCollection(test_pairs, name="monitor-test"),
        support=SupportSet(support, name="monitor-support") if support else None,
        name=f"monitor-incremental-{len(target_sources)}",
        entity_type="monitor",
    ).align()


def run_figure9(source_counts: Sequence[int] = (7, 11, 15, 19, 24),
                methods: Optional[Dict[str, Callable[[], object]]] = None,
                scale: Optional[ExperimentScale] = None, seed: int = 0) -> Figure9Result:
    """Sweep the number of target data sources and record PRAUC + runtime.

    ``source_counts`` gives the total number of Monitor sources available at
    each step (the 5 seen sources plus incrementally added unseen ones).
    """
    scale = scale or ExperimentScale()
    max_sources = max(source_counts)
    corpus = MonitorCorpusGenerator(MonitorGeneratorConfig(num_entities=scale.monitor_entities),
                                    num_sources=max_sources, seed=seed).generate()
    unseen_sources = [source for source in corpus.sources if source not in MONITOR_SEEN_SOURCES]

    if methods is None:
        methods = {
            "adamel-hyb": lambda: AdaMELHybrid(scale.adamel_config()),
            "entitymatcher": lambda: EntityMatcher(scale.baseline_config()),
            "cordel-attention": lambda: CorDelAttention(scale.baseline_config()),
        }
    series: Dict[str, List[float]] = {name: [] for name in methods}
    runtime: Dict[str, float] = {name: 0.0 for name in methods}
    for count in source_counts:
        num_unseen = max(count - len(MONITOR_SEEN_SOURCES), 1)
        target_sources = unseen_sources[:num_unseen]
        scenario = _scenario_with_sources(corpus, target_sources,
                                          support_size=scale.support_size,
                                          test_size=scale.test_size, seed=seed)
        for name, factory in methods.items():
            model = factory()
            start = time.perf_counter()
            model.fit(scenario)
            runtime[name] += time.perf_counter() - start
            series[name].append(model.evaluate(scenario.test.pairs).pr_auc)
    return Figure9Result(num_sources=list(source_counts), series=series, runtime_seconds=runtime)
