"""Table 5: linkage performance using top attributes vs other vs all attributes.

After training AdaMEL-hyb on the full attribute set, the learned importance
ranks attributes; retraining with only the top-ranked attributes should be
comparable to (or slightly better than) training with every attribute, while
the remaining low-importance attributes alone should perform far worse —
evidence that the learned attention identifies the informative attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core import AdaMELHybrid
from ..eval.reporting import format_table
from ..features.importance import top_attributes
from .attributes import restrict_scenario_to_attributes
from .scenarios import ExperimentScale, build_scenario

__all__ = ["Table5Row", "Table5Result", "run_table5"]


@dataclass
class Table5Row:
    """One dataset row of Table 5."""

    dataset: str
    top_attributes: List[str]
    other_attributes: List[str]
    pr_auc_top: float
    pr_auc_other: float
    pr_auc_all: float


@dataclass
class Table5Result:
    rows: List[Table5Row]

    def as_dict(self) -> List[Dict[str, object]]:
        return [vars(row) for row in self.rows]

    def format(self) -> str:
        table_rows = [[row.dataset, f"{row.pr_auc_top:.4f} ({len(row.top_attributes)})",
                       f"{row.pr_auc_other:.4f} ({len(row.other_attributes)})",
                       f"{row.pr_auc_all:.4f}"] for row in self.rows]
        return format_table(["dataset", "top attributes", "other attributes", "all attributes"],
                            table_rows, title="[Table 5] PRAUC by attribute subset")


def _evaluate(scenario, scale: ExperimentScale) -> float:
    model = AdaMELHybrid(scale.adamel_config())
    model.fit(scenario)
    return model.evaluate(scenario.test.pairs).pr_auc


def run_table5(datasets: Optional[Dict[str, Dict[str, object]]] = None,
               scale: Optional[ExperimentScale] = None, seed: int = 0) -> Table5Result:
    """Reproduce Table 5 for the configured datasets.

    ``datasets`` maps display name to ``{"dataset", "entity_type", "num_top"}``;
    the default covers Monitor (3 top attributes) and Music-3K artist (4), as
    in the paper.
    """
    scale = scale or ExperimentScale()
    if datasets is None:
        datasets = {
            "monitor": {"dataset": "monitor", "entity_type": "monitor", "num_top": 3},
            "music3k-artist": {"dataset": "music3k", "entity_type": "artist", "num_top": 4},
        }
    rows: List[Table5Row] = []
    for name, spec in datasets.items():
        scenario = build_scenario(str(spec["dataset"]), entity_type=str(spec.get("entity_type", "artist")),
                                  mode="overlapping", scale=scale, seed=seed)
        # Step 1: train on all attributes to learn the importance ranking.
        full_model = AdaMELHybrid(scale.adamel_config())
        full_model.fit(scenario)
        pr_auc_all = full_model.evaluate(scenario.test.pairs).pr_auc
        report = full_model.feature_importance(scenario.test.pairs)
        num_top = int(spec.get("num_top", 3))
        top = top_attributes(report, num_top)
        all_attributes = list(scenario.aligned_schema())
        other = [attribute for attribute in all_attributes if attribute not in top]
        # Step 2: retrain restricted to the top / the other attributes.
        pr_auc_top = _evaluate(restrict_scenario_to_attributes(scenario, top), scale)
        pr_auc_other = (_evaluate(restrict_scenario_to_attributes(scenario, other), scale)
                        if other else float("nan"))
        rows.append(Table5Row(dataset=name, top_attributes=top, other_attributes=other,
                              pr_auc_top=pr_auc_top, pr_auc_other=pr_auc_other,
                              pr_auc_all=pr_auc_all))
    return Table5Result(rows=rows)
