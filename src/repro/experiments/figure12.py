"""Figure 12 (appendix A.2): attribute-value distribution shift (challenge C3).

The frequency distribution of the top word tokens under one representative
attribute (``prod_type`` for Monitor) is compared between records from the
seen (source-domain) data sources and records from the unseen (target-domain)
data sources.  The synthetic Monitor corpus reproduces the paper's finding
that these distributions differ substantially.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.generators import MONITOR_SEEN_SOURCES
from ..data.records import Record
from ..eval.reporting import format_table
from ..text.tokenizer import tokenize
from .scenarios import ExperimentScale, build_corpus

__all__ = ["Figure12Result", "run_figure12", "token_distribution", "distribution_divergence"]


def token_distribution(records: Sequence[Record], attribute: str, top_k: int = 10
                       ) -> Dict[str, int]:
    """Frequency of the ``top_k`` most common tokens of ``attribute``."""
    counts: Counter = Counter()
    for record in records:
        counts.update(tokenize(record.value(attribute)))
    return dict(counts.most_common(top_k))


def distribution_divergence(left: Dict[str, int], right: Dict[str, int]) -> float:
    """Total-variation distance between two token-frequency distributions."""
    vocabulary = set(left) | set(right)
    if not vocabulary:
        return 0.0
    left_total = sum(left.values()) or 1
    right_total = sum(right.values()) or 1
    return 0.5 * sum(abs(left.get(tok, 0) / left_total - right.get(tok, 0) / right_total)
                     for tok in vocabulary)


@dataclass
class Figure12Result:
    """Top-token frequencies of one attribute in the source vs target domain."""

    attribute: str
    source_tokens: Dict[str, int]
    target_tokens: Dict[str, int]

    @property
    def divergence(self) -> float:
        """Total-variation distance between the two distributions (0..1)."""
        return distribution_divergence(self.source_tokens, self.target_tokens)

    def as_dict(self) -> Dict[str, object]:
        return {"attribute": self.attribute, "source": self.source_tokens,
                "target": self.target_tokens, "divergence": self.divergence}

    def format(self) -> str:
        rows: List[List[object]] = []
        tokens = list(dict.fromkeys(list(self.source_tokens) + list(self.target_tokens)))
        for token in tokens:
            rows.append([token, self.source_tokens.get(token, 0), self.target_tokens.get(token, 0)])
        return format_table(["token", "source freq", "target freq"], rows,
                            title=f"[Figure 12] '{self.attribute}' token frequencies "
                                  f"(TV distance = {self.divergence:.3f})")


def run_figure12(dataset: str = "monitor", attribute: str = "prod_type", top_k: int = 10,
                 scale: Optional[ExperimentScale] = None, seed: int = 0) -> Figure12Result:
    """Compute the token-frequency comparison of Figure 12."""
    scale = scale or ExperimentScale()
    corpus = build_corpus(dataset, entity_type="monitor", scale=scale, seed=seed)
    seen = set(MONITOR_SEEN_SOURCES)
    source_records = [record for record in corpus.records if record.source in seen]
    target_records = [record for record in corpus.records if record.source not in seen]
    return Figure12Result(
        attribute=attribute,
        source_tokens=token_distribution(source_records, attribute, top_k=top_k),
        target_tokens=token_distribution(target_records, attribute, top_k=top_k),
    )
