"""Experiment harness: one module per paper table / figure."""

from .attributes import restrict_pairs_to_attributes, restrict_scenario_to_attributes
from .figure6 import Figure6Result, run_figure6
from .figure7 import Figure7Result, run_figure7
from .figure8 import Figure8Result, run_figure8
from .figure9 import Figure9Result, run_figure9
from .figure10 import Figure10Result, run_figure10
from .figure11 import Figure11Result, run_figure11
from .figure12 import Figure12Result, run_figure12
from .registry import EXPERIMENTS, Experiment, get_experiment, list_experiments
from .scenarios import (
    DATASETS,
    MODES,
    ExperimentScale,
    adamel_factories,
    build_corpus,
    build_scenario,
    model_factories,
)
from .table4 import Table4Result, run_table4
from .table5 import Table5Result, run_table5
from .table6 import Table6Result, run_table6
from .table7 import Table7Result, run_table7

__all__ = [
    "ExperimentScale",
    "build_corpus",
    "build_scenario",
    "model_factories",
    "adamel_factories",
    "DATASETS",
    "MODES",
    "restrict_pairs_to_attributes",
    "restrict_scenario_to_attributes",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_figure12",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "Figure6Result",
    "Figure7Result",
    "Figure8Result",
    "Figure9Result",
    "Figure10Result",
    "Figure11Result",
    "Figure12Result",
    "Table4Result",
    "Table5Result",
    "Table6Result",
    "Table7Result",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "list_experiments",
]
