"""Figure 8: effect of the adaptation weight λ on linkage performance.

PRAUC of AdaMEL-zero and AdaMEL-hyb is measured while λ sweeps from 0 towards
1.  The paper observes performance improving as λ approaches (but does not
reach) 1, then collapsing at λ=1 where the supervised signal from ``D_S``
vanishes and only the KL regulariser remains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import AdaMELHybrid, AdaMELZero
from ..eval.reporting import format_series
from .scenarios import ExperimentScale, build_scenario

__all__ = ["Figure8Result", "run_figure8", "DEFAULT_LAMBDAS"]

DEFAULT_LAMBDAS: Tuple[float, ...] = (0.0, 0.3, 0.6, 0.9, 0.98, 1.0)


@dataclass
class Figure8Result:
    """``series[variant] = [PRAUC per λ]`` for one dataset/entity type."""

    dataset: str
    entity_type: str
    lambdas: List[float]
    series: Dict[str, List[float]]

    def pr_auc(self, variant: str, lam: float) -> float:
        return self.series[variant][self.lambdas.index(lam)]

    def as_dict(self) -> Dict[str, object]:
        return {"dataset": self.dataset, "entity_type": self.entity_type,
                "lambdas": self.lambdas, "series": self.series}

    def format(self) -> str:
        return format_series("lambda", self.lambdas, self.series,
                             title=f"[Figure 8] PRAUC vs lambda — {self.dataset}/{self.entity_type}")


def run_figure8(dataset: str = "music3k", entity_type: str = "artist",
                lambdas: Sequence[float] = DEFAULT_LAMBDAS,
                scale: Optional[ExperimentScale] = None, seed: int = 0) -> Figure8Result:
    """Sweep λ for AdaMEL-zero and AdaMEL-hyb on one scenario."""
    scale = scale or ExperimentScale()
    scenario = build_scenario(dataset, entity_type=entity_type, mode="overlapping",
                              scale=scale, seed=seed)
    series: Dict[str, List[float]] = {"adamel-zero": [], "adamel-hyb": []}
    for lam in lambdas:
        config = scale.adamel_config(adaptation_weight=lam)
        for name, cls in (("adamel-zero", AdaMELZero), ("adamel-hyb", AdaMELHybrid)):
            model = cls(config)
            model.fit(scenario)
            series[name].append(model.evaluate(scenario.test.pairs).pr_auc)
    return Figure8Result(dataset=dataset, entity_type=entity_type,
                         lambdas=list(lambdas), series=series)
