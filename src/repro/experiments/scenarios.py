"""Scenario and model factories shared by the experiment harness.

``build_scenario`` reproduces the experimental protocol of Section 5.2:

* **Music-3K / Music-1M** — train on 3 of the 7 websites, adapt/test on all 7
  (overlapping) or only the remaining 4 (disjoint), 100-pair support set;
* **Monitor** — train on the 5 sources listed in the paper, adapt/test on all
  24 (overlapping) or the other 19 (disjoint).

``model_factories`` returns fresh-model constructors for the methods compared
in Figure 6 / Tables 8-9, with CPU-friendly default sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence

from ..baselines import TLER, BaselineConfig, CorDelAttention, DeepMatcher, Ditto, EntityMatcher
from ..core import AdaMELBase, AdaMELConfig, AdaMELFew, AdaMELHybrid, AdaMELZero
from ..data.domain import MELScenario
from ..data.generators import (
    MONITOR_SEEN_SOURCES,
    MUSIC_SEEN_SOURCES,
    MonitorCorpusGenerator,
    MonitorGeneratorConfig,
    MultiSourceCorpus,
    MusicCorpusGenerator,
    MusicGeneratorConfig,
)

__all__ = ["ExperimentScale", "build_corpus", "build_scenario", "model_factories",
           "adamel_factories", "DATASETS", "MODES"]

DATASETS = ("music3k", "music1m", "monitor")
MODES = ("overlapping", "disjoint")


@dataclass(frozen=True)
class ExperimentScale:
    """Workload size used by the experiment harness.

    The defaults are deliberately small so that every table/figure regenerates
    in seconds on CPU; pass a larger scale for closer-to-paper workloads.
    """

    music_entities: int = 60
    monitor_entities: int = 90
    support_size: int = 60
    test_size: int = 200
    adamel_epochs: int = 25
    baseline_epochs: int = 15
    embedding_dim: int = 32
    hidden_dim: int = 24
    attention_dim: int = 48
    classifier_hidden_dim: int = 48
    tokens_per_attribute: int = 6
    seed: int = 0

    @classmethod
    def smoke(cls) -> "ExperimentScale":
        """Very small scale for unit tests and CI."""
        return cls(music_entities=30, monitor_entities=40, support_size=20, test_size=80,
                   adamel_epochs=6, baseline_epochs=4, embedding_dim=24, hidden_dim=16,
                   attention_dim=24, classifier_hidden_dim=24, tokens_per_attribute=4)

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """Closer to the paper's sizes (minutes instead of seconds)."""
        return cls(music_entities=250, monitor_entities=300, support_size=100, test_size=500,
                   adamel_epochs=100, baseline_epochs=40, embedding_dim=128, hidden_dim=64,
                   attention_dim=128, classifier_hidden_dim=128, tokens_per_attribute=10)

    def adamel_config(self, **overrides: object) -> AdaMELConfig:
        base = dict(embedding_dim=self.embedding_dim, hidden_dim=self.hidden_dim,
                    attention_dim=self.attention_dim,
                    classifier_hidden_dim=self.classifier_hidden_dim,
                    epochs=self.adamel_epochs, crop_size=max(self.tokens_per_attribute, 4) * 3,
                    seed=self.seed)
        base.update(overrides)
        return AdaMELConfig(**base)

    def baseline_config(self, **overrides: object) -> BaselineConfig:
        base = dict(embedding_dim=self.embedding_dim, hidden_dim=self.hidden_dim,
                    classifier_hidden_dim=self.classifier_hidden_dim,
                    epochs=self.baseline_epochs, tokens_per_attribute=self.tokens_per_attribute,
                    seed=self.seed)
        base.update(overrides)
        return BaselineConfig(**base)


def build_corpus(dataset: str, entity_type: str = "artist",
                 scale: Optional[ExperimentScale] = None, seed: int = 0,
                 num_monitor_sources: int = 24) -> MultiSourceCorpus:
    """Generate the synthetic corpus standing in for ``dataset``."""
    scale = scale or ExperimentScale()
    dataset = dataset.lower()
    if dataset == "music3k":
        config = MusicGeneratorConfig(num_entities=scale.music_entities, weakly_labeled=False)
        return MusicCorpusGenerator(entity_type, config, seed=seed).generate()
    if dataset == "music1m":
        config = MusicGeneratorConfig(num_entities=int(scale.music_entities * 1.5),
                                      weakly_labeled=True)
        return MusicCorpusGenerator(entity_type, config, seed=seed).generate()
    if dataset == "monitor":
        config = MonitorGeneratorConfig(num_entities=scale.monitor_entities)
        return MonitorCorpusGenerator(config, num_sources=num_monitor_sources, seed=seed).generate()
    raise ValueError(f"unknown dataset {dataset!r}; expected one of {DATASETS}")


def seen_sources_for(dataset: str) -> Sequence[str]:
    """The paper's seen source set for each dataset."""
    return MONITOR_SEEN_SOURCES if dataset.lower() == "monitor" else MUSIC_SEEN_SOURCES


def build_scenario(dataset: str, entity_type: str = "artist", mode: str = "overlapping",
                   scale: Optional[ExperimentScale] = None, seed: int = 0,
                   support_size: Optional[int] = None) -> MELScenario:
    """Build the MEL scenario for one (dataset, entity type, mode) cell."""
    scale = scale or ExperimentScale()
    corpus = build_corpus(dataset, entity_type=entity_type, scale=scale, seed=seed)
    return corpus.build_scenario(
        seen_sources=seen_sources_for(dataset),
        mode=mode,
        support_size=scale.support_size if support_size is None else support_size,
        test_size=scale.test_size,
        seed=seed,
        name=f"{dataset}-{entity_type}-{mode}",
    )


def adamel_factories(scale: Optional[ExperimentScale] = None,
                     config_overrides: Optional[Mapping[str, object]] = None
                     ) -> Dict[str, Callable[[], object]]:
    """Factories for the four AdaMEL variants."""
    scale = scale or ExperimentScale()
    overrides = dict(config_overrides or {})
    config = scale.adamel_config(**overrides)
    return {
        "adamel-base": lambda: AdaMELBase(config),
        "adamel-zero": lambda: AdaMELZero(config),
        "adamel-few": lambda: AdaMELFew(config),
        "adamel-hyb": lambda: AdaMELHybrid(config),
    }


def model_factories(scale: Optional[ExperimentScale] = None,
                    include_baselines: bool = True, include_adamel: bool = True,
                    methods: Optional[Sequence[str]] = None) -> Dict[str, Callable[[], object]]:
    """Factories for every method compared in Figure 6 / Tables 8-9.

    ``methods`` optionally restricts the returned factories by name.
    """
    scale = scale or ExperimentScale()
    baseline_config = scale.baseline_config()
    factories: Dict[str, Callable[[], object]] = {}
    if include_baselines:
        factories.update({
            "tler": lambda: TLER(),
            "deepmatcher": lambda: DeepMatcher(baseline_config),
            "entitymatcher": lambda: EntityMatcher(baseline_config),
            "ditto": lambda: Ditto(baseline_config),
            "cordel-attention": lambda: CorDelAttention(baseline_config),
        })
    if include_adamel:
        factories.update(adamel_factories(scale))
    if methods is not None:
        unknown = [m for m in methods if m not in factories]
        if unknown:
            raise KeyError(f"unknown methods {unknown}; available: {sorted(factories)}")
        factories = {name: factories[name] for name in methods}
    return factories
