"""Figure 10: sensitivity to the size of the labeled support set.

AdaMEL-few and AdaMEL-hyb are trained with support sets of increasing size
drawn from the Monitor target domain.  The paper observes performance rising
for the first ~100-200 labeled pairs and then saturating, with AdaMEL-hyb
staying at or above AdaMEL-few once the support set is no longer tiny.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core import AdaMELFew, AdaMELHybrid
from ..eval.reporting import format_series
from .scenarios import ExperimentScale, build_corpus, build_scenario, seen_sources_for

__all__ = ["Figure10Result", "run_figure10", "DEFAULT_SUPPORT_SIZES"]

DEFAULT_SUPPORT_SIZES = (1, 10, 40, 80, 140, 200)


@dataclass
class Figure10Result:
    """``series[variant] = [PRAUC per support size]``."""

    dataset: str
    support_sizes: List[int]
    series: Dict[str, List[float]]

    def as_dict(self) -> Dict[str, object]:
        return {"dataset": self.dataset, "support_sizes": self.support_sizes, "series": self.series}

    def improvement(self, variant: str) -> float:
        """PRAUC gain from the smallest to the largest support set."""
        values = self.series[variant]
        return float(values[-1] - values[0])

    def format(self) -> str:
        return format_series("|S_U|", self.support_sizes, self.series,
                             title=f"[Figure 10] PRAUC vs support-set size — {self.dataset}")


def run_figure10(dataset: str = "monitor", entity_type: str = "monitor",
                 support_sizes: Sequence[int] = DEFAULT_SUPPORT_SIZES,
                 scale: Optional[ExperimentScale] = None, seed: int = 0) -> Figure10Result:
    """Sweep the support-set size for AdaMEL-few and AdaMEL-hyb."""
    scale = scale or ExperimentScale()
    corpus = build_corpus(dataset, entity_type=entity_type, scale=scale, seed=seed)
    series: Dict[str, List[float]] = {"adamel-few": [], "adamel-hyb": []}
    for size in support_sizes:
        scenario = corpus.build_scenario(seen_sources=seen_sources_for(dataset),
                                         mode="overlapping", support_size=size,
                                         test_size=scale.test_size, seed=seed,
                                         name=f"{dataset}-support-{size}")
        for name, cls in (("adamel-few", AdaMELFew), ("adamel-hyb", AdaMELHybrid)):
            model = cls(scale.adamel_config())
            model.fit(scenario)
            series[name].append(model.evaluate(scenario.test.pairs).pr_auc)
    return Figure10Result(dataset=dataset, support_sizes=list(support_sizes), series=series)
