"""Figure 7: adaptation aligns source- and target-domain attention vectors.

The paper projects the per-pair feature-attention vectors of AdaMEL-zero and
AdaMEL-hyb with t-SNE, showing that with λ=0.98 the source- and target-domain
clouds become indistinguishable while with λ=0 they stay separate.  Besides
the 2-D projections, this experiment computes a quantitative
:func:`~repro.eval.projection.domain_alignment_score` (1 = perfectly mixed) so
the benchmark can assert the trend numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core import AdaMELHybrid, AdaMELZero
from ..eval.projection import domain_alignment_score, tsne_project
from ..eval.reporting import format_table
from .scenarios import ExperimentScale, build_scenario

__all__ = ["Figure7Panel", "Figure7Result", "run_figure7"]


@dataclass
class Figure7Panel:
    """One panel: a variant trained at a specific λ."""

    variant: str
    adaptation_weight: float
    alignment_score: float
    source_projection: np.ndarray  # (Ns, 2)
    target_projection: np.ndarray  # (Nt, 2)
    pr_auc: float


@dataclass
class Figure7Result:
    panels: List[Figure7Panel]

    def panel(self, variant: str, adaptation_weight: float) -> Figure7Panel:
        for panel in self.panels:
            if panel.variant == variant and abs(panel.adaptation_weight - adaptation_weight) < 1e-9:
                return panel
        raise KeyError(f"no panel for {variant} at λ={adaptation_weight}")

    def format(self) -> str:
        rows = [[panel.variant, panel.adaptation_weight, panel.alignment_score, panel.pr_auc]
                for panel in self.panels]
        return format_table(["variant", "lambda", "alignment_score", "pr_auc"], rows,
                            title="[Figure 7] source/target attention alignment")


def run_figure7(dataset: str = "music3k", entity_type: str = "artist",
                adaptation_weights: Tuple[float, float] = (0.0, 0.98),
                max_points_per_domain: int = 120,
                scale: Optional[ExperimentScale] = None, seed: int = 0) -> Figure7Result:
    """Train AdaMEL-zero / -hyb with and without adaptation and project attentions."""
    scale = scale or ExperimentScale()
    scenario = build_scenario(dataset, entity_type=entity_type, mode="overlapping",
                              scale=scale, seed=seed)
    source_pairs = scenario.source.pairs[:max_points_per_domain]
    target_pairs = scenario.target.pairs[:max_points_per_domain]
    panels: List[Figure7Panel] = []
    for variant_name, cls in (("adamel-zero", AdaMELZero), ("adamel-hyb", AdaMELHybrid)):
        for weight in adaptation_weights:
            config = scale.adamel_config(adaptation_weight=weight)
            model = cls(config)
            model.fit(scenario)
            source_attention = model.attention_scores(source_pairs)
            target_attention = model.attention_scores(target_pairs)
            alignment = domain_alignment_score(source_attention, target_attention)
            combined = np.vstack([source_attention, target_attention])
            projected = tsne_project(combined, dim=2, seed=seed) if len(combined) >= 5 else combined[:, :2]
            panels.append(Figure7Panel(
                variant=variant_name,
                adaptation_weight=weight,
                alignment_score=alignment,
                source_projection=projected[: len(source_attention)],
                target_projection=projected[len(source_attention):],
                pr_auc=model.evaluate(scenario.test.pairs).pr_auc,
            ))
    return Figure7Result(panels=panels)
