"""Attribute-restriction helpers shared by the Table 5 experiment."""

from __future__ import annotations

from typing import List, Sequence

from ..data.domain import MELScenario, PairCollection, SourceDomain, SupportSet, TargetDomain
from ..data.records import EntityPair
from ..data.schema import Schema

__all__ = ["restrict_pairs_to_attributes", "restrict_scenario_to_attributes"]


def restrict_pairs_to_attributes(pairs: Sequence[EntityPair], attributes: Sequence[str]
                                 ) -> List[EntityPair]:
    """Return copies of ``pairs`` whose records only expose ``attributes``."""
    kept = list(attributes)
    restricted: List[EntityPair] = []
    for pair in pairs:
        left = pair.left.with_attributes({attr: pair.left.value(attr) for attr in kept})
        right = pair.right.with_attributes({attr: pair.right.value(attr) for attr in kept})
        restricted.append(EntityPair(left=left, right=right, label=pair.label,
                                     pair_id=pair.pair_id, weight=pair.weight))
    return restricted


def restrict_scenario_to_attributes(scenario: MELScenario, attributes: Sequence[str]
                                    ) -> MELScenario:
    """Project every split of a scenario onto the given attribute subset.

    Used by the Table 5 experiment to retrain AdaMEL on the top-important
    attributes only (vs the remaining attributes vs all attributes).
    """
    if not attributes:
        raise ValueError("attributes must not be empty")
    support = None
    if scenario.support is not None and len(scenario.support):
        support = SupportSet(restrict_pairs_to_attributes(scenario.support.pairs, attributes),
                             name=scenario.support.name)
    return MELScenario(
        source=SourceDomain(restrict_pairs_to_attributes(scenario.source.pairs, attributes),
                            name=scenario.source.name),
        target=TargetDomain(restrict_pairs_to_attributes(scenario.target.pairs, attributes),
                            name=scenario.target.name),
        test=PairCollection(restrict_pairs_to_attributes(scenario.test.pairs, attributes),
                            name=scenario.test.name),
        support=support,
        name=f"{scenario.name}-restricted",
        entity_type=scenario.entity_type,
    )
