"""Table 6: ablation of the contrastive relational features.

AdaMEL-base and AdaMEL-hyb are trained with only the ``shared`` features, only
the ``unique`` features, or both (the default).  The paper finds that both
kinds carry complementary signal and that using both performs best.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import AdaMELBase, AdaMELHybrid
from ..eval.reporting import format_table
from .scenarios import ExperimentScale, build_scenario

__all__ = ["Table6Result", "run_table6"]

FEATURE_MODES: Dict[str, Tuple[str, ...]] = {
    "shared": ("shared",),
    "unique": ("unique",),
    "shared+unique": ("shared", "unique"),
}


@dataclass
class Table6Result:
    """``results[dataset][method][feature_mode] = PRAUC``."""

    results: Dict[str, Dict[str, Dict[str, float]]]

    def as_dict(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        return self.results

    def best_mode(self, dataset: str, method: str) -> str:
        scores = self.results[dataset][method]
        return max(scores, key=scores.get)

    def format(self) -> str:
        blocks: List[str] = []
        for dataset, methods in self.results.items():
            rows = [[method] + [scores.get(mode, float("nan")) for mode in FEATURE_MODES]
                    for method, scores in methods.items()]
            blocks.append(format_table(["method"] + list(FEATURE_MODES), rows,
                                       title=f"[Table 6] contrastive-feature ablation — {dataset}"))
        return "\n\n".join(blocks)


def run_table6(datasets: Optional[Sequence[Tuple[str, str]]] = None,
               scale: Optional[ExperimentScale] = None, seed: int = 0) -> Table6Result:
    """Run the ablation.  ``datasets`` is a list of (dataset, entity_type)."""
    scale = scale or ExperimentScale()
    if datasets is None:
        datasets = (("music3k", "artist"), ("music3k", "album"))
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for dataset, entity_type in datasets:
        key = f"{dataset}-{entity_type}"
        scenario = build_scenario(dataset, entity_type=entity_type, mode="overlapping",
                                  scale=scale, seed=seed)
        results[key] = {"adamel-base": {}, "adamel-hyb": {}}
        for mode_name, kinds in FEATURE_MODES.items():
            config = scale.adamel_config(feature_kinds=kinds)
            for method_name, cls in (("adamel-base", AdaMELBase), ("adamel-hyb", AdaMELHybrid)):
                model = cls(config)
                model.fit(scenario)
                results[key][method_name][mode_name] = model.evaluate(scenario.test.pairs).pr_auc
    return Table6Result(results=results)
