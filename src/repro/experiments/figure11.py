"""Figure 11 (appendix A.2): missing-value / new-attribute analysis of Monitor.

For every attribute the fraction of entity pairs whose *both* records carry a
non-empty value is computed separately for the source-domain pairs and the
target-domain pairs.  The paper's findings, which the synthetic Monitor corpus
reproduces: only ``page_title`` and ``source`` are close to fully populated
(C1), several attributes have non-missing pairs only in the target domain
(C2), and the remaining attributes differ markedly between the domains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..data.domain import MELScenario
from ..data.records import EntityPair
from ..eval.reporting import format_table
from .scenarios import ExperimentScale, build_scenario

__all__ = ["Figure11Result", "run_figure11", "non_missing_fraction"]


def non_missing_fraction(pairs: Sequence[EntityPair], attribute: str) -> float:
    """Fraction of pairs where both records have a value for ``attribute``."""
    if not pairs:
        return 0.0
    return sum(1 for pair in pairs if pair.both_present(attribute)) / len(pairs)


@dataclass
class Figure11Result:
    """Per-attribute non-missing fractions for source vs target pairs."""

    source_fractions: Dict[str, float]
    target_fractions: Dict[str, float]

    def target_only_attributes(self, threshold: float = 0.0) -> List[str]:
        """Attributes populated (above threshold) only in the target domain (C2)."""
        return [attribute for attribute in self.source_fractions
                if self.source_fractions[attribute] <= threshold
                and self.target_fractions[attribute] > threshold]

    def mostly_missing_attributes(self, threshold: float = 0.5) -> List[str]:
        """Attributes where fewer than ``threshold`` of pairs are complete in both domains."""
        return [attribute for attribute in self.source_fractions
                if self.source_fractions[attribute] < threshold
                and self.target_fractions[attribute] < threshold]

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {"source": self.source_fractions, "target": self.target_fractions}

    def format(self) -> str:
        rows = [[attribute, self.source_fractions[attribute], self.target_fractions[attribute]]
                for attribute in self.source_fractions]
        return format_table(["attribute", "source domain", "target domain"], rows,
                            title="[Figure 11] fraction of pairs without missing values")


def run_figure11(dataset: str = "monitor", entity_type: str = "monitor",
                 scale: Optional[ExperimentScale] = None, seed: int = 0) -> Figure11Result:
    """Compute the per-attribute completeness statistics of Figure 11."""
    scale = scale or ExperimentScale()
    scenario = build_scenario(dataset, entity_type=entity_type, mode="overlapping",
                              scale=scale, seed=seed)
    schema = scenario.aligned_schema()
    source_pairs = scenario.source.pairs
    target_pairs = scenario.target.pairs
    return Figure11Result(
        source_fractions={attribute: non_missing_fraction(source_pairs, attribute)
                          for attribute in schema},
        target_fractions={attribute: non_missing_fraction(target_pairs, attribute)
                          for attribute in schema},
    )
