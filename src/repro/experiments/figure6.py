"""Figure 6 / Tables 8-9: MEL performance of AdaMEL variants vs baselines.

For a chosen dataset (Music-3K, Music-1M or Monitor analogue), entity type and
scenario mode (overlapping / disjoint), every method is trained from scratch
on the same :class:`~repro.data.domain.MELScenario` and scored with PRAUC on
the held-out labeled target pairs — exactly the comparison of Figure 6 and of
the complete numerical Tables 8 and 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..eval.evaluation import EvaluationResult, compare_models
from ..eval.reporting import format_results_table
from .scenarios import MODES, ExperimentScale, build_scenario, model_factories

__all__ = ["Figure6Result", "run_figure6"]


@dataclass
class Figure6Result:
    """Results of one Figure 6 panel: ``results[mode][method]``."""

    dataset: str
    entity_type: str
    results: Dict[str, Dict[str, EvaluationResult]] = field(default_factory=dict)

    def pr_auc(self, mode: str, method: str) -> float:
        return self.results[mode][method].pr_auc

    def best_method(self, mode: str) -> str:
        """Method with the highest PRAUC in the given mode."""
        mode_results = self.results[mode]
        return max(mode_results, key=lambda name: mode_results[name].pr_auc)

    def as_dict(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        return {mode: {method: result.as_dict() for method, result in mode_results.items()}
                for mode, mode_results in self.results.items()}

    def format(self) -> str:
        """Render the panel as a table matching the layout of Tables 8/9."""
        blocks: List[str] = []
        for mode, mode_results in self.results.items():
            rows = {method: {"pr_auc": result.pr_auc, "f1": result.report.best_f1,
                             "fit_seconds": result.fit_seconds}
                    for method, result in mode_results.items()}
            blocks.append(format_results_table(
                rows, metric_order=["pr_auc", "f1", "fit_seconds"],
                title=f"[Figure 6] {self.dataset} / {self.entity_type} / {mode}"))
        return "\n\n".join(blocks)


def run_figure6(dataset: str = "music3k", entity_type: str = "artist",
                modes: Sequence[str] = MODES, methods: Optional[Sequence[str]] = None,
                scale: Optional[ExperimentScale] = None, seed: int = 0) -> Figure6Result:
    """Run the Figure 6 comparison for one dataset / entity type.

    Parameters
    ----------
    dataset:
        ``"music3k"``, ``"music1m"`` or ``"monitor"``.
    entity_type:
        ``"artist"``, ``"album"`` or ``"track"`` (ignored for Monitor).
    modes:
        Which of ``("overlapping", "disjoint")`` to evaluate.
    methods:
        Optional subset of method names (default: all baselines + variants).
    """
    scale = scale or ExperimentScale()
    result = Figure6Result(dataset=dataset, entity_type=entity_type)
    for mode in modes:
        scenario = build_scenario(dataset, entity_type=entity_type, mode=mode,
                                  scale=scale, seed=seed)
        factories = model_factories(scale=scale, methods=methods)
        result.results[mode] = compare_models(factories, scenario)
    return result
