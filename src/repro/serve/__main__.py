"""CLI entry point: ``python -m repro.serve``.

``--demo`` builds a synthetic Music-3K corpus, trains a quick AdaMEL matcher
(or loads ``--model``), starts the online service and streams the shuffled
corpus through ``EntityStore.upsert`` record by record; it then verifies that
the streamed clusters equal one batch ``LinkagePipeline.run`` over the same
input order, replays concurrent queries to exercise the coalescer, and
prints throughput + p50/p95/p99 latency.  Exit code is non-zero when the
parity check fails.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

import numpy as np

from ..core.variants import create_variant
from ..experiments.scenarios import DATASETS, build_corpus, build_scenario
from ..infer.predictor import BatchedPredictor
from ..pipeline import LinkagePipeline
from .loadgen import replay_queries, replay_upserts
from .service import LinkageService, ServiceConfig
from .store import StoreConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Run the online entity-linkage service demo.",
    )
    parser.add_argument("--demo", action="store_true",
                        help="stream a synthetic corpus through the online store "
                             "and verify parity with the batch pipeline")
    parser.add_argument("--health", action="store_true",
                        help="replay a load against the service and print the "
                             "SLO health report (burn rates per objective); "
                             "exit code 1 when any objective is breached")
    corpus = parser.add_argument_group("corpus")
    corpus.add_argument("--dataset", choices=DATASETS, default="music3k",
                        help="synthetic corpus to serve (default: music3k)")
    corpus.add_argument("--entity-type", default="artist",
                        help="entity type for the synthetic corpus (default: artist)")
    corpus.add_argument("--scale", choices=("smoke", "bench", "paper"), default="smoke",
                        help="corpus / model scale (default: smoke)")
    corpus.add_argument("--seed", type=int, default=0, help="corpus/model/stream seed")
    model = parser.add_argument_group("model")
    model.add_argument("--model", default=None, metavar="BUNDLE",
                       help="saved model bundle directory (default: train a quick "
                            "AdaMEL model on the corpus's labeled scenario)")
    model.add_argument("--variant", default="adamel-hyb",
                       help="AdaMEL variant to train when no --model is given")
    model.add_argument("--epochs", type=int, default=10,
                       help="training epochs for the quick model (default: 10)")
    serving = parser.add_argument_group("serving")
    serving.add_argument("--threshold", type=float, default=0.5,
                         help="match-score threshold for clustering (default: 0.5)")
    serving.add_argument("--max-batch-size", type=int, default=32,
                         help="coalescer size-flush trigger in pairs (default: 32)")
    serving.add_argument("--max-wait-ms", type=float, default=2.0,
                         help="coalescer deadline flush in ms (default: 2.0)")
    serving.add_argument("--workers", type=int, default=4,
                         help="concurrent query workers for the replay (default: 4)")
    serving.add_argument("--queries", type=int, default=None,
                         help="number of replayed queries (default: all records)")
    serving.add_argument("--top-k", type=int, default=3,
                         help="entities returned per query (default: 3)")
    serving.add_argument("--snapshot", default=None, metavar="DIR",
                         help="write a store snapshot to DIR after ingest")
    serving.add_argument("--skip-parity", action="store_true",
                         help="skip the batch-pipeline parity check (faster)")
    durability = parser.add_argument_group("durability (repro.storage)")
    durability.add_argument("--data-dir", default=None, metavar="DIR",
                            help="serve durably: WAL every upsert and keep "
                                 "compacted snapshots under DIR")
    durability.add_argument("--recover", action="store_true",
                            help="restore the store from --data-dir (newest "
                                 "snapshot + WAL tail) before serving")
    durability.add_argument("--snapshot-every", type=int, default=500,
                            metavar="N",
                            help="auto-snapshot cadence in upserts when "
                                 "--data-dir is set (default: 500)")
    parser.add_argument("--export", default=None, metavar="JSONL",
                        help="enable telemetry for the demo and write a metrics + "
                             "trace export (view with python -m repro.obs)")
    return parser


def _build_storage(args: argparse.Namespace, store_config: StoreConfig):
    """The storage engine ``--data-dir`` asks for (None without the flag)."""
    if args.data_dir is None:
        if args.recover:
            print("error: --recover needs --data-dir", file=sys.stderr)
            raise SystemExit(2)
        return None
    from ..storage import Storage, StorageConfig

    config = StorageConfig(snapshot_every=args.snapshot_every)
    if args.recover:
        storage = Storage.recover(args.data_dir, config=config)
        report = storage.last_recovery
        print(f"recovered {report.records} records from {args.data_dir} "
              f"(snapshot lsn {report.snapshot_lsn}, "
              f"{report.replayed_entries} WAL entries replayed) "
              f"in {report.seconds:.3f}s", flush=True)
        return storage
    return Storage(args.data_dir, store_config=store_config, config=config)


def _predictor(args: argparse.Namespace) -> BatchedPredictor:
    if args.model is not None:
        return BatchedPredictor.load(args.model)
    from ..bench.runner import select_scale

    _, scale = select_scale(args.scale)
    scenario = build_scenario(args.dataset, args.entity_type, mode="overlapping",
                              scale=scale, seed=args.seed)
    model = create_variant(args.variant, scale.adamel_config(epochs=args.epochs))
    print(f"training {args.variant} on {scenario.name} "
          f"({len(scenario.source)} labeled pairs) ...", flush=True)
    model.fit(scenario)
    return BatchedPredictor.from_trainer(model)


def run_demo(args: argparse.Namespace) -> int:
    from ..bench.runner import select_scale

    predictor = _predictor(args)
    _, scale = select_scale(args.scale)
    corpus = build_corpus(args.dataset, entity_type=args.entity_type,
                          scale=scale, seed=args.seed)
    # An online service never sees records in a curated order: shuffle.
    records = list(corpus.records)
    np.random.default_rng(args.seed).shuffle(records)

    store_config = StoreConfig(score_threshold=args.threshold)
    service_config = ServiceConfig(max_batch_size=args.max_batch_size,
                                   max_wait_ms=args.max_wait_ms,
                                   top_k=args.top_k)
    storage = _build_storage(args, store_config)
    with LinkageService(predictor,
                        store_config=None if storage is not None else store_config,
                        service_config=service_config,
                        storage=storage) as service:
        print(f"\nstreaming {len(records)} records through EntityStore.upsert ...",
              flush=True)
        ingest = replay_upserts(service, records)
        store_stats = service.store.stats()
        print(f"ingested {ingest.operations} records in {ingest.seconds:.2f}s "
              f"({ingest.throughput:.1f} upserts/s) -> "
              f"{int(store_stats['entities'])} entities, "
              f"{int(store_stats['pairs_scored'])} pairs scored")
        percentiles = {name: value * 1000.0
                       for name, value in ingest.percentiles().items()}
        print("upsert latency  p50 {p50:.2f} ms  p95 {p95:.2f} ms  "
              "p99 {p99:.2f} ms".format(**percentiles))

        num_queries = len(records) if args.queries is None else args.queries
        probes = (records * (num_queries // len(records) + 1))[:num_queries]
        print(f"\nreplaying {len(probes)} queries from {args.workers} workers ...",
              flush=True)
        queries = replay_queries(service, probes, num_workers=args.workers,
                                 top_k=args.top_k)
        percentiles = {name: value * 1000.0
                       for name, value in queries.percentiles().items()}
        print(f"served {queries.operations} queries in {queries.seconds:.2f}s "
              f"({queries.throughput:.1f} queries/s, {queries.errors} errors)")
        print("query latency   p50 {p50:.2f} ms  p95 {p95:.2f} ms  "
              "p99 {p99:.2f} ms".format(**percentiles))
        coalescer = service.coalescer.stats()
        print(f"coalescer: {int(coalescer['batches'])} fused batches "
              f"(mean {coalescer['mean_batch_pairs']:.1f} pairs; "
              f"{int(coalescer['size_flushes'])} size / "
              f"{int(coalescer['deadline_flushes'])} deadline flushes)")

        if storage is not None:
            wal = storage.stats()
            samples = sorted(storage.fsync_latency_samples())
            p95 = (samples[int(0.95 * (len(samples) - 1))] * 1000.0
                   if samples else 0.0)
            print(f"storage: {int(wal['wal_last_lsn'])} WAL entries in "
                  f"{int(wal['wal_segments'])} segments "
                  f"({int(wal['wal_bytes'])} bytes, fsync p95 {p95:.2f} ms)")
            out = service.snapshot()
            tail = storage.stats()["wal_tail_entries"]
            print(f"published compacted snapshot {out.name} "
                  f"(WAL tail now {int(tail)} entries)")

        if args.snapshot:
            out = service.snapshot(args.snapshot)
            print(f"\nwrote store snapshot to {out}")

        if args.skip_parity:
            return 0
        print("\nchecking parity against one batch LinkagePipeline.run ...", flush=True)
        pipeline = LinkagePipeline(predictor,
                                   config=store_config.to_pipeline_config())
        batch = pipeline.run(records)
        online = service.store.clusters()
        if online == batch.clusters.clusters:
            print(f"parity OK: {len(online)} online clusters == batch clusters")
            return 0
        print(f"PARITY FAILED: {len(online)} online clusters vs "
              f"{len(batch.clusters.clusters)} batch clusters", file=sys.stderr)
        return 1


def run_health(args: argparse.Namespace) -> int:
    """Replay a load through a fresh service, then print the SLO report.

    The replay is the same shuffled-corpus upsert + concurrent-query flow
    the demo uses, so the burn rates describe the service under realistic
    coalesced load rather than an idle process.  Exit code 1 only on a
    *breached* objective — ``burning`` is an alert, not a failure.
    """
    from ..obs.slo import format_health

    predictor = _predictor(args)
    from ..bench.runner import select_scale

    _, scale = select_scale(args.scale)
    corpus = build_corpus(args.dataset, entity_type=args.entity_type,
                          scale=scale, seed=args.seed)
    records = list(corpus.records)
    np.random.default_rng(args.seed).shuffle(records)

    service_config = ServiceConfig(max_batch_size=args.max_batch_size,
                                   max_wait_ms=args.max_wait_ms,
                                   top_k=args.top_k)
    store_config = StoreConfig(score_threshold=args.threshold)
    storage = _build_storage(args, store_config)
    with LinkageService(predictor,
                        store_config=None if storage is not None else store_config,
                        service_config=service_config,
                        storage=storage) as service:
        print(f"replaying {len(records)} upserts and {len(records)} queries "
              f"({args.workers} workers) against the service ...", flush=True)
        replay_upserts(service, records)
        replay_queries(service, records, num_workers=args.workers,
                       top_k=args.top_k)
        report = service.health()
    print()
    print(format_health(report, uptime=float(report["uptime_seconds"])))
    return 1 if report["status"] == "breached" else 0


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.demo and args.health:
        print("error: --demo and --health are mutually exclusive", file=sys.stderr)
        return 2
    if not args.demo and not args.health:
        build_parser().print_help()
        print("\nhint: run the demo with  python -m repro.serve --demo, or "
              "the SLO report with  python -m repro.serve --health")
        return 2
    runner = run_health if args.health else run_demo
    if args.export is None:
        return runner(args)
    from .. import obs

    with obs.telemetry():
        status = runner(args)
        path = obs.write_export(args.export)
    print(f"\nwrote telemetry export to {path} "
          f"(view: python -m repro.obs --from-export {path})")
    return status


if __name__ == "__main__":
    sys.exit(main())
