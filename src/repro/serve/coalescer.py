"""Latency-bounded request coalescing in front of the batched predictor.

The model's autograd mode is process-wide, so concurrent forward passes from
many threads are unsafe — and tiny per-request forwards waste the fused-batch
speedup anyway.  :class:`RequestCoalescer` solves both: client threads
enqueue scoring requests; one executor thread fuses them into micro-batches
and runs the model, flushing when either

* the queued pair count reaches ``max_batch_size`` (**size flush**), or
* the *oldest* queued request has waited ``max_wait_ms`` (**deadline flush**),

so a lone request is never stuck waiting for a full batch: ``max_wait_ms`` is
the worst-case queueing delay added in exchange for batching throughput.

Backpressure is explicit: the queue holds at most ``max_queue_size`` pairs
and ``submit`` blocks (optionally with a timeout) until there is room,
raising :class:`CoalescerQueueFull` on timeout instead of growing without
bound.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import (Callable, Deque, Dict, List, NamedTuple, Optional,
                    Sequence, Union)

import numpy as np

from ..data.records import EntityPair
from ..obs import BoundHandles, DEFAULT_SIZE_BUCKETS

__all__ = ["RequestCoalescer", "PendingScore", "CoalescerClosed", "CoalescerQueueFull"]

ScoreFn = Callable[[Sequence[EntityPair]], np.ndarray]


class _CoalescerInstruments(NamedTuple):
    requests: object
    rejected: object
    pairs_scored: object
    flushes: Dict[str, object]
    queue_depth: object
    high_watermark: object
    wait_seconds: object
    batch_pairs: object
    restarts: object


def _bind_coalescer_instruments(registry) -> _CoalescerInstruments:
    flush_help = "Batches flushed, by trigger (size / deadline / shutdown)"
    return _CoalescerInstruments(
        requests=registry.counter("coalescer_requests_total",
                                  "Scoring requests accepted"),
        rejected=registry.counter("coalescer_rejected_total",
                                  "Requests rejected by queue backpressure"),
        pairs_scored=registry.counter("coalescer_pairs_scored_total",
                                      "Pairs scored through fused batches"),
        flushes={reason: registry.counter("coalescer_flushes_total", flush_help,
                                          {"reason": reason})
                 for reason in ("size", "deadline", "shutdown")},
        queue_depth=registry.gauge("coalescer_queue_depth_pairs",
                                   "Pairs currently queued"),
        high_watermark=registry.gauge("coalescer_queue_high_watermark_pairs",
                                      "Deepest the queue has been"),
        wait_seconds=registry.histogram("coalescer_wait_seconds",
                                        "Queue wait from enqueue to batch drain"),
        batch_pairs=registry.histogram("coalescer_batch_pairs",
                                       "Fused pairs per executed batch",
                                       buckets=DEFAULT_SIZE_BUCKETS),
        restarts=registry.counter("coalescer_executor_restarts_total",
                                  "Executor threads respawned after a crash"),
    )


class CoalescerClosed(RuntimeError):
    """The coalescer is stopped (or was never started) and cannot accept work."""


class CoalescerQueueFull(RuntimeError):
    """``submit`` timed out waiting for queue room (backpressure bound hit)."""


class PendingScore:
    """Handle for one submitted request; resolved by the executor thread."""

    __slots__ = ("_event", "_result", "_error", "num_pairs", "enqueued_at",
                 "deadline")

    def __init__(self, num_pairs: int, enqueued_at: float, deadline: float) -> None:
        self._event = threading.Event()
        self._result: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self.num_pairs = num_pairs
        self.enqueued_at = enqueued_at
        self.deadline = deadline  # latest flush time this request accepts

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until the batch holding this request was scored."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"scoring request not completed within {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _resolve(self, result: np.ndarray) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class _QueuedRequest:
    __slots__ = ("pairs", "pending")

    def __init__(self, pairs: List[EntityPair], pending: PendingScore) -> None:
        self.pairs = pairs
        self.pending = pending


class RequestCoalescer:
    """Fuse concurrent scoring requests into deadline-bounded micro-batches.

    Parameters
    ----------
    score_fn:
        The fused scorer, typically ``BatchedPredictor.predict_proba``.  Only
        the executor thread ever calls it, so it needs no thread safety.
    max_batch_size:
        Flush as soon as this many pairs are queued.  Also the upper bound on
        the pairs handed to ``score_fn`` per call (whole requests are never
        split, so a single larger-than-batch request goes through alone).
    max_wait_ms:
        Deadline flush: the longest a queued request may wait for co-riders.
    max_queue_size:
        Backpressure bound on queued pairs; ``submit`` blocks for room.
    queue_sample_fn:
        Optional callback receiving the queue saturation (queued pairs over
        ``max_queue_size``, in ``[0, 1]``) after every accepted submit —
        invoked outside the lock.  The serving layer feeds its
        queue-saturation SLO through this, keeping the coalescer free of any
        SLO dependency.
    """

    def __init__(self, score_fn: ScoreFn, max_batch_size: int = 64,
                 max_wait_ms: float = 5.0, max_queue_size: int = 4096,
                 queue_sample_fn: Optional[Callable[[float], None]] = None) -> None:
        if max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue_size < max_batch_size:
            raise ValueError(f"max_queue_size ({max_queue_size}) must be >= "
                             f"max_batch_size ({max_batch_size})")
        self.score_fn = score_fn
        self.max_batch_size = max_batch_size
        self.max_wait = max_wait_ms / 1000.0
        self.max_queue_size = max_queue_size
        self._condition = threading.Condition()
        self._queue: Deque[_QueuedRequest] = deque()
        self._queued_pairs = 0
        self._stopping = False
        self._running = False
        self._thread: Optional[threading.Thread] = None
        # Counters (guarded by the condition's lock).
        self.requests = 0
        self.pairs_scored = 0
        self.batches = 0
        self.size_flushes = 0
        self.deadline_flushes = 0
        self.rejected = 0
        self.executor_restarts = 0
        self._batch_sizes_sum = 0
        self.queue_sample_fn = queue_sample_fn
        self._obs = BoundHandles(_bind_coalescer_instruments)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "RequestCoalescer":
        """Spawn the executor thread (idempotent while running)."""
        with self._condition:
            if self._running:
                return self
            self._stopping = False
            self._running = True
            self._thread = threading.Thread(target=self._run, name="repro-coalescer",
                                            daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = None) -> None:
        """Flush whatever is queued, then stop the executor thread.

        If the executor does not finish within ``timeout`` (e.g. it is stuck
        inside a slow ``score_fn``), the coalescer stays in the stopping
        state and ``TimeoutError`` is raised: a later ``start()`` must never
        spawn a second executor while the old one lives, because two threads
        would then call the non-thread-safe model concurrently.  Retry
        ``stop()`` to wait again.

        Requests still *queued* at that point are failed promptly with
        :class:`CoalescerClosed` — a wedged executor will not get to them,
        and their clients should not sit out their full result timeouts to
        learn that.  The in-flight batch is left to the executor: its
        clients get real scores (or the score error) whenever it returns.
        """
        with self._condition:
            if not self._running:
                return
            self._stopping = True
            self._condition.notify_all()
            thread = self._thread
        assert thread is not None
        thread.join(timeout)
        if thread.is_alive():
            with self._condition:
                abandoned = list(self._queue)
                self._queue.clear()
                self._queued_pairs = 0
                self._condition.notify_all()  # submitters blocked on room
            failure = CoalescerClosed(
                "the coalescer is stopping and its executor is wedged; "
                "this queued request will never be scored")
            for request in abandoned:
                request.pending._fail(failure)
            raise TimeoutError(
                f"coalescer executor still running after {timeout}s "
                f"(score_fn in flight?); retry stop() to keep waiting")
        with self._condition:
            self._running = False
            self._thread = None

    def __enter__(self) -> "RequestCoalescer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def submit(self, pairs: Union[EntityPair, Sequence[EntityPair]],
               timeout: Optional[float] = None,
               max_wait: Optional[float] = None) -> PendingScore:
        """Enqueue a request; returns a :class:`PendingScore` handle.

        Blocks while the queue is at ``max_queue_size`` (backpressure); a
        ``timeout`` bounds that wait and raises :class:`CoalescerQueueFull`.
        ``max_wait`` (seconds) overrides the coalescer's deadline for this
        request — ``0.0`` asks for an immediate flush (still fused with
        whatever is already queued), which serialized writers use so their
        lone requests don't wait out a co-rider deadline nothing can fill.
        """
        if isinstance(pairs, EntityPair):
            pairs = [pairs]
        else:
            pairs = list(pairs)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            if not self._running or self._stopping:
                raise CoalescerClosed("the coalescer is not running; call start() "
                                      "or use it as a context manager")
            # A request bigger than the whole queue bound could never fit.
            needed = min(len(pairs), self.max_queue_size) or 1
            while self._queued_pairs + needed > self.max_queue_size:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    self.rejected += 1
                    instruments = self._obs.get()
                    if instruments is not None:
                        instruments.rejected.inc()
                    raise CoalescerQueueFull(
                        f"no room for {len(pairs)} pair(s) within {timeout}s "
                        f"(queued={self._queued_pairs}, bound={self.max_queue_size})")
                self._condition.wait(remaining)
                if not self._running or self._stopping:
                    raise CoalescerClosed("the coalescer stopped while waiting "
                                          "for queue room")
            now = time.monotonic()
            wait = self.max_wait if max_wait is None else max(max_wait, 0.0)
            pending = PendingScore(num_pairs=len(pairs), enqueued_at=now,
                                   deadline=now + wait)
            self._queue.append(_QueuedRequest(pairs, pending))
            self._queued_pairs += len(pairs)
            queued_pairs = self._queued_pairs
            self.requests += 1
            self._condition.notify_all()
        instruments = self._obs.get()
        if instruments is not None:
            instruments.requests.inc()
            instruments.queue_depth.set(queued_pairs)
            instruments.high_watermark.set_max(queued_pairs)
        if self.queue_sample_fn is not None:
            self.queue_sample_fn(queued_pairs / self.max_queue_size)
        return pending

    def score(self, pairs: Union[EntityPair, Sequence[EntityPair]],
              timeout: Optional[float] = None,
              max_wait: Optional[float] = None) -> np.ndarray:
        """Submit and block for the probabilities (the common client call).

        ``timeout`` is one overall bound covering both the wait for queue
        room and the wait for the result.
        """
        if not isinstance(pairs, EntityPair) and not len(pairs):
            return np.zeros(0)
        give_up = None if timeout is None else time.monotonic() + timeout
        pending = self.submit(pairs, timeout=timeout, max_wait=max_wait)
        remaining = None if give_up is None else max(give_up - time.monotonic(), 0.0)
        return pending.result(remaining)

    def pending(self) -> int:
        """Pairs currently queued (not yet handed to the executor)."""
        with self._condition:
            return self._queued_pairs

    def stats(self) -> Dict[str, float]:
        """Coalescing counters (batches, flush causes, mean fused size)."""
        with self._condition:
            return {
                "requests": float(self.requests),
                "pairs_scored": float(self.pairs_scored),
                "batches": float(self.batches),
                "size_flushes": float(self.size_flushes),
                "deadline_flushes": float(self.deadline_flushes),
                "rejected": float(self.rejected),
                "executor_restarts": float(self.executor_restarts),
                "queued_pairs": float(self._queued_pairs),
                "mean_batch_pairs": (self._batch_sizes_sum / self.batches
                                     if self.batches else 0.0),
                "max_batch_size": float(self.max_batch_size),
                "max_wait_ms": self.max_wait * 1000.0,
            }

    # ------------------------------------------------------------------ #
    # Executor side
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            batch = None
            try:
                batch, cause = self._next_batch()
                if batch is None:
                    return
                self._execute(batch, cause)
            except BaseException as error:
                # ``_execute`` already absorbs score_fn errors per batch;
                # anything reaching here is a bug in the executor machinery
                # itself.  Dying silently would leave every waiter hanging.
                self._on_executor_crash(batch, error)
                return

    def _on_executor_crash(self, batch: Optional[List["_QueuedRequest"]],
                           error: BaseException) -> None:
        """Contain an executor-thread crash: fail its batch, respawn.

        The in-flight batch is failed with the crash (those clients'
        requests may genuinely have caused it); while the coalescer is
        running a replacement executor is spawned to pick the *queued*
        requests up, so one poisoned batch does not take the service's
        scoring path down.  During shutdown there is no respawn — the queue
        is drained and failed instead.
        """
        with self._condition:
            restart = self._running and not self._stopping
            abandoned: List[_QueuedRequest] = []
            if restart:
                self.executor_restarts += 1
                self._thread = threading.Thread(target=self._run,
                                                name="repro-coalescer",
                                                daemon=True)
                self._thread.start()
            else:
                abandoned = list(self._queue)
                self._queue.clear()
                self._queued_pairs = 0
            self._condition.notify_all()
        instruments = self._obs.get()
        if instruments is not None and restart:
            instruments.restarts.inc()
        failure = CoalescerClosed(f"coalescer executor crashed: {error!r}")
        failure.__cause__ = error
        for request in (batch or []):
            if not request.pending.done():
                request.pending._fail(failure)
        for request in abandoned:
            request.pending._fail(failure)

    def _next_batch(self) -> tuple:
        """Wait for a size or deadline trigger and drain one batch.

        Returns ``(requests, cause)``; ``(None, None)`` means shutdown with
        an empty queue.
        """
        with self._condition:
            while not self._queue:
                if self._stopping:
                    return None, None
                self._condition.wait()
            # Wait for co-riders until the batch fills or the most impatient
            # queued request's deadline passes (shutdown flushes immediately).
            # The minimum is recomputed each round: per-request max_wait
            # overrides mean a later arrival can be the most impatient.
            cause = "size"
            while not self._stopping and self._queued_pairs < self.max_batch_size:
                deadline = min(request.pending.deadline for request in self._queue)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    cause = "deadline"
                    break
                self._condition.wait(remaining)
            if self._queued_pairs >= self.max_batch_size:
                cause = "size"
            elif self._stopping:
                cause = "shutdown"
            batch: List[_QueuedRequest] = []
            taken = 0
            while self._queue and (not batch or
                                   taken + len(self._queue[0].pairs) <= self.max_batch_size):
                request = self._queue.popleft()
                batch.append(request)
                taken += len(request.pairs)
            self._queued_pairs -= taken
            queued_pairs = self._queued_pairs
            if cause == "size":
                self.size_flushes += 1
            elif cause == "deadline":
                self.deadline_flushes += 1
            self.batches += 1
            self._batch_sizes_sum += taken
            self._condition.notify_all()  # wake submitters blocked on room
        instruments = self._obs.get()
        if instruments is not None:
            drained_at = time.monotonic()
            instruments.flushes[cause].inc()
            instruments.batch_pairs.observe(taken)
            instruments.queue_depth.set(queued_pairs)
            for request in batch:
                instruments.wait_seconds.observe(
                    drained_at - request.pending.enqueued_at)
        return batch, cause

    def _execute(self, batch: List[_QueuedRequest], cause: str) -> None:
        fused: List[EntityPair] = []
        for request in batch:
            fused.extend(request.pairs)
        try:
            scores = np.asarray(self.score_fn(fused))
            if scores.shape != (len(fused),):
                raise ValueError(f"score_fn returned shape {scores.shape} for "
                                 f"{len(fused)} pairs")
        except BaseException as error:  # propagate to every waiting client
            for request in batch:
                request.pending._fail(error)
            return
        with self._condition:
            self.pairs_scored += len(fused)
        instruments = self._obs.get()
        if instruments is not None:
            instruments.pairs_scored.inc(len(fused))
        offset = 0
        for request in batch:
            request.pending._resolve(scores[offset:offset + len(request.pairs)].copy())
            offset += len(request.pairs)

    def __repr__(self) -> str:
        return (f"RequestCoalescer(max_batch_size={self.max_batch_size}, "
                f"max_wait_ms={self.max_wait * 1000.0:g}, "
                f"pending={self.pending()})")
